//! Fault-injection tests: OSS failures must surface as errors — never as
//! silent corruption — and previously persisted versions must stay
//! restorable after a failed job.
//!
//! The system-level tests at the bottom exercise the crash-consistency
//! story: an exhaustive kill-point sweep over a backup's operation sequence
//! (every committed version survives; the orphan scrub restores the
//! committed key set), and seeded transient-fault chaos absorbed by the
//! retrying store with zero divergence.

use std::sync::Arc;
use std::time::Duration;

use slim_oss::rocks::RocksConfig;
use slim_oss::{CorruptionKind, FaultPlan, ObjectStore, Oss, RetryPolicy, RetryingStore};
use slim_types::{FileId, SlimConfig, SlimError, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};
use slimstore_repro::chunking::{ChunkSpec, FastCdcChunker};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::backup::BackupPipeline;
use slimstore_repro::lnode::restore::{RestoreEngine, RestoreOptions};
use slimstore_repro::lnode::StorageLayer;

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

struct Env {
    oss: Oss,
    storage: StorageLayer,
    similar: SimilarFileIndex,
    cfg: SlimConfig,
}

fn setup() -> Env {
    let oss = Oss::in_memory();
    Env {
        storage: StorageLayer::open(Arc::new(oss.clone())),
        oss,
        similar: SimilarFileIndex::new(),
        cfg: SlimConfig::small_for_tests(),
    }
}

impl Env {
    fn backup(&self, file: &FileId, v: u64, bytes: &[u8]) -> slim_types::Result<()> {
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.cfg));
        BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.cfg)
            .backup_file(file, VersionId(v), bytes)
            .map(|_| ())
    }

    fn restore(&self, file: &FileId, v: u64) -> slim_types::Result<Vec<u8>> {
        RestoreEngine::new(&self.storage, None)
            .restore_file(file, VersionId(v), &RestoreOptions::from_config(&self.cfg))
            .map(|(bytes, _)| bytes)
    }
}

#[test]
fn container_write_failure_fails_backup() {
    let env = setup();
    let file = FileId::new("f");
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    let err = env.backup(&file, 0, &data(1, 20_000)).unwrap_err();
    assert!(matches!(err, SlimError::InjectedFault(_)), "{err}");
    env.oss.clear_faults();
    // Retry succeeds and restores.
    env.backup(&file, 0, &data(1, 20_000)).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), data(1, 20_000));
}

#[test]
fn recipe_write_failure_fails_backup_but_preserves_old_versions() {
    let env = setup();
    let file = FileId::new("f");
    let v0 = data(2, 20_000);
    env.backup(&file, 0, &v0).unwrap();
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("recipes/".into()));
    assert!(env.backup(&file, 1, &data(3, 20_000)).is_err());
    env.oss.clear_faults();
    // v0 untouched.
    assert_eq!(env.restore(&file, 0).unwrap(), v0);
}

#[test]
fn transient_failure_mid_backup_is_not_silent() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(4, 60_000);
    // Fail the 3rd container operation only.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 3,
    });
    let result = env.backup(&file, 0, &input);
    assert!(result.is_err(), "partial persistence must be reported");
    env.oss.clear_faults();
    env.backup(&file, 0, &input).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_surfaces_read_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(5, 30_000);
    env.backup(&file, 0, &input).unwrap();
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    assert!(env.restore(&file, 0).is_err());
    env.oss.clear_faults();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_with_prefetch_surfaces_worker_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(6, 40_000);
    env.backup(&file, 0, &input).unwrap();
    // Fail one specific read: the error must propagate through the prefetch
    // workers to the restore caller.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 2,
    });
    let chunker_opts = RestoreOptions {
        cache_mem: 64 * 1024,
        cache_disk: 256 * 1024,
        law_window: 64,
        prefetch_threads: 3,
    };
    let result =
        RestoreEngine::new(&env.storage, None).restore_file(&file, VersionId(0), &chunker_opts);
    assert!(result.is_err());
    env.oss.clear_faults();
    let (out, _) = RestoreEngine::new(&env.storage, None)
        .restore_file(&file, VersionId(0), &chunker_opts)
        .unwrap();
    assert_eq!(out, input);
}

/// An object store that fails the first `remaining` `get`s under `prefix`
/// with a retryable [`SlimError::Transient`], then passes everything
/// through — the deterministic model of a network blip during prefetch.
struct FailFirstGets {
    inner: Oss,
    prefix: String,
    remaining: std::sync::atomic::AtomicU64,
}

impl ObjectStore for FailFirstGets {
    fn put(&self, key: &str, value: bytes::Bytes) -> slim_types::Result<()> {
        self.inner.put(key, value)
    }

    fn get(&self, key: &str) -> slim_types::Result<bytes::Bytes> {
        use std::sync::atomic::Ordering;
        if key.starts_with(&self.prefix)
            && self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        {
            return Err(SlimError::Transient("injected prefetch blip".into()));
        }
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> slim_types::Result<bytes::Bytes> {
        self.inner.get_range(key, start, len)
    }

    fn delete(&self, key: &str) -> slim_types::Result<()> {
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> slim_types::Result<bool> {
        self.inner.exists(key)
    }

    fn len(&self, key: &str) -> slim_types::Result<Option<u64>> {
        self.inner.len(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }
}

/// A transient blip while the prefetch workers are reading containers:
/// before the error-fidelity fix the worker's failure was rethrown as a
/// non-retryable corruption error and the whole restore failed; now the
/// retryable class falls back to one synchronous re-read per failed
/// container and the restore succeeds end to end.
#[test]
fn transient_prefetch_failure_is_absorbed_by_the_sync_fallback() {
    use std::sync::atomic::Ordering;

    let oss = Oss::in_memory();
    let flaky = Arc::new(FailFirstGets {
        inner: oss.clone(),
        prefix: "containers/".into(),
        remaining: std::sync::atomic::AtomicU64::new(0),
    });
    let storage = StorageLayer::open(flaky.clone());
    let cfg = SlimConfig::small_for_tests();
    let similar = SimilarFileIndex::new();
    let file = FileId::new("f");
    let input = data(9, 60_000);
    let chunker = FastCdcChunker::new(ChunkSpec::from_config(&cfg));
    BackupPipeline::new(&storage, &similar, &chunker, &cfg)
        .backup_file(&file, VersionId(0), &input)
        .unwrap();

    // Arm: the next container read fails transiently. The LAW window covers
    // the whole small file, so every container is scheduled with the
    // prefetcher and the failing read is issued by a worker; exactly one
    // failure keeps the synchronous fallback read itself clean.
    flaky.remaining.store(1, Ordering::SeqCst);
    let opts = RestoreOptions {
        cache_mem: 64 * 1024,
        cache_disk: 256 * 1024,
        law_window: 64,
        prefetch_threads: 3,
    };
    let (out, _) = RestoreEngine::new(&storage, None)
        .restore_file(&file, VersionId(0), &opts)
        .unwrap();
    assert_eq!(out, input, "restore must succeed despite the blip");
    assert_eq!(
        flaky.remaining.load(Ordering::SeqCst),
        0,
        "the injected failures must actually have fired"
    );
}

#[test]
fn corrupt_container_meta_detected() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(7, 20_000);
    env.backup(&file, 0, &input).unwrap();
    // Flip bytes in the first container's metadata.
    let keys = env.oss.list("containers/");
    let meta_key = keys.iter().find(|k| k.ends_with("/meta")).unwrap();
    let mut buf = env.oss.get(meta_key).unwrap().to_vec();
    buf[0] ^= 0xFF;
    env.oss.put(meta_key, buf.into()).unwrap();
    let err = env.restore(&file, 0).unwrap_err();
    assert!(
        matches!(err, SlimError::Corrupt { .. }),
        "corruption must be detected, got {err}"
    );
}

// ---------------------------------------------------------------------------
// Crash consistency and transient-fault chaos (system level)
// ---------------------------------------------------------------------------

fn system_store(oss: Arc<dyn ObjectStore>) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(oss)
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

fn sorted_keys(oss: &Oss) -> Vec<String> {
    let mut keys = oss.list("");
    keys.sort();
    keys
}

/// Kill a backup at every operation index in turn. Whatever the kill point,
/// the committed version stays restorable, no partial version becomes
/// visible, and one orphan-scrub pass returns the bucket to exactly the
/// committed key set (a second pass reclaims nothing).
#[test]
fn kill_point_sweep_commits_or_leaves_reclaimable_orphans_only() {
    let oss = Oss::in_memory();
    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    let da0 = data(80, 24_000);
    let db0 = data(81, 16_000);
    let mut da1 = da0.clone();
    da1[3_000..3_400].copy_from_slice(&data(82, 400));
    let db1 = data(83, 16_000);
    let v0_files = vec![(file_a.clone(), da0.clone()), (file_b.clone(), db0.clone())];
    let v1_files = vec![(file_a.clone(), da1.clone()), (file_b.clone(), db1.clone())];

    // Commit v0, then capture the committed key set as the baseline.
    {
        let store = system_store(Arc::new(oss.clone()));
        store.backup_version(v0_files.clone()).unwrap();
    }
    let baseline = sorted_keys(&oss);

    let mut total_orphans = 0u64;
    let mut succeeded = false;
    for kill_point in 1..=10_000u64 {
        // Fresh deployment per attempt over the same bucket: every attempt
        // starts from the identical committed state, so the backup issues
        // the identical operation sequence and `kill_point` sweeps it
        // exhaustively.
        let store = system_store(Arc::new(oss.clone()));
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        let result = store.backup_version(v1_files.clone());
        oss.clear_faults();
        match result {
            Ok(report) => {
                // The kill point lies past the commit point: the version is
                // durable and the sweep has covered the whole sequence.
                assert_eq!(report.version, VersionId(1));
                store.verify_version(VersionId(0), &v0_files).unwrap();
                store.verify_version(VersionId(1), &v1_files).unwrap();
                succeeded = true;
                break;
            }
            Err(_) => {
                assert_eq!(
                    store.versions(),
                    vec![VersionId(0)],
                    "kill point {kill_point}: no partial version may be visible"
                );
                store.verify_version(VersionId(0), &v0_files).unwrap();
                let stats = store.scrub_orphans().unwrap();
                total_orphans += stats.objects_reclaimed();
                assert_eq!(
                    sorted_keys(&oss),
                    baseline,
                    "kill point {kill_point}: scrub must restore the committed key set"
                );
                let again = store.scrub_orphans().unwrap();
                assert_eq!(
                    again.objects_reclaimed(),
                    0,
                    "kill point {kill_point}: scrub must be idempotent"
                );
            }
        }
    }
    assert!(succeeded, "the sweep never ran past the end of the backup");
    assert!(
        total_orphans > 0,
        "at least one kill point must leave orphans"
    );
}

/// Copy every object of a bucket (used to rewind to an identical pre-cycle
/// state between kill-point attempts).
fn bucket_snapshot(oss: &Oss) -> Vec<(String, Vec<u8>)> {
    oss.list("")
        .into_iter()
        .map(|k| {
            let v = oss.get(&k).unwrap().to_vec();
            (k, v)
        })
        .collect()
}

fn bucket_restore(base: &[(String, Vec<u8>)]) -> Oss {
    let oss = Oss::in_memory();
    for (k, v) in base {
        oss.put(k, v.clone().into()).unwrap();
    }
    oss
}

/// Kill the G-node offline cycle at every OSS operation index in turn —
/// this brute-forces every stage boundary (reverse dedup marks, container
/// rewrites, SCC moves, index relocations and flushes, deletes, journal
/// writes). After each kill, reopening the deployment replays the intent
/// journal; every version must restore byte-identically both right after
/// recovery and after the interrupted cycle is re-run to completion.
#[test]
fn gnode_cycle_kill_point_sweep_recovers_at_every_stage() {
    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    // Three versions with heavy overlap so the v2 cycle has real work:
    // duplicate chunks to reverse-deduplicate out of older containers (and
    // containers sparse enough to rewrite under the two-phase protocol).
    let da0 = data(90, 24_000);
    let db0 = data(91, 16_000);
    let mut da1 = da0.clone();
    da1[2_000..2_600].copy_from_slice(&data(92, 600));
    let mut da2 = da1.clone();
    da2[9_000..9_400].copy_from_slice(&data(93, 400));
    let versions: Vec<Vec<(FileId, Vec<u8>)>> = vec![
        vec![(file_a.clone(), da0.clone()), (file_b.clone(), db0.clone())],
        vec![(file_a.clone(), da1.clone()), (file_b.clone(), db0.clone())],
        vec![(file_a.clone(), da2.clone()), (file_b.clone(), db0.clone())],
    ];

    let pristine = Oss::in_memory();
    {
        let store = system_store(Arc::new(pristine.clone()));
        store.backup_version(versions[0].clone()).unwrap();
        store.run_gnode_cycle(VersionId(0)).unwrap();
        store.backup_version(versions[1].clone()).unwrap();
        store.run_gnode_cycle(VersionId(1)).unwrap();
        store.backup_version(versions[2].clone()).unwrap();
        // The v2 cycle is the operation sequence under the sweep.
    }
    let base = bucket_snapshot(&pristine);

    let verify_all = |store: &SlimStore| {
        for (v, files) in versions.iter().enumerate() {
            store.verify_version(VersionId(v as u64), files).unwrap();
        }
    };

    let mut consecutive_ok = 0u32;
    let mut succeeded = false;
    for kill_point in 1..=20_000u64 {
        let oss = bucket_restore(&base);
        let store = system_store(Arc::new(oss.clone()));
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        let result = store.run_gnode_cycle(VersionId(2));
        oss.clear_faults();
        drop(store);

        // Reopen the deployment: the builder replays the intent journal.
        let store = system_store(Arc::new(oss.clone()));
        verify_all(&store);
        if result.is_ok() {
            // Best-effort steps may absorb one injected fault and still
            // report success, so require several consecutive clean runs
            // before concluding the kill point lies past the cycle's end.
            consecutive_ok += 1;
            if consecutive_ok >= 3 {
                succeeded = true;
                break;
            }
            continue;
        }
        consecutive_ok = 0;
        // Re-running the interrupted cycle converges.
        store.run_gnode_cycle(VersionId(2)).unwrap();
        verify_all(&store);
        assert!(
            store.recover().unwrap().is_clean(),
            "kill point {kill_point}: journal must be empty after a completed cycle"
        );
    }
    assert!(succeeded, "the sweep never ran past the end of the cycle");
}

/// Kill the FIFO collection sweep (`retain_last`) at every OSS operation
/// index. Retained versions must restore byte-identically after recovery,
/// and re-running the sweep plus one orphan scrub converges to a stable
/// key set (a second scrub reclaims nothing).
#[test]
fn collect_kill_point_sweep_preserves_retained_versions() {
    let file = FileId::new("db/f");
    let mut contents = Vec::new();
    let pristine = Oss::in_memory();
    {
        let store = system_store(Arc::new(pristine.clone()));
        let mut d = data(95, 20_000);
        for v in 0..3u64 {
            contents.push(d.clone());
            store
                .backup_version(vec![(file.clone(), d.clone())])
                .unwrap();
            store.run_gnode_cycle(VersionId(v)).unwrap();
            d[4_000..4_500].copy_from_slice(&data(96 + v, 500));
        }
    }
    let base = bucket_snapshot(&pristine);

    let mut consecutive_ok = 0u32;
    let mut succeeded = false;
    for kill_point in 1..=20_000u64 {
        let oss = bucket_restore(&base);
        let store = system_store(Arc::new(oss.clone()));
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        let result = store.retain_last(2);
        oss.clear_faults();
        drop(store);

        let store = system_store(Arc::new(oss.clone()));
        for v in 1..3u64 {
            store
                .verify_version(
                    VersionId(v),
                    &[(file.clone(), contents[v as usize].clone())],
                )
                .unwrap();
        }
        if result.is_ok() {
            consecutive_ok += 1;
            if consecutive_ok >= 3 {
                succeeded = true;
                break;
            }
            continue;
        }
        consecutive_ok = 0;
        // Converge: finish the sweep, then scrub anything the killed pass
        // unlinked but did not delete.
        store.retain_last(2).unwrap();
        assert_eq!(store.versions(), vec![VersionId(1), VersionId(2)]);
        store.scrub_orphans().unwrap();
        let again = store.scrub_orphans().unwrap();
        assert_eq!(
            again.objects_reclaimed(),
            0,
            "kill point {kill_point}: scrub must be idempotent"
        );
        for v in 1..3u64 {
            store
                .verify_version(
                    VersionId(v),
                    &[(file.clone(), contents[v as usize].clone())],
                )
                .unwrap();
        }
    }
    assert!(succeeded, "the sweep never ran past the end of the collect");
}

/// Bit-rot injected into every read under `containers/` while the G-node
/// cycle runs: the CRC framing must detect the mangled payloads and abort
/// the cycle with a corruption error (never act on bad bytes); once the
/// fault clears, recovery replays the journal and the cycle completes.
#[test]
fn corrupt_read_during_cycle_is_detected_and_recovery_converges() {
    let oss = Oss::in_memory();
    let file = FileId::new("db/f");
    let v0 = data(97, 24_000);
    let mut v1 = v0.clone();
    v1[1_000..1_500].copy_from_slice(&data(98, 500));
    let store = system_store(Arc::new(oss.clone()));
    store
        .backup_version(vec![(file.clone(), v0.clone())])
        .unwrap();
    store.run_gnode_cycle(VersionId(0)).unwrap();
    store
        .backup_version(vec![(file.clone(), v1.clone())])
        .unwrap();

    oss.inject_fault(FaultPlan::CorruptRead {
        prefix: "containers/".into(),
        kind: CorruptionKind::BitFlip,
        seed: 0xB17_F11,
    });
    let err = store.run_gnode_cycle(VersionId(1)).unwrap_err();
    assert!(
        matches!(err, SlimError::Corrupt { .. }),
        "mangled reads must surface as corruption, got {err}"
    );
    oss.clear_faults();

    // Reopen (journal replay) and finish the cycle on clean reads.
    drop(store);
    let store = system_store(Arc::new(oss.clone()));
    store.run_gnode_cycle(VersionId(1)).unwrap();
    store
        .verify_version(VersionId(0), &[(file.clone(), v0)])
        .unwrap();
    store
        .verify_version(VersionId(1), &[(file.clone(), v1)])
        .unwrap();
    // Nothing was durably damaged: a full checksum sweep quarantines zero.
    let report = store.verify_checksums().unwrap();
    assert_eq!(report.containers_quarantined, 0);
}

/// A seeded probabilistic transient-fault schedule (p = 0.3 on every OSS
/// operation) absorbed by the retrying store: every backup commits, every
/// committed version restores byte-identically, retry counters surface in
/// the per-backup metrics snapshot, and nothing gives up.
#[test]
fn chaos_transient_schedule_preserves_every_committed_version() {
    let oss = Oss::in_memory();
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(16));
    let store = system_store(Arc::new(retrying.clone()));
    oss.inject_fault(FaultPlan::TransientProb {
        prefix: String::new(),
        prob: 0.3,
        seed: 0xC4A0_55E5,
    });

    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    let mut da = data(50, 24_000);
    let db = data(51, 16_000);
    let mut history = Vec::new();
    for round in 0..3u64 {
        let report = store
            .backup_version(vec![
                (file_a.clone(), da.clone()),
                (file_b.clone(), db.clone()),
            ])
            .unwrap();
        assert_eq!(report.version, VersionId(round));
        let snap = report.oss_metrics.expect("retrying store keeps counters");
        assert_eq!(snap.giveups, 0, "16 attempts must outlast p=0.3");
        history.push(da.clone());
        // Every committed version restores byte-identically while the fault
        // schedule stays armed.
        for (v, expected) in history.iter().enumerate() {
            store
                .verify_version(
                    VersionId(v as u64),
                    &[
                        (file_a.clone(), expected.clone()),
                        (file_b.clone(), db.clone()),
                    ],
                )
                .unwrap();
        }
        da[1_000..1_800].copy_from_slice(&data(60 + round, 800));
    }

    let snap = store.oss().metrics_snapshot().unwrap();
    assert!(snap.retries > 0, "the schedule must actually have fired");
    assert_eq!(snap.giveups, 0);
    assert!(snap.injected_faults > 0);
    assert_eq!(retrying.retry_metrics().giveups(), 0);
}

/// Throttling plus injected latency end to end: the retrying store rides
/// out the 429s, the latency plan charges injected delay into the metrics,
/// and the data path stays byte-identical.
#[test]
fn throttle_and_latency_are_absorbed_by_the_retrying_store() {
    let oss = Oss::in_memory();
    oss.inject_fault(FaultPlan::Throttle { every_nth: 5 });
    oss.inject_fault_also(FaultPlan::Latency {
        prefix: "recipes/".into(),
        delay: Duration::from_millis(1),
    });
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(10));
    let store = system_store(Arc::new(retrying));
    let file = FileId::new("f");
    let input = data(70, 30_000);
    store
        .backup_version(vec![(file.clone(), input.clone())])
        .unwrap();
    let (bytes, _) = store.restore_file(&file, VersionId(0)).unwrap();
    assert_eq!(bytes, input);
    let snap = store.oss().metrics_snapshot().unwrap();
    assert!(snap.retries > 0, "throttled operations were retried");
    assert_eq!(snap.giveups, 0);
    assert!(snap.injected_delay > Duration::ZERO, "latency plan charged");
}
