//! Fault-injection tests: OSS failures must surface as errors — never as
//! silent corruption — and previously persisted versions must stay
//! restorable after a failed job.
//!
//! The system-level tests at the bottom exercise the crash-consistency
//! story: an exhaustive kill-point sweep over a backup's operation sequence
//! (every committed version survives; the orphan scrub restores the
//! committed key set), and seeded transient-fault chaos absorbed by the
//! retrying store with zero divergence.

use std::sync::Arc;
use std::time::Duration;

use slim_oss::rocks::RocksConfig;
use slim_oss::{FaultPlan, ObjectStore, Oss, RetryPolicy, RetryingStore};
use slim_types::{FileId, SlimConfig, SlimError, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};
use slimstore_repro::chunking::{ChunkSpec, FastCdcChunker};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::backup::BackupPipeline;
use slimstore_repro::lnode::restore::{RestoreEngine, RestoreOptions};
use slimstore_repro::lnode::StorageLayer;

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

struct Env {
    oss: Oss,
    storage: StorageLayer,
    similar: SimilarFileIndex,
    cfg: SlimConfig,
}

fn setup() -> Env {
    let oss = Oss::in_memory();
    Env {
        storage: StorageLayer::open(Arc::new(oss.clone())),
        oss,
        similar: SimilarFileIndex::new(),
        cfg: SlimConfig::small_for_tests(),
    }
}

impl Env {
    fn backup(&self, file: &FileId, v: u64, bytes: &[u8]) -> slim_types::Result<()> {
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.cfg));
        BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.cfg)
            .backup_file(file, VersionId(v), bytes)
            .map(|_| ())
    }

    fn restore(&self, file: &FileId, v: u64) -> slim_types::Result<Vec<u8>> {
        RestoreEngine::new(&self.storage, None)
            .restore_file(file, VersionId(v), &RestoreOptions::from_config(&self.cfg))
            .map(|(bytes, _)| bytes)
    }
}

#[test]
fn container_write_failure_fails_backup() {
    let env = setup();
    let file = FileId::new("f");
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    let err = env.backup(&file, 0, &data(1, 20_000)).unwrap_err();
    assert!(matches!(err, SlimError::InjectedFault(_)), "{err}");
    env.oss.clear_faults();
    // Retry succeeds and restores.
    env.backup(&file, 0, &data(1, 20_000)).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), data(1, 20_000));
}

#[test]
fn recipe_write_failure_fails_backup_but_preserves_old_versions() {
    let env = setup();
    let file = FileId::new("f");
    let v0 = data(2, 20_000);
    env.backup(&file, 0, &v0).unwrap();
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("recipes/".into()));
    assert!(env.backup(&file, 1, &data(3, 20_000)).is_err());
    env.oss.clear_faults();
    // v0 untouched.
    assert_eq!(env.restore(&file, 0).unwrap(), v0);
}

#[test]
fn transient_failure_mid_backup_is_not_silent() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(4, 60_000);
    // Fail the 3rd container operation only.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 3,
    });
    let result = env.backup(&file, 0, &input);
    assert!(result.is_err(), "partial persistence must be reported");
    env.oss.clear_faults();
    env.backup(&file, 0, &input).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_surfaces_read_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(5, 30_000);
    env.backup(&file, 0, &input).unwrap();
    env.oss
        .inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    assert!(env.restore(&file, 0).is_err());
    env.oss.clear_faults();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_with_prefetch_surfaces_worker_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(6, 40_000);
    env.backup(&file, 0, &input).unwrap();
    // Fail one specific read: the error must propagate through the prefetch
    // workers to the restore caller.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 2,
    });
    let chunker_opts = RestoreOptions {
        cache_mem: 64 * 1024,
        cache_disk: 256 * 1024,
        law_window: 64,
        prefetch_threads: 3,
    };
    let result =
        RestoreEngine::new(&env.storage, None).restore_file(&file, VersionId(0), &chunker_opts);
    assert!(result.is_err());
    env.oss.clear_faults();
    let (out, _) = RestoreEngine::new(&env.storage, None)
        .restore_file(&file, VersionId(0), &chunker_opts)
        .unwrap();
    assert_eq!(out, input);
}

#[test]
fn corrupt_container_meta_detected() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(7, 20_000);
    env.backup(&file, 0, &input).unwrap();
    // Flip bytes in the first container's metadata.
    let keys = env.oss.list("containers/");
    let meta_key = keys.iter().find(|k| k.ends_with("/meta")).unwrap();
    let mut buf = env.oss.get(meta_key).unwrap().to_vec();
    buf[0] ^= 0xFF;
    env.oss.put(meta_key, buf.into()).unwrap();
    let err = env.restore(&file, 0).unwrap_err();
    assert!(
        matches!(err, SlimError::Corrupt { .. }),
        "corruption must be detected, got {err}"
    );
}

// ---------------------------------------------------------------------------
// Crash consistency and transient-fault chaos (system level)
// ---------------------------------------------------------------------------

fn system_store(oss: Arc<dyn ObjectStore>) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(oss)
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

fn sorted_keys(oss: &Oss) -> Vec<String> {
    let mut keys = oss.list("");
    keys.sort();
    keys
}

/// Kill a backup at every operation index in turn. Whatever the kill point,
/// the committed version stays restorable, no partial version becomes
/// visible, and one orphan-scrub pass returns the bucket to exactly the
/// committed key set (a second pass reclaims nothing).
#[test]
fn kill_point_sweep_commits_or_leaves_reclaimable_orphans_only() {
    let oss = Oss::in_memory();
    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    let da0 = data(80, 24_000);
    let db0 = data(81, 16_000);
    let mut da1 = da0.clone();
    da1[3_000..3_400].copy_from_slice(&data(82, 400));
    let db1 = data(83, 16_000);
    let v0_files = vec![(file_a.clone(), da0.clone()), (file_b.clone(), db0.clone())];
    let v1_files = vec![(file_a.clone(), da1.clone()), (file_b.clone(), db1.clone())];

    // Commit v0, then capture the committed key set as the baseline.
    {
        let store = system_store(Arc::new(oss.clone()));
        store.backup_version(v0_files.clone()).unwrap();
    }
    let baseline = sorted_keys(&oss);

    let mut total_orphans = 0u64;
    let mut succeeded = false;
    for kill_point in 1..=10_000u64 {
        // Fresh deployment per attempt over the same bucket: every attempt
        // starts from the identical committed state, so the backup issues
        // the identical operation sequence and `kill_point` sweeps it
        // exhaustively.
        let store = system_store(Arc::new(oss.clone()));
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        let result = store.backup_version(v1_files.clone());
        oss.clear_faults();
        match result {
            Ok(report) => {
                // The kill point lies past the commit point: the version is
                // durable and the sweep has covered the whole sequence.
                assert_eq!(report.version, VersionId(1));
                store.verify_version(VersionId(0), &v0_files).unwrap();
                store.verify_version(VersionId(1), &v1_files).unwrap();
                succeeded = true;
                break;
            }
            Err(_) => {
                assert_eq!(
                    store.versions(),
                    vec![VersionId(0)],
                    "kill point {kill_point}: no partial version may be visible"
                );
                store.verify_version(VersionId(0), &v0_files).unwrap();
                let stats = store.scrub_orphans().unwrap();
                total_orphans += stats.objects_reclaimed();
                assert_eq!(
                    sorted_keys(&oss),
                    baseline,
                    "kill point {kill_point}: scrub must restore the committed key set"
                );
                let again = store.scrub_orphans().unwrap();
                assert_eq!(
                    again.objects_reclaimed(),
                    0,
                    "kill point {kill_point}: scrub must be idempotent"
                );
            }
        }
    }
    assert!(succeeded, "the sweep never ran past the end of the backup");
    assert!(
        total_orphans > 0,
        "at least one kill point must leave orphans"
    );
}

/// A seeded probabilistic transient-fault schedule (p = 0.3 on every OSS
/// operation) absorbed by the retrying store: every backup commits, every
/// committed version restores byte-identically, retry counters surface in
/// the per-backup metrics snapshot, and nothing gives up.
#[test]
fn chaos_transient_schedule_preserves_every_committed_version() {
    let oss = Oss::in_memory();
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(16));
    let store = system_store(Arc::new(retrying.clone()));
    oss.inject_fault(FaultPlan::TransientProb {
        prefix: String::new(),
        prob: 0.3,
        seed: 0xC4A0_55E5,
    });

    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    let mut da = data(50, 24_000);
    let db = data(51, 16_000);
    let mut history = Vec::new();
    for round in 0..3u64 {
        let report = store
            .backup_version(vec![
                (file_a.clone(), da.clone()),
                (file_b.clone(), db.clone()),
            ])
            .unwrap();
        assert_eq!(report.version, VersionId(round));
        let snap = report.oss_metrics.expect("retrying store keeps counters");
        assert_eq!(snap.giveups, 0, "16 attempts must outlast p=0.3");
        history.push(da.clone());
        // Every committed version restores byte-identically while the fault
        // schedule stays armed.
        for (v, expected) in history.iter().enumerate() {
            store
                .verify_version(
                    VersionId(v as u64),
                    &[
                        (file_a.clone(), expected.clone()),
                        (file_b.clone(), db.clone()),
                    ],
                )
                .unwrap();
        }
        da[1_000..1_800].copy_from_slice(&data(60 + round, 800));
    }

    let snap = store.oss().metrics_snapshot().unwrap();
    assert!(snap.retries > 0, "the schedule must actually have fired");
    assert_eq!(snap.giveups, 0);
    assert!(snap.injected_faults > 0);
    assert_eq!(retrying.retry_metrics().giveups(), 0);
}

/// Throttling plus injected latency end to end: the retrying store rides
/// out the 429s, the latency plan charges injected delay into the metrics,
/// and the data path stays byte-identical.
#[test]
fn throttle_and_latency_are_absorbed_by_the_retrying_store() {
    let oss = Oss::in_memory();
    oss.inject_fault(FaultPlan::Throttle { every_nth: 5 });
    oss.inject_fault_also(FaultPlan::Latency {
        prefix: "recipes/".into(),
        delay: Duration::from_millis(1),
    });
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(10));
    let store = system_store(Arc::new(retrying));
    let file = FileId::new("f");
    let input = data(70, 30_000);
    store
        .backup_version(vec![(file.clone(), input.clone())])
        .unwrap();
    let (bytes, _) = store.restore_file(&file, VersionId(0)).unwrap();
    assert_eq!(bytes, input);
    let snap = store.oss().metrics_snapshot().unwrap();
    assert!(snap.retries > 0, "throttled operations were retried");
    assert_eq!(snap.giveups, 0);
    assert!(snap.injected_delay > Duration::ZERO, "latency plan charged");
}
