//! Fault-injection tests: OSS failures must surface as errors — never as
//! silent corruption — and previously persisted versions must stay
//! restorable after a failed job.

use std::sync::Arc;

use slim_oss::{FaultPlan, ObjectStore, Oss};
use slim_types::{FileId, SlimConfig, SlimError, VersionId};
use slimstore_repro::chunking::{ChunkSpec, FastCdcChunker};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::backup::BackupPipeline;
use slimstore_repro::lnode::restore::{RestoreEngine, RestoreOptions};
use slimstore_repro::lnode::StorageLayer;

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

struct Env {
    oss: Oss,
    storage: StorageLayer,
    similar: SimilarFileIndex,
    cfg: SlimConfig,
}

fn setup() -> Env {
    let oss = Oss::in_memory();
    Env {
        storage: StorageLayer::open(Arc::new(oss.clone())),
        oss,
        similar: SimilarFileIndex::new(),
        cfg: SlimConfig::small_for_tests(),
    }
}

impl Env {
    fn backup(&self, file: &FileId, v: u64, bytes: &[u8]) -> slim_types::Result<()> {
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.cfg));
        BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.cfg)
            .backup_file(file, VersionId(v), bytes)
            .map(|_| ())
    }

    fn restore(&self, file: &FileId, v: u64) -> slim_types::Result<Vec<u8>> {
        RestoreEngine::new(&self.storage, None)
            .restore_file(file, VersionId(v), &RestoreOptions::from_config(&self.cfg))
            .map(|(bytes, _)| bytes)
    }
}

#[test]
fn container_write_failure_fails_backup() {
    let env = setup();
    let file = FileId::new("f");
    env.oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    let err = env.backup(&file, 0, &data(1, 20_000)).unwrap_err();
    assert!(matches!(err, SlimError::InjectedFault(_)), "{err}");
    env.oss.clear_faults();
    // Retry succeeds and restores.
    env.backup(&file, 0, &data(1, 20_000)).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), data(1, 20_000));
}

#[test]
fn recipe_write_failure_fails_backup_but_preserves_old_versions() {
    let env = setup();
    let file = FileId::new("f");
    let v0 = data(2, 20_000);
    env.backup(&file, 0, &v0).unwrap();
    env.oss.inject_fault(FaultPlan::KeyPrefix("recipes/".into()));
    assert!(env.backup(&file, 1, &data(3, 20_000)).is_err());
    env.oss.clear_faults();
    // v0 untouched.
    assert_eq!(env.restore(&file, 0).unwrap(), v0);
}

#[test]
fn transient_failure_mid_backup_is_not_silent() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(4, 60_000);
    // Fail the 3rd container operation only.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 3,
    });
    let result = env.backup(&file, 0, &input);
    assert!(result.is_err(), "partial persistence must be reported");
    env.oss.clear_faults();
    env.backup(&file, 0, &input).unwrap();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_surfaces_read_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(5, 30_000);
    env.backup(&file, 0, &input).unwrap();
    env.oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
    assert!(env.restore(&file, 0).is_err());
    env.oss.clear_faults();
    assert_eq!(env.restore(&file, 0).unwrap(), input);
}

#[test]
fn restore_with_prefetch_surfaces_worker_failures() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(6, 40_000);
    env.backup(&file, 0, &input).unwrap();
    // Fail one specific read: the error must propagate through the prefetch
    // workers to the restore caller.
    env.oss.inject_fault(FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 2,
    });
    let chunker_opts = RestoreOptions {
        cache_mem: 64 * 1024,
        cache_disk: 256 * 1024,
        law_window: 64,
        prefetch_threads: 3,
    };
    let result = RestoreEngine::new(&env.storage, None).restore_file(&file, VersionId(0), &chunker_opts);
    assert!(result.is_err());
    env.oss.clear_faults();
    let (out, _) =
        RestoreEngine::new(&env.storage, None).restore_file(&file, VersionId(0), &chunker_opts).unwrap();
    assert_eq!(out, input);
}

#[test]
fn corrupt_container_meta_detected() {
    let env = setup();
    let file = FileId::new("f");
    let input = data(7, 20_000);
    env.backup(&file, 0, &input).unwrap();
    // Flip bytes in the first container's metadata.
    let keys = env.oss.list("containers/");
    let meta_key = keys.iter().find(|k| k.ends_with("/meta")).unwrap();
    let mut buf = env.oss.get(meta_key).unwrap().to_vec();
    buf[0] ^= 0xFF;
    env.oss.put(meta_key, buf.into()).unwrap();
    let err = env.restore(&file, 0).unwrap_err();
    assert!(
        matches!(err, SlimError::Corrupt { .. }),
        "corruption must be detected, got {err}"
    );
}
