//! Gray-failure resilience chaos suite: hedged reads, circuit breakers,
//! endpoint health routing, and end-to-end deadline propagation.
//!
//! Everything here runs on seeded fault plans, so failures replay. The
//! invariants under test:
//!
//! 1. hedging never changes *data* — every byte a hedged read returns is a
//!    byte the store holds, under every fault plan;
//! 2. circuit-breaker transitions are deterministic functions of the
//!    outcome sequence and the seed;
//! 3. an expired deadline short-circuits before a single further OSS call
//!    is issued (asserted via `oss.*` request counters), at the wrapper,
//!    the retry layer, and the full builder stack;
//! 4. with one straggling endpoint, hedged+routed reads are byte-identical
//!    and measurably faster at the tail than the unrouted baseline.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use slim_oss::{
    BreakerPolicy, BreakerStage, CircuitBreaker, FaultPlan, HedgePolicy, HedgedStore, ObjectStore,
    Oss, RetryPolicy, RetryingStore,
};
use slim_types::VersionId;
use slim_types::{Deadline, FileId, SlimConfig, SlimError};
use slimstore::SlimStoreBuilder;
use slimstore_repro::chunking::{ChunkSpec, FastCdcChunker};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::backup::BackupPipeline;
use slimstore_repro::lnode::restore::{RestoreEngine, RestoreOptions};
use slimstore_repro::lnode::StorageLayer;

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// A 2-endpoint store warmed so the hedging plane is live from the first
/// faulted read (low observation bar, no activation floor).
fn eager_policy() -> HedgePolicy {
    HedgePolicy {
        min_observations: 4,
        activation_floor: Duration::ZERO,
        min_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(2),
        ..HedgePolicy::for_endpoints(2)
    }
}

fn hedged_over(oss: &Oss, policy: HedgePolicy) -> HedgedStore {
    HedgedStore::new(Arc::new(oss.clone()), policy)
}

/// Seeded fault plans a read plane must survive without data divergence:
/// heavy-tail latency on one endpoint, endpoint-scoped transients, and
/// store-wide probabilistic transients.
fn chaos_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::LatencyPareto {
            prefix: String::new(),
            endpoint: Some(0),
            scale: Duration::from_millis(1),
            shape: 1.2,
            cap: Duration::from_millis(6),
            seed: 21,
        },
        FaultPlan::EndpointTransient {
            endpoint: 0,
            prob: 0.7,
            seed: 22,
        },
        FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 0.25,
            seed: 23,
        },
    ]
}

#[test]
fn hedged_reads_never_diverge_from_stored_bytes() {
    for (i, plan) in chaos_plans().into_iter().enumerate() {
        let oss = Oss::in_memory();
        oss.set_endpoints(2);
        let expected: Vec<(String, Vec<u8>)> = (0..8)
            .map(|k| (format!("obj/{k}"), data(100 + k, 2048 + k as usize * 17)))
            .collect();
        for (key, bytes) in &expected {
            oss.put(key, Bytes::from(bytes.clone())).unwrap();
        }
        let store = hedged_over(&oss, eager_policy());
        // Warm the delay pool on clean reads, then arm the plan.
        for (key, _) in &expected {
            store.get(key).unwrap();
        }
        oss.inject_fault(plan);
        let mut oks = 0u32;
        for round in 0..6 {
            for (k, (key, bytes)) in expected.iter().enumerate() {
                match store.get(key) {
                    Ok(got) => {
                        oks += 1;
                        assert_eq!(
                            got.as_ref(),
                            bytes.as_slice(),
                            "plan {i}, round {round}, key {k}: bytes diverged"
                        );
                    }
                    // Both endpoints can fail under store-wide plans; an
                    // error is acceptable, wrong bytes never are.
                    Err(e) => assert!(
                        matches!(
                            e,
                            SlimError::Transient(_)
                                | SlimError::Throttled(_)
                                | SlimError::Timeout { .. }
                                | SlimError::CircuitOpen(_)
                        ),
                        "plan {i}: unexpected error class: {e}"
                    ),
                }
            }
            // Batch form under the same plan.
            let keys: Vec<String> = expected.iter().map(|(k, _)| k.clone()).collect();
            for (j, result) in store.get_many(&keys).into_iter().enumerate() {
                if let Ok(got) = result {
                    assert_eq!(got.as_ref(), expected[j].1.as_slice(), "plan {i} batch");
                }
            }
        }
        assert!(oks > 0, "plan {i}: some reads must get through");
    }
}

#[test]
fn breaker_transitions_replay_deterministically() {
    // The breaker is a pure function of (policy, outcome sequence): two
    // instances fed the same seeded outcome stream walk the same stages.
    let outcomes: Vec<bool> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        (0..400).map(|_| rng.gen_bool(0.55)).collect()
    };
    let run = |seed: u64| -> Vec<(bool, BreakerStage)> {
        let br = CircuitBreaker::new(
            1,
            BreakerPolicy {
                failure_threshold: 3,
                open_ops: 5,
                probe_prob: 0.4,
                success_to_close: 2,
                seed,
            },
        );
        outcomes
            .iter()
            .map(|&ok| {
                let admitted = br.admits(0);
                if admitted {
                    br.record(0, ok);
                }
                (admitted, br.stage(0))
            })
            .collect()
    };
    let a = run(5);
    assert_eq!(a, run(5), "same seed, same trajectory");
    assert_ne!(a, run(6), "probe admission follows the seed");
    assert!(
        a.iter().any(|(_, s)| *s == BreakerStage::Open)
            && a.iter().any(|(_, s)| *s == BreakerStage::HalfOpen)
            && a.iter().any(|(_, s)| *s == BreakerStage::Closed),
        "the outcome stream exercises all three stages"
    );
}

#[test]
fn expired_deadline_is_a_hard_wall_for_the_wrapper_and_retry_layer() {
    let oss = Oss::in_memory();
    oss.set_endpoints(2);
    oss.put("k", Bytes::from_static(b"v")).unwrap();
    let hedged = hedged_over(&oss, eager_policy());
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(8));
    let stacked = RetryingStore::new(
        Arc::new(hedged_over(&oss, eager_policy())),
        RetryPolicy::no_delay(8),
    );

    let before = oss.metrics().snapshot();
    Deadline::within(Duration::ZERO).scope(|| {
        assert!(matches!(hedged.get("k"), Err(SlimError::Timeout { .. })));
        assert!(matches!(retrying.get("k"), Err(SlimError::Timeout { .. })));
        assert!(matches!(stacked.get("k"), Err(SlimError::Timeout { .. })));
        assert!(matches!(
            hedged.get_many(&["k".to_string()])[0],
            Err(SlimError::Timeout { .. })
        ));
        assert!(matches!(hedged.len("k"), Err(SlimError::Timeout { .. })));
        assert!(matches!(
            hedged.put("k2", Bytes::new()),
            Err(SlimError::Timeout { .. })
        ));
    });
    let after = oss.metrics().snapshot();
    assert_eq!(after.get_requests, before.get_requests, "no GET was issued");
    assert_eq!(after.put_requests, before.put_requests, "no PUT was issued");

    // The wall lifts with the scope: the same handles serve again.
    assert_eq!(hedged.get("k").unwrap(), Bytes::from_static(b"v"));
    assert_eq!(retrying.get("k").unwrap(), Bytes::from_static(b"v"));
}

#[test]
fn expired_deadline_short_circuits_the_full_builder_stack() {
    // Full stack: builder-wired Oss (2 endpoints) → HedgedStore → storage/
    // restore planes, telemetry on. A request whose deadline is already
    // spent must fail without growing any oss.* request counter.
    let store = SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .build()
        .unwrap();
    let file = FileId::new("f");
    let payload = data(7, 60_000);
    store
        .backup_version(vec![(file.clone(), payload.clone())])
        .unwrap();
    assert_eq!(store.restore_file(&file, VersionId(0)).unwrap().0, payload);

    let reads_before = store.telemetry_snapshot().counter("oss.get_requests");
    let outcome =
        Deadline::within(Duration::ZERO).scope(|| store.restore_file(&file, VersionId(0)));
    assert!(
        matches!(outcome, Err(SlimError::Timeout { .. })),
        "expired deadline must refuse the restore: {outcome:?}"
    );
    let snap = store.telemetry_snapshot();
    assert_eq!(
        snap.counter("oss.get_requests"),
        reads_before,
        "not one further OSS read was issued after expiry"
    );
    assert!(
        snap.counter("oss.hedge.deadline_refused") > 0,
        "the refusal is visible on the hedge counters"
    );
    // And the store still works once the deadline scope is gone.
    assert_eq!(store.restore_file(&file, VersionId(0)).unwrap().0, payload);
}

/// Run `reads` single gets through `store` and return the observed p95 in
/// nanoseconds, measured at the caller (not trusting internal histograms).
fn measured_p95(store: &dyn ObjectStore, keys: &[String], reads: usize) -> u64 {
    let mut samples = Vec::with_capacity(reads);
    for i in 0..reads {
        let key = &keys[i % keys.len()];
        let t = std::time::Instant::now();
        let got = store.get(key).unwrap();
        samples.push(t.elapsed().as_nanos() as u64);
        assert!(!got.is_empty());
    }
    samples.sort_unstable();
    samples[(samples.len() * 95) / 100 - 1]
}

fn straggler_setup(hedged: bool) -> (Oss, Arc<dyn ObjectStore>, Vec<String>) {
    let oss = Oss::in_memory();
    oss.set_endpoints(2);
    let keys: Vec<String> = (0..8).map(|k| format!("c/{k}")).collect();
    for (k, key) in keys.iter().enumerate() {
        oss.put(key, Bytes::from(data(300 + k as u64, 4096)))
            .unwrap();
    }
    // Endpoint 0 staggers with a heavy tail; endpoint 1 stays healthy. The
    // identical plan/seed is armed in both setups.
    oss.inject_fault(FaultPlan::LatencyPareto {
        prefix: String::new(),
        endpoint: Some(0),
        scale: Duration::from_millis(2),
        shape: 1.5,
        cap: Duration::from_millis(10),
        seed: 31,
    });
    let store: Arc<dyn ObjectStore> = if hedged {
        Arc::new(hedged_over(&oss, eager_policy()))
    } else {
        Arc::new(oss.clone())
    };
    (oss, store, keys)
}

#[test]
fn straggling_endpoint_p95_improves_with_the_resilience_plane() {
    // Baseline: round-robin over both endpoints, so half the reads eat the
    // ≥2ms straggler delay — p95 is pinned at the injected tail.
    let (_oss_a, baseline, keys) = straggler_setup(false);
    let p95_baseline = measured_p95(baseline.as_ref(), &keys, 60);
    // Resilient: health routing learns endpoint 0 is sick after the first
    // slow reads and hedging covers the stragglers in between.
    let (_oss_b, resilient, keys) = straggler_setup(true);
    let p95_resilient = measured_p95(resilient.as_ref(), &keys, 60);
    assert!(
        p95_baseline >= Duration::from_millis(2).as_nanos() as u64,
        "baseline must actually observe the straggler: p95 {p95_baseline}ns"
    );
    assert!(
        p95_resilient < p95_baseline / 2,
        "resilience plane must at least halve p95: {p95_resilient}ns vs {p95_baseline}ns"
    );
}

#[test]
fn straggler_restore_is_byte_identical_end_to_end() {
    // Full backup/restore through a hedged storage layer with one endpoint
    // straggling the whole time: every restored byte must match.
    let oss = Oss::in_memory();
    oss.set_endpoints(2);
    oss.inject_fault(FaultPlan::LatencyPareto {
        prefix: String::new(),
        endpoint: Some(0),
        scale: Duration::from_micros(300),
        shape: 1.5,
        cap: Duration::from_millis(3),
        seed: 41,
    });
    let storage = StorageLayer::open(Arc::new(hedged_over(&oss, eager_policy())));
    let similar = SimilarFileIndex::new();
    let cfg = SlimConfig::small_for_tests();
    let chunker = FastCdcChunker::new(ChunkSpec::from_config(&cfg));
    let file = FileId::new("f");
    let versions: Vec<Vec<u8>> = (0..3).map(|v| data(500 + v, 80_000)).collect();
    for (v, bytes) in versions.iter().enumerate() {
        BackupPipeline::new(&storage, &similar, &chunker, &cfg)
            .backup_file(&file, VersionId(v as u64), bytes)
            .unwrap();
    }
    for (v, bytes) in versions.iter().enumerate() {
        let (restored, _) = RestoreEngine::new(&storage, None)
            .restore_file(
                &file,
                VersionId(v as u64),
                &RestoreOptions::from_config(&cfg),
            )
            .unwrap();
        assert_eq!(&restored, bytes, "version {v} diverged under the straggler");
    }
}

#[test]
fn endpoint_transient_decisions_replay_with_pinning() {
    // Store-level determinism: with the thread pinned, the same seeded
    // endpoint plan yields the same per-op outcome sequence on a fresh
    // store — the property every other test in this file leans on.
    let run = || -> Vec<bool> {
        let oss = Oss::in_memory();
        oss.set_endpoints(2);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::EndpointTransient {
            endpoint: 0,
            prob: 0.5,
            seed: 51,
        });
        let _pin = slim_oss::endpoint::pin(0);
        (0..64).map(|_| oss.get("k").is_ok()).collect()
    };
    let a = run();
    assert_eq!(a, run(), "seeded plan replays exactly");
    assert!(a.iter().any(|x| *x) && a.iter().any(|x| !*x));
}

#[test]
fn builder_wired_retry_stores_use_distinct_jitter_salts() {
    // Two deployments in one process must not back off in lockstep: the
    // builder salts each RetryingStore from a process-wide ordinal.
    let a = slim_oss::next_jitter_salt();
    let b = slim_oss::next_jitter_salt();
    assert_ne!(a, b);
    let base = RetryPolicy::default();
    let pa = base.clone().salted(a);
    let pb = base.clone().salted(b);
    assert_ne!(pa.jitter_seed, pb.jitter_seed);
    assert!((1..=8).any(|r| pa.backoff(r) != pb.backoff(r)));
}

/// Seeded straggler soak: many rounds of mixed single/batch reads under a
/// heavy-tail endpoint with byte-verification on every result. Run with
/// `cargo test --release --test hedging -- --ignored`.
#[test]
#[ignore]
fn soak_straggler_chaos_stays_byte_identical() {
    let oss = Oss::in_memory();
    oss.set_endpoints(2);
    let keys: Vec<String> = (0..16).map(|k| format!("s/{k}")).collect();
    let payloads: Vec<Vec<u8>> = (0..16).map(|k| data(900 + k, 8192)).collect();
    for (key, bytes) in keys.iter().zip(&payloads) {
        oss.put(key, Bytes::from(bytes.clone())).unwrap();
    }
    oss.inject_fault(FaultPlan::LatencyPareto {
        prefix: String::new(),
        endpoint: Some(0),
        scale: Duration::from_micros(400),
        shape: 1.1,
        cap: Duration::from_millis(5),
        seed: 61,
    });
    oss.inject_fault_also(FaultPlan::EndpointTransient {
        endpoint: 0,
        prob: 0.3,
        seed: 62,
    });
    let store = hedged_over(&oss, eager_policy());
    for round in 0u64..200 {
        for (j, key) in keys.iter().enumerate() {
            if let Ok(got) = store.get(key) {
                assert_eq!(got.as_ref(), payloads[j].as_slice(), "round {round}");
            }
        }
        if round % 4 == 0 {
            for (j, result) in store.get_many(&keys).into_iter().enumerate() {
                if let Ok(got) = result {
                    assert_eq!(got.as_ref(), payloads[j].as_slice(), "round {round}");
                }
            }
        }
    }
    assert!(
        store.health().score(0) > store.health().score(1),
        "a soaked tracker has learned which endpoint is sick"
    );
}
