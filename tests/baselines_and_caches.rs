//! Cross-system integration tests: every baseline round-trips the shared
//! workload, and every restore strategy reconstructs identical bytes while
//! respecting its expected I/O ordering (FV never reads more containers than
//! the window-limited baselines given the same budget).

use std::sync::Arc;
use std::time::Duration;

use slim_oss::Oss;
use slim_types::{FileId, SlimConfig, VersionId};
use slimstore_repro::baselines::{
    AlaccRestore, HarSystem, LruContainerRestore, OptContainerRestore, ResticSim, RestoreCacheSim,
    SiloSystem, SparseIndexingSystem,
};
use slimstore_repro::chunking::{ChunkSpec, FastCdcChunker};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::backup::BackupPipeline;
use slimstore_repro::lnode::restore::{RestoreEngine, RestoreOptions};
use slimstore_repro::lnode::StorageLayer;
use slimstore_repro::workload::{Workload, WorkloadConfig};

fn workload_versions() -> (FileId, Vec<Vec<u8>>) {
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let versions = (0..workload.config().versions)
        .map(|v| workload.file_bytes(0, v))
        .collect();
    (workload.file_id(0), versions)
}

#[test]
fn all_dedup_systems_roundtrip_the_same_workload() {
    let (file, versions) = workload_versions();
    let cfg = SlimConfig::small_for_tests();
    let opts = RestoreOptions::from_config(&cfg);

    // SLIMSTORE L-node pipeline.
    {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let similar = SimilarFileIndex::new();
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(&cfg));
        let pipeline = BackupPipeline::new(&storage, &similar, &chunker, &cfg);
        for (v, data) in versions.iter().enumerate() {
            pipeline
                .backup_file(&file, VersionId(v as u64), data)
                .unwrap();
        }
        let engine = RestoreEngine::new(&storage, None);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "slimstore v{v}");
        }
    }

    // SiLO.
    {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let mut silo = SiloSystem::new(
            storage.clone(),
            cfg.clone(),
            Box::new(FastCdcChunker::new(ChunkSpec::from_config(&cfg))),
        );
        for (v, data) in versions.iter().enumerate() {
            silo.backup_file(&file, VersionId(v as u64), data).unwrap();
        }
        let engine = RestoreEngine::new(&storage, None);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "silo v{v}");
        }
    }

    // Sparse Indexing.
    {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let mut sparse = SparseIndexingSystem::new(
            storage.clone(),
            cfg.clone(),
            Box::new(FastCdcChunker::new(ChunkSpec::from_config(&cfg))),
        );
        for (v, data) in versions.iter().enumerate() {
            sparse
                .backup_file(&file, VersionId(v as u64), data)
                .unwrap();
        }
        let engine = RestoreEngine::new(&storage, None);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "sparse-indexing v{v}");
        }
    }

    // HAR.
    {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let mut har = HarSystem::new(
            storage.clone(),
            cfg.clone(),
            Box::new(FastCdcChunker::new(ChunkSpec::from_config(&cfg))),
        );
        for (v, data) in versions.iter().enumerate() {
            har.backup_file(&file, VersionId(v as u64), data).unwrap();
        }
        let engine = RestoreEngine::new(&storage, None);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "har v{v}");
        }
    }

    // restic.
    {
        let restic = ResticSim::new(Arc::new(Oss::in_memory()), Duration::ZERO, 1024);
        for (v, data) in versions.iter().enumerate() {
            restic
                .backup_file(&file, VersionId(v as u64), data)
                .unwrap();
        }
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = restic.restore_file(&file, VersionId(v as u64)).unwrap();
            assert_eq!(&out, expected, "restic v{v}");
        }
    }
}

#[test]
fn restore_strategies_agree_and_fv_reads_fewest() {
    let (file, versions) = workload_versions();
    let cfg = SlimConfig::small_for_tests();
    let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
    let similar = SimilarFileIndex::new();
    let chunker = FastCdcChunker::new(ChunkSpec::from_config(&cfg));
    let pipeline = BackupPipeline::new(&storage, &similar, &chunker, &cfg);
    for (v, data) in versions.iter().enumerate() {
        pipeline
            .backup_file(&file, VersionId(v as u64), data)
            .unwrap();
    }
    let last = VersionId(versions.len() as u64 - 1);
    let expected = versions.last().unwrap();
    let recipe = storage.get_recipe(&file, last).unwrap();

    let budget = 8 * 1024; // deliberately tight
    let engine = RestoreEngine::new(&storage, None);
    let fv_opts = RestoreOptions {
        cache_mem: budget,
        cache_disk: budget * 8,
        law_window: 32,
        prefetch_threads: 0,
    };
    let (fv_out, fv_stats) = engine.restore_file(&file, last, &fv_opts).unwrap();
    assert_eq!(&fv_out, expected);

    let mut others: Vec<(&str, Box<dyn RestoreCacheSim>)> = vec![
        ("lru", Box::new(LruContainerRestore::new(budget))),
        ("opt", Box::new(OptContainerRestore::new(budget, 32))),
        ("alacc", Box::new(AlaccRestore::new(budget / 4, budget, 32))),
    ];
    for (name, sim) in &mut others {
        let (out, stats) = sim.restore(&storage, &recipe).unwrap();
        assert_eq!(&out, expected, "{name} bytes differ");
        assert!(
            fv_stats.containers_read <= stats.containers_read,
            "{name} read fewer containers ({}) than FV ({})",
            stats.containers_read,
            fv_stats.containers_read
        );
    }
}

#[test]
fn restic_lock_serializes_but_stays_correct_under_concurrency() {
    let restic = Arc::new(ResticSim::new(
        Arc::new(Oss::in_memory()),
        Duration::ZERO,
        1024,
    ));
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let files: Vec<_> = workload.version_files(0).collect();
    std::thread::scope(|s| {
        for f in &files {
            let restic = restic.clone();
            s.spawn(move || {
                restic.backup_file(&f.file, VersionId(0), &f.data).unwrap();
            });
        }
    });
    for f in &files {
        let (out, _) = restic.restore_file(&f.file, VersionId(0)).unwrap();
        assert_eq!(out, f.data);
    }
}
