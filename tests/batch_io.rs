//! Batched OSS I/O plane: sequential-equivalence properties and the
//! acceptance check for the G-node offline cycle.
//!
//! The batched operations (`get_many` / `get_range_many` / `len_many` /
//! `delete_many`) pre-draw every fault decision in input order before the
//! worker fan-out, so under any seeded fault schedule a batch must be
//! indistinguishable from the equivalent sequence of single calls: same
//! per-item results, same per-item errors, and byte-identical request/byte
//! counters. Only wall-clock (and the net-time the channel pool charges)
//! may differ — that difference *is* the optimisation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use slim_oss::{FaultPlan, MetricsSnapshot, NetworkModel, ObjectStore, Oss};
use slim_types::{FileId, SlimConfig};
use slimstore::SlimStore;

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Compare two traffic snapshots ignoring the time fields: batching changes
/// when requests run, never how many there are or what they carry.
fn assert_same_traffic(label: &str, mut a: MetricsSnapshot, mut b: MetricsSnapshot) {
    a.net_time = Duration::ZERO;
    b.net_time = Duration::ZERO;
    a.injected_delay = Duration::ZERO;
    b.injected_delay = Duration::ZERO;
    assert_eq!(a, b, "{label}: batched and sequential traffic diverged");
}

/// Build an Oss pre-loaded with `objects` keys and a seeded transient plan.
fn faulty_store(seed: u64, objects: u64) -> Oss {
    let oss = Oss::in_memory();
    for i in 0..objects {
        let len = 64 + (i as usize * 37) % 1500;
        oss.put(&format!("objs/{i:03}"), Bytes::from(data(seed ^ i, len)))
            .unwrap();
    }
    oss.inject_fault(FaultPlan::TransientProb {
        prefix: "objs/".into(),
        prob: 0.4,
        seed,
    });
    oss
}

#[test]
fn get_many_is_equivalent_to_sequential_gets_under_seeded_faults() {
    for seed in [1u64, 7, 42, 0xdead, 0xbeef] {
        // Two identical stores with identical fault schedules; one serves a
        // batch, the other the same keys one by one. Mix in missing keys so
        // per-item errors are exercised too.
        let sequential = faulty_store(seed, 48);
        let batched = faulty_store(seed, 48);
        let keys: Vec<String> = (0..64u64)
            .map(|i| {
                if i % 7 == 3 {
                    format!("missing/{i}")
                } else {
                    format!("objs/{:03}", i % 48)
                }
            })
            .collect();
        let seq_results: Vec<_> = keys.iter().map(|k| sequential.get(k)).collect();
        let batch_results = batched.get_many(&keys);
        assert_eq!(seq_results.len(), batch_results.len());
        for (i, (s, b)) in seq_results.iter().zip(&batch_results).enumerate() {
            match (s, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed} key {i}: payload diverged"),
                (Err(x), Err(y)) => assert_eq!(
                    x.to_string(),
                    y.to_string(),
                    "seed {seed} key {i}: error diverged"
                ),
                _ => panic!(
                    "seed {seed} key {i}: ok/err divergence (sequential {s:?} vs batched {b:?})"
                ),
            }
        }
        assert_same_traffic(
            "get_many",
            sequential.metrics_snapshot().unwrap(),
            batched.metrics_snapshot().unwrap(),
        );
    }
}

#[test]
fn len_and_delete_many_are_equivalent_to_sequential_under_seeded_faults() {
    for seed in [3u64, 11, 0xc0ffee] {
        let sequential = faulty_store(seed, 32);
        let batched = faulty_store(seed, 32);
        let keys: Vec<String> = (0..40u64)
            .map(|i| {
                if i % 9 == 4 {
                    format!("missing/{i}")
                } else {
                    format!("objs/{:03}", i % 32)
                }
            })
            .collect();
        let seq_lens: Vec<_> = keys.iter().map(|k| sequential.len(k)).collect();
        for (i, (s, b)) in seq_lens.iter().zip(batched.len_many(&keys)).enumerate() {
            match (s, &b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed} len {i}"),
                (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string(), "seed {seed} len {i}"),
                _ => panic!("seed {seed} len {i}: ok/err divergence ({s:?} vs {b:?})"),
            }
        }
        let seq_dels: Vec<_> = keys.iter().map(|k| sequential.delete(k)).collect();
        for (i, (s, b)) in seq_dels.iter().zip(batched.delete_many(&keys)).enumerate() {
            match (s, &b) {
                (Ok(()), Ok(())) => {}
                (Err(x), Err(y)) => {
                    assert_eq!(x.to_string(), y.to_string(), "seed {seed} delete {i}")
                }
                _ => panic!("seed {seed} delete {i}: ok/err divergence ({s:?} vs {b:?})"),
            }
        }
        // The surviving key sets must be identical too.
        assert_eq!(sequential.list(""), batched.list(""));
        assert_same_traffic(
            "len/delete_many",
            sequential.metrics_snapshot().unwrap(),
            batched.metrics_snapshot().unwrap(),
        );
    }
}

#[test]
fn batched_reads_draw_the_same_corruption_schedule_as_sequential() {
    use slim_oss::CorruptionKind;
    // Corruption decisions are pre-drawn per plan ordinal: under the same
    // seeded CorruptRead plan, a batch must hand back byte-identically
    // mangled payloads as the equivalent sequence of single reads — the
    // read-repair plane depends on detection being schedule-independent.
    for kind in [CorruptionKind::BitFlip, CorruptionKind::Truncate] {
        for seed in [5u64, 23, 0xfeed] {
            let mk = |seed: u64| {
                let oss = Oss::in_memory();
                for i in 0..24u64 {
                    let len = 80 + (i as usize * 53) % 900;
                    oss.put(&format!("objs/{i:03}"), Bytes::from(data(seed ^ i, len)))
                        .unwrap();
                }
                oss.inject_fault(FaultPlan::CorruptRead {
                    prefix: "objs/".into(),
                    kind,
                    seed,
                });
                oss
            };
            let sequential = mk(seed);
            let batched = mk(seed);
            let keys: Vec<String> = (0..32u64)
                .map(|i| {
                    if i % 11 == 6 {
                        format!("missing/{i}")
                    } else {
                        format!("objs/{:03}", i % 24)
                    }
                })
                .collect();

            let seq_results: Vec<_> = keys.iter().map(|k| sequential.get(k)).collect();
            for (i, (s, b)) in seq_results.iter().zip(batched.get_many(&keys)).enumerate() {
                match (s, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(
                        x, y,
                        "{kind:?} seed {seed} key {i}: mangled payload diverged"
                    ),
                    (Err(x), Err(y)) => {
                        assert_eq!(x.to_string(), y.to_string(), "{kind:?} seed {seed} key {i}")
                    }
                    _ => panic!("{kind:?} seed {seed} key {i}: ok/err divergence ({s:?} vs {b:?})"),
                }
            }

            // Ranged reads draw from the same ordinal stream.
            let ranges: Vec<(String, u64, u64)> =
                keys.iter().map(|k| (k.clone(), 3u64, 40u64)).collect();
            let seq_ranges: Vec<_> = ranges
                .iter()
                .map(|(k, off, len)| sequential.get_range(k, *off, *len))
                .collect();
            for (i, (s, b)) in seq_ranges
                .iter()
                .zip(batched.get_range_many(&ranges))
                .enumerate()
            {
                match (s, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(
                        x, y,
                        "{kind:?} seed {seed} range {i}: mangled payload diverged"
                    ),
                    (Err(x), Err(y)) => assert_eq!(
                        x.to_string(),
                        y.to_string(),
                        "{kind:?} seed {seed} range {i}"
                    ),
                    _ => {
                        panic!("{kind:?} seed {seed} range {i}: ok/err divergence ({s:?} vs {b:?})")
                    }
                }
            }
            assert_same_traffic(
                "corrupt reads",
                sequential.metrics_snapshot().unwrap(),
                batched.metrics_snapshot().unwrap(),
            );
        }
    }
}

/// Acceptance: with the paper's OSS-like network model, the G-node offline
/// cycle (reverse dedup + version collection) over ≥ 32 containers is faster
/// through the batched I/O plane than with batching disabled
/// (`set_batch_workers(1)`), while the request/byte counters stay identical.
#[test]
fn batched_gnode_cycle_is_faster_with_identical_traffic() {
    fn run_cycle(batch_workers: Option<usize>) -> (MetricsSnapshot, Duration) {
        let oss = Oss::new(NetworkModel::oss_like());
        if let Some(cap) = batch_workers {
            oss.set_batch_workers(cap);
        }
        let store = SlimStore::builder()
            .with_object_store(Arc::new(oss.clone()))
            .with_config(SlimConfig::small_for_tests())
            .build()
            .unwrap();
        // Version 0 stores `a`; version 1 stores the same bytes under a new
        // file name, which the online (similarity) path cannot dedup — every
        // chunk is an exact duplicate only the offline reverse dedup finds.
        let payload = data(99, 320_000);
        store
            .backup_version(vec![(FileId::new("a"), payload.clone())])
            .unwrap();
        let report = store
            .backup_version(vec![(FileId::new("b"), payload)])
            .unwrap();
        let new_containers = store.storage().list_containers().len();
        assert!(
            new_containers >= 64,
            "need ≥ 32 containers per version for the sweep to matter, have {new_containers} total"
        );
        let before = oss.metrics_snapshot().unwrap();
        let t0 = Instant::now();
        store.run_gnode_cycle(report.version).unwrap();
        store.retain_last(1).unwrap();
        let elapsed = t0.elapsed();
        (oss.metrics_snapshot().unwrap().since(&before), elapsed)
    }

    let (seq_traffic, seq_time) = run_cycle(Some(1));
    let (batch_traffic, batch_time) = run_cycle(None);
    assert_same_traffic("gnode cycle", seq_traffic, batch_traffic);
    assert!(
        batch_time < seq_time,
        "batched G-node cycle must beat the sequential one: batched {batch_time:?} vs sequential {seq_time:?}"
    );
}
