//! System tests of the multi-tenant request plane (`slim-frontend`): the
//! tenant-isolation property (one tenant's flood cannot starve another
//! tenant's restores), priority classes under load (maintenance is
//! deprioritized while foreground p95 stays bounded), seeded open-loop
//! overload (arrival rate > service rate sheds with `Overloaded` instead
//! of queueing unboundedly), drain-on-shutdown, byte-identical equivalence
//! with the direct `SlimStore` path, seeded transient-fault chaos through
//! the frontend, and a kill-point sweep over a frontend-submitted G-node
//! cycle.

use std::sync::Arc;
use std::time::Duration;

use slim_frontend::{FrontendBuilder, FrontendConfig, ManualClock, Request, TenantPolicy};
use slim_oss::rocks::RocksConfig;
use slim_oss::{FaultPlan, ObjectStore, Oss, RetryPolicy, RetryingStore};
use slim_types::{FileId, SlimConfig, SlimError, VersionId};
use slim_workload::PoissonArrivals;
use slimstore::{SlimStoreBuilder, TenantStoreManager};

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn manager_over(base: Arc<dyn ObjectStore>) -> Arc<TenantStoreManager> {
    Arc::new(
        TenantStoreManager::new(base)
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests()),
    )
}

fn manager() -> Arc<TenantStoreManager> {
    manager_over(Arc::new(Oss::in_memory()))
}

fn backup_req(file: &str, bytes: Vec<u8>) -> Request {
    Request::Backup {
        files: vec![(FileId::new(file), bytes)],
        jobs: 1,
    }
}

/// One tenant floods the (single-worker) frontend with queued backups;
/// another tenant's restores — a higher priority class — jump the queue
/// and complete byte-identically while the flood is still pending.
#[test]
fn tenant_flood_cannot_starve_another_tenants_restores() {
    let fe = FrontendBuilder::new(manager())
        .with_config(FrontendConfig::small_for_tests().with_workers(1))
        .start()
        .unwrap();
    // Victim's data goes in first, quietly.
    let payload = data(1, 48_000);
    let version = fe
        .submit("victim", backup_req("db/v", payload.clone()))
        .unwrap()
        .wait()
        .unwrap()
        .into_backup()
        .unwrap()
        .version;

    // The flood: 40 queued backups from a noisy neighbour.
    let flood: Vec<_> = (0..40u64)
        .map(|i| {
            fe.submit(
                "noisy",
                backup_req(&format!("f{i:02}"), data(100 + i, 64_000)),
            )
            .unwrap()
        })
        .collect();
    // The victim's restores arrive *after* the flood is queued.
    let restores: Vec<_> = (0..3)
        .map(|_| {
            fe.submit(
                "victim",
                Request::RestoreFile {
                    file: FileId::new("db/v"),
                    version,
                },
            )
            .unwrap()
        })
        .collect();
    for ticket in restores {
        let (bytes, _) = ticket.wait().unwrap().into_file().unwrap();
        assert_eq!(bytes, payload, "restore is byte-identical under flood");
    }
    // Strict priority: the flood is still pending when the restores are
    // done — the victim never waited behind the whole backlog.
    let stats = fe.stats();
    assert!(
        stats.queued + stats.inflight > 0,
        "flood should still be pending, got {stats:?}"
    );
    for ticket in flood {
        ticket.wait().unwrap().into_backup().unwrap();
    }
    fe.shutdown();
}

/// Maintenance queued ahead of foreground work is deprioritized: queued
/// restores overtake queued G-node cycles, and the restore p95 stays below
/// the maintenance p95 (maintenance soaks up the queueing delay).
#[test]
fn maintenance_is_deprioritized_and_foreground_p95_stays_bounded() {
    let fe = FrontendBuilder::new(manager())
        .with_config(FrontendConfig::small_for_tests().with_workers(1))
        .start()
        .unwrap();
    let payload = data(2, 48_000);
    let version = fe
        .submit("fg", backup_req("db/f", payload.clone()))
        .unwrap()
        .wait()
        .unwrap()
        .into_backup()
        .unwrap()
        .version;
    let maint_version = fe
        .submit("mt", backup_req("db/m", data(3, 48_000)))
        .unwrap()
        .wait()
        .unwrap()
        .into_backup()
        .unwrap()
        .version;

    // 16 maintenance cycles queued first, 4 restores second.
    let maints: Vec<_> = (0..16)
        .map(|_| {
            fe.submit(
                "mt",
                Request::GNodeCycle {
                    version: maint_version,
                },
            )
            .unwrap()
        })
        .collect();
    let restores: Vec<_> = (0..4)
        .map(|_| {
            fe.submit(
                "fg",
                Request::RestoreFile {
                    file: FileId::new("db/f"),
                    version,
                },
            )
            .unwrap()
        })
        .collect();
    for ticket in restores {
        let (bytes, _) = ticket.wait().unwrap().into_file().unwrap();
        assert_eq!(bytes, payload);
    }
    // Foreground finished while maintenance still has a backlog.
    let snap = fe.telemetry_snapshot();
    let maint_done = snap
        .histogram("frontend.latency_ns.maintenance")
        .map_or(0, |h| h.count);
    assert!(
        maint_done < 16,
        "all {maint_done} maintenance cycles ran before the restores finished"
    );
    for ticket in maints {
        ticket.wait().unwrap().into_maintenance().unwrap();
    }
    let snap = fe.telemetry_snapshot();
    let restore_p95 = snap
        .histogram("frontend.latency_ns.restore")
        .expect("restores recorded")
        .p95();
    let maint_p95 = snap
        .histogram("frontend.latency_ns.maintenance")
        .expect("maintenance recorded")
        .p95();
    assert!(
        restore_p95 < maint_p95,
        "restore p95 {restore_p95}ns should undercut deprioritized maintenance p95 {maint_p95}ns"
    );
    fe.shutdown();
}

/// A seeded open-loop arrival process offering far more than the service
/// rate: the bounded queue sheds the excess with `Overloaded` (retryable)
/// instead of queueing unboundedly, the queue depth honours its bound, and
/// every *admitted* request completes.
#[test]
fn seeded_overload_sheds_with_overloaded_instead_of_queueing_unboundedly() {
    let capacity = 8usize;
    let fe = FrontendBuilder::new(manager())
        .with_config(
            FrontendConfig::small_for_tests()
                .with_workers(1)
                .with_default_policy(TenantPolicy::default().with_queue_capacity(capacity)),
        )
        .start()
        .unwrap();
    // 120 backup arrivals from a seeded Poisson process — the timestamps
    // order the offered load; submission is open-loop (never waits).
    let arrivals = PoissonArrivals::new(500.0, 0xF00D).take(120);
    let mut admitted = Vec::new();
    let mut shed = 0u32;
    let mut max_queued = 0usize;
    for (i, _when) in arrivals.enumerate() {
        match fe.submit(
            "burst",
            backup_req(&format!("f{i:03}"), data(i as u64, 32_000)),
        ) {
            Ok(ticket) => admitted.push(ticket),
            Err(SlimError::Overloaded(msg)) => {
                assert!(msg.contains("queue full"), "{msg}");
                assert!(SlimError::Overloaded(msg).is_retryable());
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        max_queued = max_queued.max(fe.stats().queued);
    }
    assert!(shed > 0, "offered 120 at capacity {capacity}: must shed");
    assert!(!admitted.is_empty(), "some requests must be admitted");
    assert!(
        max_queued <= capacity,
        "queue depth {max_queued} exceeded its bound {capacity}"
    );
    // Every admitted request completes once the burst subsides.
    for ticket in admitted {
        ticket.wait().unwrap().into_backup().unwrap();
    }
    let snap = fe.telemetry_snapshot();
    assert_eq!(snap.counter("frontend.shed.queue_full"), u64::from(shed));
    assert_eq!(
        snap.counter("frontend.admitted"),
        snap.counter("frontend.completed")
    );
    fe.shutdown();
}

/// Token-bucket rate limiting on a manual clock replaying seeded Poisson
/// arrival timestamps: the limited tenant sheds deterministically, the
/// unlimited tenant is untouched. Admission decisions depend only on the
/// virtual clock, so the outcome is exactly reproducible.
#[test]
fn rate_limited_tenant_sheds_deterministically_unlimited_tenant_unaffected() {
    let clock = Arc::new(ManualClock::new());
    let fe = FrontendBuilder::new(manager())
        .with_config(FrontendConfig::small_for_tests())
        .with_clock(clock.clone())
        .with_tenant_policy("limited", TenantPolicy::default().with_rate(20.0, 4.0))
        .start()
        .unwrap();
    let mut outcomes = Vec::new();
    // ~80/s offered against a 20/s limit (burst 4).
    for when in PoissonArrivals::new(80.0, 0xBEEF).take_until(Duration::from_secs(1)) {
        clock.set(when);
        let limited = fe.submit("limited", backup_req("l", data(9, 2_000)));
        let unlimited = fe.submit("unlimited", backup_req("u", data(9, 2_000)));
        assert!(unlimited.is_ok(), "unlimited tenant must never be shed");
        outcomes.push(match limited {
            Ok(t) => {
                t.wait().unwrap().into_backup().unwrap();
                true
            }
            Err(SlimError::Overloaded(msg)) => {
                assert!(msg.contains("rate limit"), "{msg}");
                false
            }
            Err(other) => panic!("unexpected error: {other}"),
        });
        unlimited.unwrap().wait().unwrap().into_backup().unwrap();
    }
    let admitted = outcomes.iter().filter(|ok| **ok).count();
    let total = outcomes.len();
    assert!(
        admitted < total,
        "offering 4x the rate limit must shed some of {total}"
    );
    // Burst 4 + ~20 refilled over the 1s window, with slack for the
    // exact seeded arrival pattern.
    assert!(
        (10..=34).contains(&admitted),
        "admitted {admitted} of {total}, expected ~24"
    );
    let snap = fe.telemetry_snapshot();
    assert_eq!(
        snap.counter("frontend.shed.rate_limit"),
        (total - admitted) as u64
    );
    fe.shutdown();
}

/// Drain-on-shutdown: everything admitted before the drain completes (and
/// stays restorable), everything submitted after is refused retryably.
#[test]
fn shutdown_drains_admitted_work_and_refuses_new_work() {
    let fe = FrontendBuilder::new(manager())
        .with_config(FrontendConfig::small_for_tests().with_workers(2))
        .start()
        .unwrap();
    let tickets: Vec<_> = (0..10u64)
        .map(|i| {
            fe.submit("acme", backup_req(&format!("f{i}"), data(i, 24_000)))
                .unwrap()
        })
        .collect();
    fe.shutdown();
    // Every admitted backup committed a version before the pool stopped.
    let mut versions = Vec::new();
    for ticket in tickets {
        assert!(ticket.is_done(), "drained frontend left a ticket pending");
        versions.push(ticket.wait().unwrap().into_backup().unwrap().version);
    }
    versions.sort();
    assert_eq!(versions, (0..10).map(VersionId).collect::<Vec<_>>());
    match fe.submit("acme", backup_req("late", data(99, 1_000))) {
        Err(err @ SlimError::Overloaded(_)) => assert!(err.is_retryable()),
        other => panic!("expected Overloaded after shutdown, got {other:?}"),
    }
    // The deployment itself is untouched by the drain: direct reads work.
    let store = fe.manager().get("acme").expect("deployment built");
    let (bytes, _) = store
        .restore_file(&FileId::new("f3"), VersionId(3))
        .unwrap();
    assert_eq!(bytes, data(3, 24_000));
}

/// The frontend path is byte-identical to the direct `SlimStore` path:
/// same files, same chunking config — the restored bytes (and the stored
/// version history) agree.
#[test]
fn frontend_path_matches_direct_store_path_byte_for_byte() {
    let files: Vec<(FileId, Vec<u8>)> = (0..4u64)
        .map(|i| (FileId::new(format!("db/f{i}")), data(40 + i, 30_000)))
        .collect();

    // Direct path.
    let direct = SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap();
    let dv = direct.backup_version(files.clone()).unwrap().version;

    // Frontend path.
    let fe = FrontendBuilder::new(manager())
        .with_config(FrontendConfig::small_for_tests())
        .start()
        .unwrap();
    let fv = fe
        .submit(
            "acme",
            Request::Backup {
                files: files.clone(),
                jobs: 2,
            },
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_backup()
        .unwrap()
        .version;
    assert_eq!(dv, fv);

    for (file, expected) in &files {
        let (direct_bytes, _) = direct.restore_file(file, dv).unwrap();
        let (frontend_bytes, _) = fe
            .submit(
                "acme",
                Request::RestoreFile {
                    file: file.clone(),
                    version: fv,
                },
            )
            .unwrap()
            .wait()
            .unwrap()
            .into_file()
            .unwrap();
        assert_eq!(&direct_bytes, expected);
        assert_eq!(&frontend_bytes, expected);
    }
    fe.shutdown();
}

/// Seeded transient-fault chaos through the frontend: a retrying store
/// under the tenant manager absorbs a p=0.25 fault schedule; every
/// submitted request completes and every version restores byte-identically.
#[test]
fn chaos_transient_faults_through_the_frontend_preserve_every_version() {
    let oss = Oss::in_memory();
    let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(16));
    let fe = FrontendBuilder::new(manager_over(Arc::new(retrying)))
        .with_config(FrontendConfig::small_for_tests().with_workers(2))
        .start()
        .unwrap();
    oss.inject_fault(FaultPlan::TransientProb {
        prefix: String::new(),
        prob: 0.25,
        seed: 0x51AB_1E5,
    });
    let mut history = Vec::new();
    for round in 0..3u64 {
        let payload = data(60 + round, 36_000);
        let version = fe
            .submit("acme", backup_req("db/f", payload.clone()))
            .unwrap()
            .wait()
            .unwrap()
            .into_backup()
            .unwrap()
            .version;
        assert_eq!(version, VersionId(round));
        history.push(payload);
        for (v, expected) in history.iter().enumerate() {
            let (bytes, _) = fe
                .submit(
                    "acme",
                    Request::RestoreFile {
                        file: FileId::new("db/f"),
                        version: VersionId(v as u64),
                    },
                )
                .unwrap()
                .wait()
                .unwrap()
                .into_file()
                .unwrap();
            assert_eq!(&bytes, expected, "v{v} under transient chaos");
        }
    }
    oss.clear_faults();
    fe.shutdown();
}

fn bucket_snapshot(oss: &Oss) -> Vec<(String, Vec<u8>)> {
    oss.list("")
        .into_iter()
        .map(|k| {
            let v = oss.get(&k).unwrap().to_vec();
            (k, v)
        })
        .collect()
}

fn bucket_restore(base: &[(String, Vec<u8>)]) -> Oss {
    let oss = Oss::in_memory();
    for (k, v) in base {
        oss.put(k, v.clone().into()).unwrap();
    }
    oss
}

/// Kill-point sweep over a frontend-submitted maintenance cycle: whatever
/// OSS operation dies (during the tenant deployment build *or* the cycle
/// itself), the error surfaces through the ticket, a reopened deployment
/// recovers via the intent journal, every version stays byte-identical
/// through the frontend, and re-running the cycle converges.
#[test]
fn frontend_maintenance_kill_point_sweep_recovers_at_every_stage() {
    let file = FileId::new("db/a");
    let v0 = data(80, 20_000);
    let mut v1 = v0.clone();
    v1[2_000..2_600].copy_from_slice(&data(81, 600));

    // Pristine bucket: two backed-up versions, cycle for v1 NOT yet run.
    let pristine = Oss::in_memory();
    {
        let fe = FrontendBuilder::new(manager_over(Arc::new(pristine.clone())))
            .with_config(FrontendConfig::small_for_tests().with_workers(1))
            .start()
            .unwrap();
        for payload in [&v0, &v1] {
            fe.submit("acme", backup_req("db/a", payload.clone()))
                .unwrap()
                .wait()
                .unwrap()
                .into_backup()
                .unwrap();
        }
        fe.shutdown();
    }
    let base = bucket_snapshot(&pristine);

    let verify_through = |oss: &Oss| {
        let fe = FrontendBuilder::new(manager_over(Arc::new(oss.clone())))
            .with_config(FrontendConfig::small_for_tests().with_workers(1))
            .start()
            .unwrap();
        for (v, expected) in [(0u64, &v0), (1u64, &v1)] {
            let (bytes, _) = fe
                .submit(
                    "acme",
                    Request::RestoreFile {
                        file: file.clone(),
                        version: VersionId(v),
                    },
                )
                .unwrap()
                .wait()
                .unwrap()
                .into_file()
                .unwrap();
            assert_eq!(&bytes, expected, "v{v} after kill");
        }
        fe.shutdown();
    };

    let mut consecutive_ok = 0u32;
    let mut succeeded = false;
    let mut kills = 0u32;
    for kill_point in 1..=20_000u64 {
        let oss = bucket_restore(&base);
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        // The kill can land inside the deployment build (journal replay,
        // index load) or inside the cycle — both must be survivable.
        let result = {
            let fe = FrontendBuilder::new(manager_over(Arc::new(oss.clone())))
                .with_config(FrontendConfig::small_for_tests().with_workers(1))
                .start()
                .unwrap();
            let outcome = match fe.submit(
                "acme",
                Request::GNodeCycle {
                    version: VersionId(1),
                },
            ) {
                Ok(ticket) => ticket.wait().map(|_| ()),
                Err(err) => Err(err),
            };
            fe.shutdown();
            outcome
        };
        oss.clear_faults();

        verify_through(&oss);
        if result.is_ok() {
            // Best-effort steps can absorb one fault and still succeed, so
            // require several consecutive clean runs before stopping.
            consecutive_ok += 1;
            if consecutive_ok >= 3 {
                succeeded = true;
                break;
            }
            continue;
        }
        consecutive_ok = 0;
        kills += 1;
        // Re-running the interrupted cycle through a fresh frontend
        // converges; the data stays byte-identical.
        let fe = FrontendBuilder::new(manager_over(Arc::new(oss.clone())))
            .with_config(FrontendConfig::small_for_tests().with_workers(1))
            .start()
            .unwrap();
        fe.submit(
            "acme",
            Request::GNodeCycle {
                version: VersionId(1),
            },
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_maintenance()
        .unwrap();
        fe.shutdown();
        verify_through(&oss);
    }
    assert!(succeeded, "sweep never reached the end of the cycle");
    assert!(kills > 0, "sweep must actually kill at least one run");
}
