//! End-to-end system tests: the full SLIMSTORE lifecycle through the public
//! [`slimstore`] API — multi-file versions, G-node cycles, retention,
//! reopening, elastic scaling.

use std::sync::Arc;

use slim_oss::rocks::RocksConfig;
use slim_oss::{ObjectStore, Oss};
use slim_types::{FileId, SlimConfig, VersionId};
use slim_workload::{Workload, WorkloadConfig};
use slimstore::{SlimStore, SlimStoreBuilder};

fn test_store() -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

#[test]
fn workload_lifecycle_with_gnode_and_retention() {
    let store = test_store();
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let versions = workload.config().versions;

    // Back up every version, G-node cycle after each.
    let mut history: Vec<Vec<(FileId, Vec<u8>)>> = Vec::new();
    for v in 0..versions {
        let files: Vec<_> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        let report = store.backup_version_with_jobs(files.clone(), 2).unwrap();
        assert_eq!(report.version, VersionId(v as u64));
        store.run_gnode_cycle(report.version).unwrap();
        history.push(files);
    }

    // Every version restores byte-identically, and the metadata scrub
    // agrees everything is resolvable.
    for (v, files) in history.iter().enumerate() {
        store.verify_version(VersionId(v as u64), files).unwrap();
    }
    assert!(store.scrub().unwrap() > 0);

    // Dedup is effective: stored bytes well below logical bytes.
    let logical: u64 = history
        .iter()
        .flat_map(|files| files.iter().map(|(_, d)| d.len() as u64))
        .sum();
    let stored = store.space_report().unwrap().container_bytes;
    // The tiny workload mutates uniformly (the hardest case for dedup);
    // still expect a solid reduction.
    assert!(
        stored * 7 < logical * 5,
        "expected at least 1.4x reduction: {stored} vs {logical}"
    );

    // Keep the last two versions; the rest are swept.
    store.retain_last(2).unwrap();
    assert_eq!(store.versions().len(), 2);
    store.scrub().unwrap();
    for (v, files) in history.iter().enumerate().skip(versions - 2) {
        store.verify_version(VersionId(v as u64), files).unwrap();
    }
    assert!(store.restore_file(&history[0][0].0, VersionId(0)).is_err());
}

#[test]
fn vacuum_reclaims_marked_bytes_without_breaking_restores() {
    let store = test_store();
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let mut history = Vec::new();
    for v in 0..4 {
        let files: Vec<_> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        let report = store.backup_version(files.clone()).unwrap();
        store.run_gnode_cycle(report.version).unwrap();
        history.push(files);
    }
    let before = store.space_report().unwrap().container_bytes;
    store.gnode().vacuum().unwrap();
    let after = store.space_report().unwrap().container_bytes;
    assert!(after <= before, "vacuum must not grow the store");
    for (v, files) in history.iter().enumerate() {
        store.verify_version(VersionId(v as u64), files).unwrap();
    }
}

#[test]
fn reopened_deployment_continues_seamlessly() {
    let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let v0: Vec<_> = workload
        .version_files(0)
        .map(|f| (f.file, f.data))
        .collect();
    let v1: Vec<_> = workload
        .version_files(1)
        .map(|f| (f.file, f.data))
        .collect();

    {
        let store = SlimStoreBuilder::in_memory()
            .with_object_store(oss.clone())
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap();
        let r = store.backup_version(v0.clone()).unwrap();
        store.run_gnode_cycle(r.version).unwrap();
    }

    let store = SlimStoreBuilder::in_memory()
        .with_object_store(oss)
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap();
    // Old data restorable; new version dedups against it.
    store.verify_version(VersionId(0), &v0).unwrap();
    let report = store.backup_version(v1.clone()).unwrap();
    assert_eq!(report.version, VersionId(1));
    assert!(
        report.stats.dedup_ratio() > 0.3,
        "similar-file index must survive reopen: {}",
        report.stats.dedup_ratio()
    );
    store.verify_version(VersionId(1), &v1).unwrap();
}

#[test]
fn elastic_scaling_mid_stream() {
    let store = test_store();
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let files: Vec<_> = workload
        .version_files(0)
        .map(|f| (f.file, f.data))
        .collect();
    store.backup_version_with_jobs(files.clone(), 1).unwrap();
    store.scale_l_nodes(4).unwrap();
    let files1: Vec<_> = workload
        .version_files(1)
        .map(|f| (f.file, f.data))
        .collect();
    let report = store.backup_version_with_jobs(files1.clone(), 4).unwrap();
    assert!(report.stats.dedup_ratio() > 0.3);
    store.verify_version(VersionId(0), &files).unwrap();
    store.verify_version(VersionId(1), &files1).unwrap();
}

#[test]
fn restore_version_returns_all_files_in_order() {
    let store = test_store();
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let files: Vec<_> = workload
        .version_files(0)
        .map(|f| (f.file, f.data))
        .collect();
    store.backup_version_with_jobs(files.clone(), 2).unwrap();
    let restored = store.restore_version(VersionId(0), 3).unwrap();
    assert_eq!(restored.len(), files.len());
    for ((f, d), (rf, rd, stats)) in files.iter().zip(&restored) {
        assert_eq!(f, rf);
        assert_eq!(d, rd);
        assert_eq!(stats.restored_bytes, d.len() as u64);
    }
}

#[test]
fn space_report_structure() {
    let store = test_store();
    let workload = Workload::new(WorkloadConfig::tiny_for_tests());
    let files: Vec<_> = workload
        .version_files(0)
        .map(|f| (f.file, f.data))
        .collect();
    let r = store.backup_version(files.clone()).unwrap();
    store.run_gnode_cycle(r.version).unwrap();
    let report = store.space_report().unwrap();
    assert!(report.container_bytes > 0);
    assert!(report.recipe_bytes > 0);
    assert!(report.global_index_bytes > 0, "global index persisted");
    assert!(
        report.redundancy_bytes > 0,
        "the cycle built the redundancy plane"
    );
    assert_eq!(report.quarantine_bytes, 0, "nothing quarantined");
    assert!(report.other_bytes > 0, "manifests + similar index");
    assert_eq!(
        report.total(),
        report.container_bytes
            + report.recipe_bytes
            + report.global_index_bytes
            + report.redundancy_bytes
            + report.quarantine_bytes
            + report.other_bytes
    );
}

#[test]
fn tenants_share_bucket_but_nothing_else() {
    let bucket: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
    let mk = |name: &str| {
        SlimStoreBuilder::in_memory()
            .with_object_store(bucket.clone())
            .with_tenant(name)
            .unwrap()
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap()
    };
    let acme = mk("acme");
    let globex = mk("globex");
    let file = FileId::new("shared/name.txt");
    let data_a = b"acme secret payroll".repeat(400);
    let data_b = b"globex launch codes".repeat(400);
    acme.backup_version(vec![(file.clone(), data_a.clone())])
        .unwrap();
    globex
        .backup_version(vec![(file.clone(), data_b.clone())])
        .unwrap();
    // Same file id, same version id, fully isolated contents.
    let (got_a, _) = acme.restore_file(&file, VersionId(0)).unwrap();
    let (got_b, _) = globex.restore_file(&file, VersionId(0)).unwrap();
    assert_eq!(got_a, data_a);
    assert_eq!(got_b, data_b);
    // G-node cycles stay in-tenant.
    acme.run_gnode_cycle(VersionId(0)).unwrap();
    acme.scrub().unwrap();
    globex.scrub().unwrap();
    let (got_b2, _) = globex.restore_file(&file, VersionId(0)).unwrap();
    assert_eq!(got_b2, data_b);
    // Reopening a tenant sees only its own history.
    let acme2 = mk("acme");
    assert_eq!(acme2.versions(), vec![VersionId(0)]);
    let (got, _) = acme2.restore_file(&file, VersionId(0)).unwrap();
    assert_eq!(got, data_a);
}

#[test]
fn failed_file_job_fails_the_version_and_retry_succeeds() {
    let oss = Oss::in_memory();
    let store = SlimStoreBuilder::in_memory()
        .with_object_store(Arc::new(oss.clone()))
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap();
    let files: Vec<(FileId, Vec<u8>)> = (0..4u64)
        .map(|i| {
            use rand::{RngCore, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(70 + i);
            let mut d = vec![0u8; 8000];
            rng.fill_bytes(&mut d);
            (FileId::new(format!("f{i}")), d)
        })
        .collect();
    // Fail one container write mid-version: the whole version errors.
    oss.inject_fault(slim_oss::FaultPlan::NthOnPrefix {
        prefix: "containers/".into(),
        nth: 3,
    });
    assert!(store.backup_version_with_jobs(files.clone(), 2).is_err());
    oss.clear_faults();
    assert!(
        store.versions().is_empty(),
        "failed version must not be listed"
    );
    // Retry consumes a fresh version id and fully succeeds.
    let report = store.backup_version_with_jobs(files.clone(), 2).unwrap();
    assert_eq!(
        report.version,
        VersionId(1),
        "v0 id was burned by the failure"
    );
    store.verify_version(report.version, &files).unwrap();
    store.run_gnode_cycle(report.version).unwrap();
    store.scrub().unwrap();
}

#[test]
fn retain_last_zero_deletes_everything() {
    let store = test_store();
    let f = FileId::new("f");
    for v in 0..3u64 {
        store
            .backup_version(vec![(f.clone(), vec![v as u8; 4000])])
            .unwrap();
        store.run_gnode_cycle(VersionId(v)).unwrap();
    }
    store.retain_last(0).unwrap();
    assert!(store.versions().is_empty());
    assert!(store.restore_file(&f, VersionId(2)).is_err());
    // The store remains usable afterwards.
    let r = store
        .backup_version(vec![(f.clone(), vec![9u8; 4000])])
        .unwrap();
    store
        .verify_version(r.version, &[(f, vec![9u8; 4000])])
        .unwrap();
}

#[test]
fn scrub_detects_manually_corrupted_store() {
    let oss = Oss::in_memory();
    let store = SlimStoreBuilder::in_memory()
        .with_object_store(Arc::new(oss.clone()))
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap();
    let f = FileId::new("f");
    let data = vec![5u8; 20_000];
    store.backup_version(vec![(f.clone(), data)]).unwrap();
    store.scrub().unwrap();
    // Vandalize: delete one container out from under the recipes.
    let victim = oss
        .list("containers/")
        .into_iter()
        .find(|k| k.ends_with("/meta"))
        .unwrap();
    oss.delete(&victim).unwrap();
    oss.delete(&victim.replace("/meta", "/data")).unwrap();
    let err = store.scrub().unwrap_err();
    assert!(
        matches!(err, slim_types::SlimError::ChunkUnresolvable { .. }),
        "scrub must flag the hole: {err}"
    );
}
