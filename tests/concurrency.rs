//! Concurrency tests: parallel jobs over the shared storage layer must
//! neither corrupt state nor deadlock — backups across many L-nodes,
//! restores concurrent with backups, and container-id allocation under
//! contention.

use std::sync::Arc;

use slim_oss::rocks::RocksConfig;
use slim_oss::Oss;
use slim_types::{FileId, SlimConfig, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};
use slimstore_repro::index::SimilarFileIndex;
use slimstore_repro::lnode::{LNode, StorageLayer};

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn store() -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

#[test]
fn many_concurrent_file_jobs_one_version() {
    let store = store();
    store.scale_l_nodes(4).unwrap();
    let files: Vec<(FileId, Vec<u8>)> = (0..24u64)
        .map(|i| (FileId::new(format!("f{i:02}")), data(i, 12_000)))
        .collect();
    let report = store.backup_version_with_jobs(files.clone(), 12).unwrap();
    assert_eq!(report.files, 24);
    store.run_gnode_cycle(report.version).unwrap();
    store.verify_version(report.version, &files).unwrap();
}

#[test]
fn restores_run_while_backup_progresses() {
    let store = Arc::new(store());
    let file_a = FileId::new("a");
    let file_b = FileId::new("b");
    let a0 = data(1, 30_000);
    let b0 = data(2, 30_000);
    store
        .backup_version(vec![
            (file_a.clone(), a0.clone()),
            (file_b.clone(), b0.clone()),
        ])
        .unwrap();

    // Thread 1 backs up v1 while thread 2 repeatedly restores v0.
    let a1 = data(3, 30_000);
    let b1 = data(4, 30_000);
    std::thread::scope(|s| {
        let st = store.clone();
        let (fa, fb, a1c, b1c) = (file_a.clone(), file_b.clone(), a1.clone(), b1.clone());
        s.spawn(move || {
            st.backup_version_with_jobs(vec![(fa, a1c), (fb, b1c)], 2)
                .unwrap();
        });
        let st = store.clone();
        let (fa, a0c) = (file_a.clone(), a0.clone());
        s.spawn(move || {
            for _ in 0..5 {
                let (bytes, _) = st.restore_file(&fa, VersionId(0)).unwrap();
                assert_eq!(bytes, a0c);
            }
        });
    });
    store
        .verify_version(VersionId(1), &[(file_a, a1), (file_b, b1)])
        .unwrap();
}

#[test]
fn container_ids_unique_under_contention() {
    let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let storage = storage.clone();
        handles.push(std::thread::spawn(move || {
            (0..200)
                .map(|_| storage.allocate_container_id().0)
                .collect::<Vec<u64>>()
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let total = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), total, "duplicate container ids allocated");
}

#[test]
fn telemetry_registry_is_exact_under_contention() {
    use slimstore_repro::telemetry::Registry;
    const THREADS: usize = 8;
    const METRICS: usize = 16;
    const ITERS: u64 = 2_000;
    let registry = Registry::new();
    // Every thread hammers every metric: counters increment, gauges add,
    // histograms record — handles are looked up by name concurrently, so
    // this also races the get-or-create path.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let registry = registry.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    for m in 0..METRICS {
                        let scope = registry.scope("node").child(&m.to_string());
                        scope.counter("ops").inc();
                        scope.gauge("depth").add(1);
                        scope.span_histogram("work").record(t as u64 * ITERS + i);
                    }
                }
            });
        }
    });
    let snap = registry.snapshot();
    for m in 0..METRICS {
        assert_eq!(
            snap.counter(&format!("node.{m}.ops")),
            (THREADS as u64) * ITERS,
            "metric {m}: no increment lost"
        );
        assert_eq!(
            snap.gauge(&format!("node.{m}.depth")),
            (THREADS * ITERS as usize) as i64
        );
        let hist = snap.span(&format!("node.{m}"), "work").unwrap();
        assert_eq!(hist.count, (THREADS as u64) * ITERS);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, (THREADS as u64 - 1) * ITERS + ITERS - 1);
    }
}

#[test]
fn independent_lnodes_backup_distinct_files_concurrently() {
    let oss = Oss::in_memory();
    let storage = StorageLayer::open(Arc::new(oss));
    let similar = SimilarFileIndex::new();
    let cfg = SlimConfig::small_for_tests();
    let inputs: Vec<(FileId, Vec<u8>)> = (0..6u64)
        .map(|i| (FileId::new(format!("n{i}")), data(40 + i, 20_000)))
        .collect();
    std::thread::scope(|s| {
        for (file, bytes) in &inputs {
            let node = LNode::new(storage.clone(), similar.clone(), cfg.clone()).unwrap();
            s.spawn(move || {
                node.backup_file(file, VersionId(0), bytes).unwrap();
            });
        }
    });
    // All files restore from a fresh node.
    let node = LNode::new(storage, similar, cfg).unwrap();
    for (file, bytes) in &inputs {
        let (out, _) = node.restore_file(file, VersionId(0), None).unwrap();
        assert_eq!(&out, bytes, "{file}");
    }
}
