//! Property-based tests of the telemetry subsystem, plus the end-to-end
//! acceptance check: after a backup + restore + G-node cycle the system
//! snapshot reports every pipeline phase, survives a JSON round trip, and
//! the generic snapshot delta matches the per-backup report.

use proptest::prelude::*;
use slim_oss::rocks::RocksConfig;
use slim_types::{FileId, SlimConfig};
use slimstore::{SlimStore, SlimStoreBuilder};
use slimstore_repro::telemetry::{
    bucket_ceiling, bucket_of, Histogram, HistogramSnapshot, TelemetrySnapshot, BUCKETS,
};

fn hist_from(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::detached();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn snapshot_from(
    counters: &[(String, u64)],
    gauges: &[(String, i64)],
    histograms: &[(String, Vec<u64>)],
) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    for (k, v) in counters {
        snap.counters.insert(k.clone(), *v);
    }
    for (k, v) in gauges {
        snap.gauges.insert(k.clone(), *v);
    }
    for (k, values) in histograms {
        snap.histograms.insert(k.clone(), hist_from(values));
    }
    snap
}

/// Keys drawn from a small alphabet so merges actually collide.
fn key() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "oss.get_requests".to_string(),
        "lnode.0.chunks".to_string(),
        "lnode.1.span.chunking".to_string(),
        "gnode.span.scc".to_string(),
        "retry.retry_bytes".to_string(),
    ])
}

/// Histogram observations bounded so that sums of merged snapshots stay
/// far from `u64::MAX` (merge adds sums without saturation by design —
/// values are nanoseconds in practice).
fn observations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..(1u64 << 48), 0..16)
}

fn snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    (
        prop::collection::vec((key(), 0..(1u64 << 60)), 0..4),
        prop::collection::vec((key(), any::<i64>()), 0..4),
        prop::collection::vec((key(), observations()), 0..3),
    )
        .prop_map(|(c, g, h)| snapshot_from(&c, &g, &h))
}

proptest! {
    /// Bucketing is monotone: a larger value never lands in a smaller
    /// bucket, and every value is at most its bucket's ceiling.
    #[test]
    fn bucket_assignment_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
        prop_assert!(bucket_of(lo) < BUCKETS);
        prop_assert!(bucket_ceiling(bucket_of(lo)) >= lo);
        prop_assert!(lo == 0 || bucket_ceiling(bucket_of(lo) - 1) < lo);
    }

    /// Quantiles are monotone in `q` and clamped to the observed range.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let h = hist_from(&values);
        let (mut last, steps) = (0u64, 10usize);
        for i in 0..=steps {
            let q = i as f64 / steps as f64;
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            prop_assert!(v >= h.min && v <= h.max);
            last = v;
        }
    }

    /// Histogram merge is associative and commutative with the empty
    /// snapshot as identity, so per-node snapshots fold in any order.
    #[test]
    fn histogram_merge_is_associative(
        a in observations(),
        b in observations(),
        c in observations(),
    ) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        prop_assert_eq!(ha.merge(&HistogramSnapshot::default()), ha.clone());
        // Merging matches recording everything into one histogram.
        let mut all = a.clone();
        all.extend(&b);
        prop_assert_eq!(ha.merge(&hb), hist_from(&all));
    }

    /// Snapshot merge is associative, and snapshots survive JSON.
    #[test]
    fn snapshot_merge_is_associative_and_json_safe(
        a in snapshot(),
        b in snapshot(),
        c in snapshot(),
    ) {
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        prop_assert_eq!(
            a.merge(&TelemetrySnapshot::default()).counters,
            a.counters.clone()
        );
        let round = TelemetrySnapshot::from_json(&a.to_json()).unwrap();
        prop_assert_eq!(round, a);
    }

    /// `since` inverts `merge` for counters and histogram counts (the
    /// delta algebra the per-backup reports rely on).
    #[test]
    fn since_recovers_the_merged_interval(a in snapshot(), b in snapshot()) {
        let merged = a.merge(&b);
        let delta = merged.since(&a);
        for (k, v) in &b.counters {
            prop_assert_eq!(delta.counter(k), *v);
        }
        for (k, h) in &b.histograms {
            let d = delta.histogram(k).unwrap();
            prop_assert_eq!(d.count, h.count);
            prop_assert_eq!(d.sum, h.sum);
        }
    }
}

/// The ISSUE acceptance criterion, end to end over the system facade.
#[test]
fn acceptance_full_cycle_telemetry() {
    let store = SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap();
    let file = FileId::new("acceptance");
    let input: Vec<u8> = (0..40_000u32).map(|i| (i * 2_654_435_761) as u8).collect();

    let before = store.telemetry_snapshot();
    let report = store
        .backup_version(vec![(file.clone(), input.clone())])
        .unwrap();
    let after_backup = store.telemetry_snapshot();
    // snapshot_delta of two snapshots equals the per-backup delta.
    assert_eq!(
        SlimStore::snapshot_delta(&after_backup, &before),
        report.telemetry
    );

    let (restored, _) = store.restore_file(&file, report.version).unwrap();
    assert_eq!(restored, input);
    store.run_gnode_cycle(report.version).unwrap();

    let snap = store.telemetry_snapshot();
    // Non-zero counters for the whole pipeline.
    assert!(snap.counter("lnode.0.chunks") > 0);
    assert!(snap.counter("lnode.0.logical_bytes") >= input.len() as u64);
    assert!(snap.counter("lnode.0.restored_bytes") >= input.len() as u64);
    assert!(snap.counter("oss.put_requests") > 0);
    assert!(snap.counter("gnode.chunks_scanned") > 0);
    // Span durations for every pipeline phase.
    for (scope, phase) in [
        ("lnode.0", "chunking"),
        ("lnode.0", "fingerprinting"),
        ("lnode.0", "index"),
        ("lnode.0", "container_io"),
        ("lnode.0", "restore"),
        ("gnode", "reverse_dedup"),
        ("gnode", "scc"),
    ] {
        let span = snap
            .span(scope, phase)
            .unwrap_or_else(|| panic!("missing span {scope}.span.{phase}"));
        assert!(span.count > 0, "{scope}.span.{phase} never fired");
        assert!(span.sum > 0, "{scope}.span.{phase} has zero duration");
    }
    // The whole snapshot round-trips through JSON.
    let parsed = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(parsed, snap);
}
