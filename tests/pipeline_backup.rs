//! System tests of the pipelined parallel backup plane: for any thread
//! budget the pipelined path must leave the bucket **byte-identical** to the
//! sequential path — same keys, same container payloads, same recipes, same
//! dedup statistics — because the pipeline only reorganizes *when* work runs,
//! never *what* is computed. The suite checks that equivalence on a seeded
//! multi-file multi-version workload, under seeded transient faults absorbed
//! by the retrying store, across an exhaustive kill-point sweep (the crash
//! commit protocol is unchanged), and through the multi-tenant frontend with
//! the dispatcher pool coupled to the pipeline budget.

use std::sync::Arc;

use slim_frontend::{FrontendBuilder, FrontendConfig, Request};
use slim_oss::rocks::RocksConfig;
use slim_oss::{FaultPlan, NetworkModel, ObjectStore, Oss, RetryPolicy, RetryingStore};
use slim_types::{FileId, SlimConfig, VersionId};
use slim_workload::{Workload, WorkloadConfig};
use slimstore::{SlimStore, SlimStoreBuilder, TenantStoreManager};

fn config_with_threads(threads: usize) -> SlimConfig {
    let mut cfg = SlimConfig::small_for_tests();
    cfg.backup_pipeline_threads = threads;
    cfg
}

fn store_with_threads(oss: Arc<dyn ObjectStore>, threads: usize) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(oss)
        .with_config(config_with_threads(threads))
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

/// The whole bucket as `(key, bytes)` pairs in key order — the oracle for
/// byte-identity between the sequential and pipelined planes.
fn bucket(oss: &Oss) -> Vec<(String, Vec<u8>)> {
    let mut keys = oss.list("");
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let v = oss.get(&k).unwrap().to_vec();
            (k, v)
        })
        .collect()
}

fn assert_buckets_identical(got: &[(String, Vec<u8>)], want: &[(String, Vec<u8>)], label: &str) {
    let got_keys: Vec<&String> = got.iter().map(|(k, _)| k).collect();
    let want_keys: Vec<&String> = want.iter().map(|(k, _)| k).collect();
    assert_eq!(got_keys, want_keys, "{label}: key sets must match");
    for ((k, g), (_, w)) in got.iter().zip(want) {
        assert_eq!(g, w, "{label}: object {k} must be byte-identical");
    }
}

/// An S-DB-like stream: a few database-table files across versions with
/// high between-version duplication and some self references, so the run
/// exercises skip chunking, chunk merging, and self-referencing recipes.
fn sdb_workload(seed: u64, files: usize, versions: usize, blocks_per_file: usize) -> Workload {
    Workload::new(WorkloadConfig {
        name: format!("pipe-sdb-{seed}"),
        files,
        versions,
        blocks_per_file,
        block_len: 2 * 1024,
        dup_ratio_min: 0.70,
        dup_ratio_max: 0.95,
        self_ref_rate: 0.20,
        hot_fraction: 0.35,
        seed,
    })
}

/// Back every version of the workload up through `store`, verifying each
/// version restores byte-identically as it lands.
fn backup_all(store: &SlimStore, workload: &Workload) {
    for v in 0..workload.config().versions {
        let files: Vec<(FileId, Vec<u8>)> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        let report = store.backup_version(files.clone()).unwrap();
        assert_eq!(report.version, VersionId(v as u64));
        store.verify_version(report.version, &files).unwrap();
    }
}

/// The tentpole guarantee: any pipeline thread budget produces exactly the
/// bucket the sequential path produces, key for key and byte for byte.
#[test]
fn pipelined_backup_is_bucket_identical_across_thread_counts() {
    let run = |threads: usize| -> Vec<(String, Vec<u8>)> {
        let oss = Oss::in_memory();
        let store = store_with_threads(Arc::new(oss.clone()), threads);
        backup_all(&store, &sdb_workload(0x5DB, 3, 3, 24));
        bucket(&oss)
    };
    let sequential = run(0);
    assert!(!sequential.is_empty(), "the workload must store objects");
    for threads in [2, 3, 4, 8] {
        let pipelined = run(threads);
        assert_buckets_identical(&pipelined, &sequential, &format!("threads={threads}"));
    }
}

/// The equivalence holds with G-node cycles interleaved between versions:
/// the offline exact-dedup plane consumes identical inputs in both modes,
/// so the post-cycle bucket stays identical too.
#[test]
fn pipelined_backup_with_gnode_cycles_stays_identical() {
    let run = |threads: usize| -> Vec<(String, Vec<u8>)> {
        let oss = Oss::in_memory();
        let store = store_with_threads(Arc::new(oss.clone()), threads);
        let workload = sdb_workload(0x5DB2, 2, 3, 20);
        for v in 0..workload.config().versions {
            let files: Vec<(FileId, Vec<u8>)> = workload
                .version_files(v)
                .map(|f| (f.file, f.data))
                .collect();
            let report = store.backup_version(files.clone()).unwrap();
            store.run_gnode_cycle(report.version).unwrap();
            store.verify_version(report.version, &files).unwrap();
        }
        bucket(&oss)
    };
    assert_buckets_identical(&run(4), &run(0), "threads=4 with cycles");
}

/// Seeded transient chaos (p = 0.3 on every OSS operation) absorbed by the
/// retrying store: the pipelined plane retries through the same wrapper the
/// sequential plane does, nothing gives up, and the final buckets are still
/// byte-identical. The fault schedule hits *different* physical operations
/// in each mode (the interleaving differs); byte-identity must survive that.
#[test]
fn pipelined_backup_absorbs_transient_chaos_identically() {
    let run = |threads: usize| -> Vec<(String, Vec<u8>)> {
        let oss = Oss::in_memory();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 0.3,
            seed: 0x9A5_71DE,
        });
        let retrying = RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(16));
        let store = store_with_threads(Arc::new(retrying), threads);
        backup_all(&store, &sdb_workload(0xC4A0, 2, 3, 20));
        let snap = store.oss().metrics_snapshot().unwrap();
        assert!(snap.retries > 0, "the schedule must actually have fired");
        assert_eq!(snap.giveups, 0, "16 attempts must outlast p=0.3");
        oss.clear_faults();
        bucket(&oss)
    };
    assert_buckets_identical(&run(3), &run(0), "threads=3 under chaos");
}

fn sorted_keys(oss: &Oss) -> Vec<String> {
    let mut keys = oss.list("");
    keys.sort();
    keys
}

/// Kill a *pipelined* backup at every OSS operation index in turn — the
/// crash-commit protocol (containers, then recipe, then index, then version
/// manifest; `UploadSink::finish` joins the uploader before any commit
/// object is written) must hold under concurrency exactly as it does
/// sequentially: no partial version ever becomes visible, the committed
/// version stays restorable, and one orphan scrub returns the bucket to the
/// committed key set.
#[test]
fn pipelined_kill_point_sweep_commits_or_leaves_reclaimable_orphans_only() {
    let oss = Oss::in_memory();
    let file_a = FileId::new("db/a");
    let file_b = FileId::new("db/b");
    let data = |seed: u64, len: usize| -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    };
    let da0 = data(80, 24_000);
    let db0 = data(81, 16_000);
    let mut da1 = da0.clone();
    da1[3_000..3_400].copy_from_slice(&data(82, 400));
    let db1 = data(83, 16_000);
    let v0_files = vec![(file_a.clone(), da0.clone()), (file_b.clone(), db0.clone())];
    let v1_files = vec![(file_a.clone(), da1.clone()), (file_b.clone(), db1.clone())];

    // Commit v0 (also pipelined), then capture the committed key set.
    {
        let store = store_with_threads(Arc::new(oss.clone()), 3);
        store.backup_version(v0_files.clone()).unwrap();
    }
    let baseline = sorted_keys(&oss);

    // Under the pipeline the operation order is not identical between
    // attempts (uploader and dedup-thread operations interleave freely), so
    // `kill_point` sweeps the operation *count*, not one fixed sequence —
    // every attempt still kills some physical operation, and the commit
    // protocol must hold whichever one it was.
    let mut total_orphans = 0u64;
    let mut succeeded = false;
    for kill_point in 1..=10_000u64 {
        let store = store_with_threads(Arc::new(oss.clone()), 3);
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: String::new(),
            nth: kill_point,
        });
        let result = store.backup_version(v1_files.clone());
        oss.clear_faults();
        match result {
            Ok(report) => {
                // The kill point lies past this attempt's operation count:
                // the version is durable and the sweep is over.
                assert_eq!(report.version, VersionId(1));
                store.verify_version(VersionId(0), &v0_files).unwrap();
                store.verify_version(VersionId(1), &v1_files).unwrap();
                succeeded = true;
                break;
            }
            Err(_) => {
                assert_eq!(
                    store.versions(),
                    vec![VersionId(0)],
                    "kill point {kill_point}: no partial version may be visible"
                );
                store.verify_version(VersionId(0), &v0_files).unwrap();
                let stats = store.scrub_orphans().unwrap();
                total_orphans += stats.objects_reclaimed();
                assert_eq!(
                    sorted_keys(&oss),
                    baseline,
                    "kill point {kill_point}: scrub must restore the committed key set"
                );
                let again = store.scrub_orphans().unwrap();
                assert_eq!(
                    again.objects_reclaimed(),
                    0,
                    "kill point {kill_point}: scrub must be idempotent"
                );
            }
        }
    }
    assert!(succeeded, "the sweep never ran past the end of the backup");
    assert!(
        total_orphans > 0,
        "at least one kill point must leave orphans"
    );
}

/// The multi-tenant frontend with the pipeline enabled: the dispatcher pool
/// is shrunk by `coupled_to_pipeline` so admission byte-budgets still bound
/// total working memory, and every tenant's backups and restores stay
/// byte-identical through the pipelined plane.
#[test]
fn frontend_runs_pipelined_backups_byte_identically() {
    let manager = Arc::new(
        TenantStoreManager::in_memory(NetworkModel::instant())
            .with_config(config_with_threads(3))
            .with_rocks_config(RocksConfig::small_for_tests()),
    );
    let fe = FrontendBuilder::new(manager)
        .with_config(
            FrontendConfig::small_for_tests()
                .with_workers(8)
                .coupled_to_pipeline(3),
        )
        .start()
        .unwrap();

    let workload = sdb_workload(0xFE, 2, 2, 16);
    let mut history: Vec<Vec<(FileId, Vec<u8>)>> = Vec::new();
    for v in 0..workload.config().versions {
        let files: Vec<(FileId, Vec<u8>)> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        for tenant in ["acme", "globex"] {
            let report = fe
                .submit(
                    tenant,
                    Request::Backup {
                        files: files.clone(),
                        jobs: 2,
                    },
                )
                .unwrap()
                .wait()
                .unwrap()
                .into_backup()
                .unwrap();
            assert_eq!(report.version, VersionId(v as u64));
        }
        history.push(files);
    }
    for (v, files) in history.iter().enumerate() {
        for tenant in ["acme", "globex"] {
            for (file, expected) in files {
                let (bytes, _) = fe
                    .submit(
                        tenant,
                        Request::RestoreFile {
                            file: file.clone(),
                            version: VersionId(v as u64),
                        },
                    )
                    .unwrap()
                    .wait()
                    .unwrap()
                    .into_file()
                    .unwrap();
                assert_eq!(&bytes, expected, "tenant {tenant} v{v} {file}");
            }
        }
    }
    fe.shutdown();
}

/// Release-stress soak: a larger workload, more thread counts, G-node
/// cycles and retention interleaved. Run with `--ignored` in the release
/// stress CI job.
#[test]
#[ignore]
fn soak_pipelined_equivalence_under_large_workload() {
    let run = |threads: usize| -> Vec<(String, Vec<u8>)> {
        let oss = Oss::in_memory();
        let store = store_with_threads(Arc::new(oss.clone()), threads);
        let workload = sdb_workload(0x50A1, 4, 5, 96);
        for v in 0..workload.config().versions {
            let files: Vec<(FileId, Vec<u8>)> = workload
                .version_files(v)
                .map(|f| (f.file, f.data))
                .collect();
            let report = store.backup_version(files.clone()).unwrap();
            store.run_gnode_cycle(report.version).unwrap();
            store.verify_version(report.version, &files).unwrap();
        }
        bucket(&oss)
    };
    let sequential = run(0);
    for threads in [2, 4, 8, 16] {
        assert_buckets_identical(
            &run(threads),
            &sequential,
            &format!("soak threads={threads}"),
        );
    }
}
