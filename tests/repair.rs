//! Property suite for the redundancy plane and the self-healing read/repair
//! path (the single-fault acceptance model).
//!
//! Under a seeded single-fault model — corrupt or delete any ONE member of
//! any redundancy group (a container's replicated meta object, a replica-tier
//! data object, or one member of an XOR parity group) — the deployment must
//! lose nothing: every retained version restores byte-identically through the
//! healing read path, `repair()` returns the store to a clean
//! `verify_checksums()` sweep, and the quarantine drains once primaries are
//! whole again. Crashes at arbitrary OSS operations during read-repair or the
//! offline repair sweep must leave no dangling index entries and no
//! unrestorable version behind: reopening the store (which replays the intent
//! journal) and re-running the sweep always converges.

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use slim_oss::rocks::RocksConfig;
use slim_oss::{FaultPlan, ObjectStore, Oss};
use slim_types::{layout, ContainerId, FileId, SlimConfig, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};

fn data(seed: u64, len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn store_over(oss: &Oss) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(Arc::new(oss.clone()))
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

type Retained = Vec<(VersionId, Vec<(FileId, Vec<u8>)>)>;

/// Back up `versions` mutated snapshots of two files over `oss`, then run
/// the offline cycle so the redundancy plane covers every live container.
fn seeded_history(oss: &Oss, versions: usize) -> (SlimStore, Retained) {
    let store = store_over(oss);
    let mut files = vec![
        (FileId::new("a"), data(11, 4000)),
        (FileId::new("b"), data(12, 7000)),
    ];
    let mut retained: Retained = Vec::new();
    for round in 0..versions {
        let r = store.backup_version(files.clone()).unwrap();
        retained.push((r.version, files.clone()));
        for (i, (_, buf)) in files.iter_mut().enumerate() {
            let at = (round * 613 + i * 257) % (buf.len() - 400);
            for b in &mut buf[at..at + 400] {
                *b ^= 0xA5;
            }
        }
    }
    let last = retained.last().unwrap().0;
    store.run_gnode_cycle(last).unwrap();
    (store, retained)
}

/// The three single-fault flavours of the acceptance model.
#[derive(Debug, Clone, Copy)]
enum Damage {
    BitFlip,
    Truncate,
    Delete,
}

const ALL_DAMAGE: [Damage; 3] = [Damage::BitFlip, Damage::Truncate, Damage::Delete];

/// Damage one primary object behind the deployment's back (via the raw
/// handle, so neither the healing wrapper nor the fault plans see it).
fn apply_damage(oss: &Oss, key: &str, damage: Damage) {
    match damage {
        Damage::BitFlip => {
            let mut buf = oss.get(key).unwrap().to_vec();
            let mid = buf.len() / 2;
            buf[mid] ^= 0x10;
            oss.put(key, Bytes::from(buf)).unwrap();
        }
        Damage::Truncate => {
            let buf = oss.get(key).unwrap();
            let keep = buf.len().saturating_sub(7);
            oss.put(key, buf.slice(..keep)).unwrap();
        }
        Damage::Delete => {
            oss.delete(key).unwrap();
        }
    }
}

/// Every container the global index references must exist on OSS.
fn assert_no_dangle(store: &SlimStore) {
    let existing: HashSet<ContainerId> = store.storage().list_containers().into_iter().collect();
    for c in store
        .gnode()
        .global_index()
        .referenced_containers()
        .unwrap()
    {
        assert!(
            existing.contains(&c),
            "global index references deleted container {c}"
        );
    }
}

/// Drive the store back to a provably clean state: offline repair leaves
/// nothing unrepairable, the checksum sweep finds nothing to quarantine,
/// every retained version restores byte-identically, and the quarantine
/// drains without force.
fn assert_converged(store: &SlimStore, oss: &Oss, retained: &Retained, ctx: &str) {
    let (_, repaired) = store.repair().unwrap();
    assert_eq!(
        repaired.containers_unrepairable, 0,
        "{ctx}: single-fault damage must always be repairable"
    );
    let sweep = store.verify_checksums().unwrap();
    assert_eq!(
        sweep.containers_quarantined, 0,
        "{ctx}: store not clean after repair: {sweep:?}"
    );
    assert_no_dangle(store);
    for (v, expected) in retained {
        store.verify_version(*v, expected).unwrap();
    }
    store.purge_quarantine(false).unwrap();
    assert!(
        oss.list(layout::QUARANTINE_PREFIX).is_empty(),
        "{ctx}: quarantine must drain once primaries are whole"
    );
}

/// Acceptance sweep: damage every protected primary object in turn — bit
/// flip, truncation, outright deletion — and demand zero data loss each
/// time. Restores heal inline through the redundancy plane (read-repair
/// rewrites the primary) and the offline sweep repairs whatever the read
/// path never touched (e.g. meta objects restores don't consult).
#[test]
fn any_single_damaged_group_member_restores_byte_identically() {
    for damage in ALL_DAMAGE {
        let oss = Oss::in_memory();
        let (store, retained) = seeded_history(&oss, 3);
        let protected: Vec<String> = oss.list(layout::CONTAINER_PREFIX);
        assert!(
            protected.len() >= 6,
            "history too small to exercise the plane: {protected:?}"
        );
        for key in &protected {
            apply_damage(&oss, key, damage);
            // Zero data loss under one fault: every version still restores.
            for (v, expected) in &retained {
                store.verify_version(*v, expected).unwrap();
            }
            // The offline sweep returns the store to clean, which also
            // resets the stage for the next victim.
            assert_converged(&store, &oss, &retained, &format!("{damage:?} {key}"));
        }
        // Every reconstruction is accounted; none failed or was abandoned.
        let snap = store.telemetry_snapshot();
        assert_eq!(snap.counter("oss.redundancy.unrepairable_reads"), 0);
        assert_eq!(snap.counter("oss.redundancy.repair_failures"), 0);
    }
}

/// Offline-only path: quarantine a container via the checksum sweep (no
/// restore runs in between, so read-repair never sees the damage), then let
/// `repair()` reconstruct it from the plane and re-point the index. The meta
/// replica and the data parity group are distinct redundancy groups, so
/// damaging both objects of one container still honours one-fault-per-group.
#[test]
fn offline_repair_reconstructs_quarantined_containers() {
    let oss = Oss::in_memory();
    let (store, retained) = seeded_history(&oss, 3);
    let keys = oss.list(layout::CONTAINER_PREFIX);
    let victim_data = keys.iter().find(|k| k.ends_with("/data")).unwrap();
    let victim_meta = keys.iter().find(|k| k.ends_with("/meta")).unwrap();
    apply_damage(&oss, victim_data, Damage::BitFlip);
    apply_damage(&oss, victim_meta, Damage::Truncate);

    let sweep = store.verify_checksums().unwrap();
    assert!(sweep.containers_quarantined >= 1, "{sweep:?}");
    let (repairable, lost) = store.classify_quarantine().unwrap();
    assert!(repairable >= 1);
    assert_eq!(lost, 0, "every quarantined object has a surviving group");

    let (_, repaired) = store.repair().unwrap();
    assert!(repaired.containers_repaired >= 1, "{repaired:?}");
    assert_eq!(repaired.containers_unrepairable, 0);
    assert!(repaired.objects_rewritten >= 2, "{repaired:?}");
    assert_converged(&store, &oss, &retained, "offline repair");
}

/// Kill the offline repair sweep at every OSS operation in turn. After each
/// crash, reopening the store (journal replay) and re-running the sweep must
/// converge: nothing unrepairable, no dangling index entries, all versions
/// byte-identical. The sweep ends once three consecutive kill points fall
/// beyond the end of a complete repair run.
#[test]
fn killed_offline_repair_converges_after_restart() {
    let oss = Oss::in_memory();
    let retained = seeded_history(&oss, 2).1;
    let mut kill = 1u64;
    let mut consecutive_ok = 0u32;
    while consecutive_ok < 3 {
        assert!(kill <= 400, "repair never survived the kill sweep");
        {
            let store = store_over(&oss);
            let keys = oss.list(layout::CONTAINER_PREFIX);
            let victim_data = keys.iter().find(|k| k.ends_with("/data")).unwrap();
            let victim_meta = keys.iter().find(|k| k.ends_with("/meta")).unwrap();
            apply_damage(&oss, victim_data, Damage::Delete);
            apply_damage(&oss, victim_meta, Damage::BitFlip);
            oss.inject_fault(FaultPlan::NthOnPrefix {
                prefix: String::new(),
                nth: kill,
            });
            let survived = store.repair().is_ok();
            oss.clear_faults();
            consecutive_ok = if survived { consecutive_ok + 1 } else { 0 };
        }
        // Reopen (replays the intent journal) and drive to convergence.
        let store = store_over(&oss);
        assert_converged(&store, &oss, &retained, &format!("kill point {kill}"));
        kill += 1;
    }
}

/// Kill the healing read path mid-restore at every OSS operation in turn:
/// whatever partial read-repair state the crash leaves behind, the next
/// restore must still be byte-identical and the offline sweep must converge.
#[test]
fn killed_read_repair_never_loses_data() {
    let oss = Oss::in_memory();
    let retained = seeded_history(&oss, 2).1;
    let mut kill = 1u64;
    let mut consecutive_ok = 0u32;
    while consecutive_ok < 3 {
        assert!(kill <= 400, "restore never survived the kill sweep");
        {
            let store = store_over(&oss);
            let victim = oss
                .list(layout::CONTAINER_PREFIX)
                .into_iter()
                .find(|k| k.ends_with("/data"))
                .unwrap();
            apply_damage(&oss, &victim, Damage::BitFlip);
            oss.inject_fault(FaultPlan::NthOnPrefix {
                prefix: String::new(),
                nth: kill,
            });
            let (v, expected) = retained.last().unwrap();
            let survived = store.verify_version(*v, expected).is_ok();
            oss.clear_faults();
            consecutive_ok = if survived { consecutive_ok + 1 } else { 0 };
        }
        let store = store_over(&oss);
        assert_converged(&store, &oss, &retained, &format!("kill point {kill}"));
        kill += 1;
    }
}

/// Seeded soak: rounds of random single faults, randomly killed repair
/// sweeps, and restarts — the store must converge to clean after every
/// round. Ignored by default; CI runs it explicitly in the soak step
/// (`cargo test --release --test repair -- --ignored`).
#[test]
#[ignore = "soak test: run explicitly via -- --ignored"]
fn soak_random_faults_with_kill_restart_scrub() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51e9);
    let oss = Oss::in_memory();
    let retained = seeded_history(&oss, 3).1;
    for round in 0..40u32 {
        {
            let store = store_over(&oss);
            let keys = oss.list(layout::CONTAINER_PREFIX);
            let victim = &keys[rng.gen_range(0..keys.len())];
            let damage = ALL_DAMAGE[rng.gen_range(0..ALL_DAMAGE.len())];
            apply_damage(&oss, victim, damage);
            if rng.gen_bool(0.5) {
                // Crash the repair sweep at a random OSS operation.
                oss.inject_fault(FaultPlan::NthOnPrefix {
                    prefix: String::new(),
                    nth: rng.gen_range(1..160),
                });
                let _ = store.repair();
                oss.clear_faults();
            }
        }
        let store = store_over(&oss);
        assert_converged(&store, &oss, &retained, &format!("soak round {round}"));
    }
}
