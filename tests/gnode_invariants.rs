//! Property tests of the G-node's safety invariants: no sequence of backups,
//! offline cycles, vacuums and FIFO collections may break the restorability
//! of any retained version, and the global index must always resolve every
//! live recipe record.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use slim_oss::rocks::RocksConfig;
use slim_oss::{FaultPlan, ObjectStore, Oss};
use slim_types::{ContainerId, FileId, SlimConfig, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};

#[derive(Debug, Clone)]
enum Op {
    /// Mutate file `which` (xor a byte range) before the next backup.
    Mutate { which: usize, at: usize, len: usize },
    /// Back up the current state as a new version.
    Backup,
    /// Run the G-node cycle for the most recent version.
    GnodeCycle,
    /// Physically reclaim marked bytes.
    Vacuum,
    /// Drop the oldest version (if more than one remains).
    CollectOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..3usize, any::<usize>(), 16..600usize)
            .prop_map(|(which, at, len)| Op::Mutate { which, at, len }),
        3 => Just(Op::Backup),
        2 => Just(Op::GnodeCycle),
        1 => Just(Op::Vacuum),
        1 => Just(Op::CollectOldest),
    ]
}

fn base_files() -> Vec<(FileId, Vec<u8>)> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    (0..3)
        .map(|i| {
            let mut data = vec![0u8; 6000 + i * 2000];
            rng.fill_bytes(&mut data);
            (FileId::new(format!("f{i}")), data)
        })
        .collect()
}

fn store() -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

fn store_over(oss: Arc<dyn ObjectStore>) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(oss)
        .with_config(SlimConfig::small_for_tests())
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

/// Every container the global index references must exist on OSS.
fn assert_no_dangle(store: &SlimStore) -> std::result::Result<(), TestCaseError> {
    let existing: HashSet<ContainerId> = store.storage().list_containers().into_iter().collect();
    for c in store
        .gnode()
        .global_index()
        .referenced_containers()
        .unwrap()
    {
        prop_assert!(
            existing.contains(&c),
            "global index references deleted container {c}"
        );
    }
    Ok(())
}

/// Every container on OSS must be referenced by the global index or be
/// reachable from a retained version's manifest/recipes.
fn assert_no_leak(store: &SlimStore) -> std::result::Result<(), TestCaseError> {
    let mut reachable: HashSet<ContainerId> = store
        .gnode()
        .global_index()
        .referenced_containers()
        .unwrap();
    for v in store.versions() {
        let manifest = store.storage().get_manifest(v).unwrap();
        reachable.extend(manifest.new_containers.iter().copied());
        reachable.extend(manifest.garbage_on_delete.iter().copied());
        for file in &manifest.files {
            let recipe = store.storage().get_recipe(&file.file, v).unwrap();
            reachable.extend(recipe.records().map(|r| r.container_id));
        }
    }
    for c in store.storage().list_containers() {
        prop_assert!(
            reachable.contains(&c),
            "container {c} is unreferenced by both index and manifests"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn retained_versions_always_restore(ops in proptest::collection::vec(op_strategy(), 1..14)) {
        let store = store();
        let mut files = base_files();
        // Version history we expect to be restorable, keyed by version id.
        let mut retained: Vec<(VersionId, Vec<(FileId, Vec<u8>)>)> = Vec::new();

        // Always start with one backup so later ops have something to chew on.
        let r = store.backup_version(files.clone()).unwrap();
        retained.push((r.version, files.clone()));

        for op in &ops {
            match op {
                Op::Mutate { which, at, len } => {
                    let idx = which % files.len();
                    let data = &mut files[idx].1;
                    if data.is_empty() { continue; }
                    let at = at % data.len();
                    let end = (at + len).min(data.len());
                    for b in &mut data[at..end] {
                        *b ^= 0x5A;
                    }
                }
                Op::Backup => {
                    let r = store.backup_version(files.clone()).unwrap();
                    retained.push((r.version, files.clone()));
                }
                Op::GnodeCycle => {
                    if let Some((v, _)) = retained.last() {
                        store.run_gnode_cycle(*v).unwrap();
                    }
                }
                Op::Vacuum => {
                    store.gnode().vacuum().unwrap();
                }
                Op::CollectOldest => {
                    if retained.len() > 1 {
                        let keep = retained.len() - 1;
                        store.retain_last(keep).unwrap();
                        retained.remove(0);
                    }
                }
            }
            // Invariant 1: every retained version restores byte-identically.
            for (v, expected) in &retained {
                store.verify_version(*v, expected).unwrap();
            }
        }

        // Invariant 2: every live recipe record is resolvable — either live
        // in its stated container or through the global index.
        for (v, _) in &retained {
            for file in store.files_of(*v).unwrap() {
                let recipe = store.storage().get_recipe(&file, *v).unwrap();
                for rec in recipe.records() {
                    let stated_live = store
                        .storage()
                        .get_container_meta(rec.container_id)
                        .ok()
                        .and_then(|m| m.find_live(&rec.fp).map(|_| ()))
                        .is_some();
                    if stated_live {
                        continue;
                    }
                    let relocated = store
                        .gnode()
                        .global_index()
                        .get(&rec.fp)
                        .unwrap()
                        .and_then(|c| store.storage().get_container_meta(c).ok().map(|m| (c, m)))
                        .map(|(_, m)| m.find_live(&rec.fp).is_some())
                        .unwrap_or(false);
                    prop_assert!(
                        relocated,
                        "record {} of {} at {} resolves nowhere",
                        rec.fp.short_hex(),
                        file,
                        v
                    );
                }
            }
        }
    }

    /// Kill the offline cycle at an arbitrary OSS operation, recover, and
    /// re-run it to completion: the global index must never reference a
    /// deleted container (no dangle), every surviving container must be
    /// referenced by the index or a manifest once orphans are scrubbed (no
    /// leak), and every version must restore byte-identically throughout.
    #[test]
    fn killed_and_recovered_cycle_never_dangles_or_leaks(kill_point in 1..400u64) {
        let oss = Oss::in_memory();
        let mut files = base_files();
        let mut retained: Vec<(VersionId, Vec<(FileId, Vec<u8>)>)> = Vec::new();
        {
            let store = store_over(Arc::new(oss.clone()));
            for round in 0..3u64 {
                let r = store.backup_version(files.clone()).unwrap();
                retained.push((r.version, files.clone()));
                if round < 2 {
                    // Earlier cycles complete; the last one is the victim.
                    store.run_gnode_cycle(r.version).unwrap();
                }
                for (i, (_, data)) in files.iter_mut().enumerate() {
                    let at = (round as usize * 731 + i * 137) % (data.len() - 600);
                    for b in &mut data[at..at + 600] {
                        *b ^= 0x5A;
                    }
                }
            }
            oss.inject_fault(FaultPlan::NthOnPrefix {
                prefix: String::new(),
                nth: kill_point,
            });
            let _ = store.run_gnode_cycle(VersionId(2));
            oss.clear_faults();
        }

        // Reopen: the builder replays the intent journal.
        let store = store_over(Arc::new(oss.clone()));
        assert_no_dangle(&store)?;
        for (v, expected) in &retained {
            store.verify_version(*v, expected).unwrap();
        }

        // Re-run the interrupted cycle to completion and scrub: the bucket
        // must converge to a stable, fully referenced key set.
        store.run_gnode_cycle(VersionId(2)).unwrap();
        assert_no_dangle(&store)?;
        store.scrub_orphans().unwrap();
        let again = store.scrub_orphans().unwrap();
        prop_assert_eq!(again.objects_reclaimed(), 0, "scrub must be idempotent");
        assert_no_leak(&store)?;
        for (v, expected) in &retained {
            store.verify_version(*v, expected).unwrap();
        }
    }
}
