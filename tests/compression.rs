//! System tests of the per-chunk container compression plane.
//!
//! The plane's contract has three legs, each tested here end to end:
//!
//! 1. **Byte identity** — compression-on restores are byte-identical to the
//!    input, across G-node cycles, mixed on/off histories (in-place knob
//!    flips over one bucket), hand-downgraded v1 container metas, and the
//!    pipelined backup plane.
//! 2. **Dedup invariance** — every deduplication statistic (logical bytes,
//!    chunk/duplicate/skip counts, container ids, containers read on
//!    restore) is exactly unchanged under the knob; only stored bytes
//!    shrink. Container sealing boundaries are accounted in raw bytes, so
//!    the two planes must allocate identical container id sequences.
//! 3. **Corruption honesty** — a bit-flipped container object (data or
//!    meta), a poisoned meta that passes its CRC, or garbage in a
//!    compressed payload's stored bytes must surface as a `Corrupt`-class
//!    error (or heal through the redundancy plane) — never a panic, never
//!    silently wrong bytes.

use std::sync::Arc;

use bytes::Bytes;
use slim_oss::rocks::RocksConfig;
use slim_oss::{ObjectStore, Oss};
use slim_types::{codec, crc, layout, ContainerMeta, FileId, SlimConfig, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};

/// Deterministic *compressible* data: seeded sentences over a small
/// vocabulary. The stock workload generator fills blocks with pure random
/// bytes (deliberately incompressible), so this suite brings its own
/// corpus with realistic redundancy.
fn text(seed: u64, len: usize) -> Vec<u8> {
    use rand::{Rng, SeedableRng};
    const WORDS: [&str; 12] = [
        "container",
        "chunk",
        "recipe",
        "fingerprint",
        "backup",
        "restore",
        "segment",
        "version",
        "index",
        "dedup",
        "slimstore",
        "object",
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())].as_bytes());
        out.push(b' ');
        if rng.gen_ratio(1, 40) {
            out.push(b'\n');
        }
    }
    out.truncate(len);
    out
}

/// Mutate a seeded span in place — the between-version edit that gives the
/// dedup plane something real to do.
fn mutate(buf: &mut [u8], round: usize) {
    let at = (round * 977) % (buf.len() - 600);
    let patch = text(0xED17 + round as u64, 600);
    buf[at..at + 600].copy_from_slice(&patch);
}

fn config(compression: bool) -> SlimConfig {
    SlimConfig::small_for_tests().with_compression(compression)
}

fn store_over(oss: &Oss, cfg: SlimConfig) -> SlimStore {
    SlimStoreBuilder::in_memory()
        .with_object_store(Arc::new(oss.clone()))
        .with_config(cfg)
        .with_rocks_config(RocksConfig::small_for_tests())
        .build()
        .unwrap()
}

type History = Vec<(VersionId, Vec<(FileId, Vec<u8>)>)>;

/// Back up `versions` mutated snapshots of two compressible files.
fn backup_history(store: &SlimStore, versions: usize) -> History {
    let mut files = vec![
        (FileId::new("a.txt"), text(1, 30_000)),
        (FileId::new("b.log"), text(2, 18_000)),
    ];
    let mut history = History::new();
    for round in 0..versions {
        let report = store.backup_version(files.clone()).unwrap();
        history.push((report.version, files.clone()));
        for (i, (_, buf)) in files.iter_mut().enumerate() {
            mutate(buf, round * 3 + i);
        }
    }
    history
}

fn verify_all(store: &SlimStore, history: &History, ctx: &str) {
    for (version, files) in history {
        store
            .verify_version(*version, files)
            .unwrap_or_else(|e| panic!("{ctx}: version {version:?} diverged: {e}"));
    }
}

/// Leg 1 + acceptance: compression-on restores byte-identically (through
/// G-node cycles), stored bytes drop measurably versus the same history
/// with compression off, and the dedup ratio is untouched.
#[test]
fn compressed_repo_restores_byte_identically_and_stores_less() {
    let oss_on = Oss::in_memory();
    let store_on = store_over(&oss_on, config(true));
    let history = backup_history(&store_on, 4);
    verify_all(&store_on, &history, "compression on");
    let last = history.last().unwrap().0;
    store_on.run_gnode_cycle(last).unwrap();
    verify_all(&store_on, &history, "compression on, after cycle");

    let oss_off = Oss::in_memory();
    let store_off = store_over(&oss_off, config(false));
    let history_off = backup_history(&store_off, 4);
    verify_all(&store_off, &history_off, "compression off");

    let on = store_on.space_report().unwrap();
    let off = store_off.space_report().unwrap();
    assert_eq!(
        on.container_logical_bytes, off.container_logical_bytes,
        "live raw bytes are a dedup statistic and must not move"
    );
    assert!(
        on.container_stored_payload_bytes < on.container_logical_bytes,
        "stored {} must be below logical {}",
        on.container_stored_payload_bytes,
        on.container_logical_bytes
    );
    assert!(on.compression_ratio() < 0.9, "{}", on.compression_ratio());
    assert_eq!(
        off.container_stored_payload_bytes, off.container_logical_bytes,
        "knob off stores raw"
    );
}

/// Leg 2: every dedup statistic — and the container id sequence itself —
/// is exactly unchanged under the knob. Only the compression counters and
/// stored byte totals differ.
#[test]
fn dedup_statistics_and_container_boundaries_invariant_under_knob() {
    let run = |compression: bool| {
        let oss = Oss::in_memory();
        let store = store_over(&oss, config(compression));
        let mut reports = Vec::new();
        let mut files = vec![
            (FileId::new("a.txt"), text(1, 30_000)),
            (FileId::new("b.log"), text(2, 18_000)),
        ];
        for round in 0..4 {
            reports.push(store.backup_version(files.clone()).unwrap());
            for (i, (_, buf)) in files.iter_mut().enumerate() {
                mutate(buf, round * 3 + i);
            }
        }
        let containers = store.storage().list_containers();
        let restore_stats: Vec<_> = reports
            .iter()
            .map(|r| {
                let (_, stats) = store
                    .restore_file(&FileId::new("a.txt"), r.version)
                    .unwrap();
                (stats.containers_read, stats.restored_bytes)
            })
            .collect();
        (reports, containers, restore_stats)
    };

    let (on, on_containers, on_restores) = run(true);
    let (off, off_containers, off_restores) = run(false);

    assert_eq!(
        on_containers, off_containers,
        "raw-byte capacity accounting must seal identical container boundaries"
    );
    assert_eq!(
        on_restores, off_restores,
        "containers read per restore is a dedup statistic"
    );
    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.stats.logical_bytes, b.stats.logical_bytes);
        assert_eq!(
            a.stats.stored_bytes, b.stats.stored_bytes,
            "BackupStats::stored_bytes stays in raw bytes (it feeds dedup_ratio)"
        );
        assert_eq!(a.stats.chunks, b.stats.chunks);
        assert_eq!(a.stats.duplicates, b.stats.duplicates);
        assert_eq!(a.stats.skip_hits, b.stats.skip_hits);
        assert_eq!(a.stats.skip_misses, b.stats.skip_misses);
        assert_eq!(a.stats.super_hits, b.stats.super_hits);
        assert_eq!(a.stats.super_misses, b.stats.super_misses);
        assert_eq!(a.stats.superchunks_created, b.stats.superchunks_created);
        assert_eq!(a.stats.chunks_merged, b.stats.chunks_merged);
        assert_eq!(a.stats.dedup_ratio(), b.stats.dedup_ratio());
        // The compression plane itself is observable only where it should be.
        assert!(a.stats.compress_chunks > 0);
        assert!(a.stats.compress_stored_bytes < a.stats.compress_raw_bytes);
        assert_eq!(b.stats.compress_chunks, 0, "knob off records nothing");
    }
}

/// Leg 1, mixed history: a repo written with compression off, reopened
/// with it on (and vice versa), restores every version byte-identically —
/// including after G-node cycles rewrite (and so recompress) containers.
#[test]
fn knob_flip_over_existing_bucket_upgrades_in_place() {
    let oss = Oss::in_memory();
    let mut history = {
        let store = store_over(&oss, config(false));
        backup_history(&store, 2)
    };
    // Reopen compressed; old uncompressed containers remain readable and
    // new versions dedup against them.
    let store = store_over(&oss, config(true));
    verify_all(&store, &history, "uncompressed history, compressed reopen");
    let mut files = history.last().unwrap().1.clone();
    for round in 0..2 {
        for (i, (_, buf)) in files.iter_mut().enumerate() {
            mutate(buf, 90 + round * 3 + i);
        }
        let report = store.backup_version(files.clone()).unwrap();
        assert!(
            report.stats.duplicates > 0,
            "new compressed versions dedup against the uncompressed history"
        );
        history.push((report.version, files.clone()));
    }
    let last = history.last().unwrap().0;
    store.run_gnode_cycle(last).unwrap();
    verify_all(&store, &history, "mixed bucket after cycle");
    assert!(
        store.space_report().unwrap().compression_ratio() < 1.0,
        "the compressed generation must be visible in space accounting"
    );

    // And back: a compression-off reopen of the now-mixed bucket.
    let store = store_over(&oss, config(false));
    verify_all(&store, &history, "mixed bucket, compression-off reopen");
}

/// Leg 1, wire compatibility: a container meta hand-downgraded to the v1
/// format (no raw_len on the wire) still decodes and restores.
#[test]
fn v1_wire_metas_remain_readable_end_to_end() {
    let oss = Oss::in_memory();
    let store = store_over(&oss, config(false));
    let history = backup_history(&store, 1);

    // Downgrade every meta object to v1 on the raw bucket. The store wrote
    // them uncompressed, so len == raw_len and the downgrade is lossless.
    let meta_keys: Vec<String> = oss
        .list(layout::CONTAINER_PREFIX)
        .into_iter()
        .filter(|k| k.ends_with("/meta"))
        .collect();
    assert!(!meta_keys.is_empty());
    for key in &meta_keys {
        let meta =
            ContainerMeta::decode(&crc::unseal(&oss.get(key).unwrap(), "container meta").unwrap())
                .unwrap();
        let mut w = codec::Writer::with_header(b"SLCM", 1);
        w.u64(meta.id.0);
        w.u32(meta.data_len);
        w.u32(meta.entries.len() as u32);
        for e in &meta.entries {
            assert_eq!(e.len, e.raw_len, "uncompressed container");
            w.fingerprint(&e.fp);
            w.u32(e.offset);
            w.u32(e.len);
            w.u8(u8::from(e.deleted));
        }
        oss.put(key, crc::seal(&w.freeze())).unwrap();
    }

    // Restores decode the v1 wire; a compressed reopen + cycle upgrades the
    // metas to v2 as containers are rewritten, and everything still restores.
    verify_all(&store, &history, "v1 metas");
    let store = store_over(&oss, config(true));
    verify_all(&store, &history, "v1 metas, compressed reopen");
    store.run_gnode_cycle(history.last().unwrap().0).unwrap();
    verify_all(&store, &history, "v1 metas after cycle");
}

/// Leg 1, pipelined plane: with compression on, any pipeline thread budget
/// leaves the bucket byte-identical to the sequential path — compression
/// happens at container build time, inside the in-order dedup stage, so the
/// async uploader ships identical bytes.
#[test]
fn pipelined_backup_is_bucket_identical_with_compression_on() {
    let bucket = |threads: usize| -> Vec<(String, Vec<u8>)> {
        let oss = Oss::in_memory();
        let store = store_over(&oss, config(true).with_backup_pipeline_threads(threads));
        let history = backup_history(&store, 3);
        verify_all(&store, &history, &format!("threads={threads}"));
        let mut keys = oss.list("");
        keys.sort();
        keys.into_iter()
            .map(|k| {
                let v = oss.get(&k).unwrap().to_vec();
                (k, v)
            })
            .collect()
    };
    let sequential = bucket(0);
    assert!(!sequential.is_empty());
    for threads in [2, 4] {
        let pipelined = bucket(threads);
        assert_eq!(
            pipelined.len(),
            sequential.len(),
            "threads={threads}: key sets differ"
        );
        for ((gk, gv), (wk, wv)) in pipelined.iter().zip(&sequential) {
            assert_eq!(gk, wk, "threads={threads}: key order");
            assert_eq!(gv, wv, "threads={threads}: object {gk} diverged");
        }
    }
}

/// Leg 3: a seeded bit-flip sweep over every container object of a
/// compressed repo (redundancy off, so nothing heals behind the test's
/// back). Every read must either return the original bytes or a clean
/// error — zero panics, zero silently-wrong restores.
#[test]
fn bit_flip_sweep_yields_corrupt_never_panics() {
    let oss = Oss::in_memory();
    let store = store_over(&oss, config(true).with_redundancy(false));
    let history = backup_history(&store, 2);

    let victims = oss.list(layout::CONTAINER_PREFIX);
    assert!(!victims.is_empty());
    for (i, key) in victims.iter().enumerate() {
        let original = oss.get(key).unwrap();
        // Three seeded flip positions per object: head, interior, trailer.
        for (j, pos) in [0usize, (i * 7919 + 13) % original.len(), original.len() - 1]
            .into_iter()
            .enumerate()
        {
            let mut buf = original.to_vec();
            buf[pos] ^= 1 << ((i + j) % 8);
            oss.put(key, Bytes::from(buf)).unwrap();
            for (version, files) in &history {
                for (file, expected) in files {
                    match store.restore_file(file, *version) {
                        Ok((bytes, _)) => {
                            assert_eq!(&bytes, expected, "{key} flip@{pos}: silently wrong restore")
                        }
                        Err(e) => assert!(
                            !e.is_retryable(),
                            "{key} flip@{pos}: corruption must be permanent, got {e}"
                        ),
                    }
                }
            }
            oss.put(key, original.clone()).unwrap();
        }
    }
    // The bucket is whole again: everything restores.
    verify_all(&store, &history, "after sweep");
}

/// Leg 3, the decode-boundary bugfix: a meta whose CRC is intact but whose
/// entries are structurally poisoned (out-of-bounds span, stored > raw, or
/// garbage where a compressed payload should be) must error — the
/// unchecked-slice panics this PR removes.
#[test]
fn poisoned_meta_and_payload_surface_as_corrupt() {
    let oss = Oss::in_memory();
    let store = store_over(&oss, config(true).with_redundancy(false));
    let history = backup_history(&store, 1);
    let meta_key = oss
        .list(layout::CONTAINER_PREFIX)
        .into_iter()
        .find(|k| k.ends_with("/meta"))
        .unwrap();
    let data_key = meta_key.replace("/meta", "/data");
    let good_meta = oss.get(&meta_key).unwrap();
    let good_data = oss.get(&data_key).unwrap();
    let meta = ContainerMeta::decode(&crc::unseal(&good_meta, "container meta").unwrap()).unwrap();

    let restore_all = |ctx: &str| {
        for (version, files) in &history {
            for (file, expected) in files {
                match store.restore_file(file, *version) {
                    Ok((bytes, _)) => {
                        assert_eq!(&bytes, expected, "{ctx}: silently wrong restore")
                    }
                    Err(e) => assert!(!e.is_retryable(), "{ctx}: got retryable {e}"),
                }
            }
        }
    };

    // (a) Entry span reaching past the data object, behind a valid CRC.
    let mut poisoned = meta.clone();
    poisoned.entries[0].offset = poisoned.data_len;
    poisoned.entries[0].len = u32::MAX - poisoned.data_len;
    poisoned.entries[0].raw_len = u32::MAX;
    oss.put(&meta_key, crc::seal(&poisoned.encode())).unwrap();
    restore_all("out-of-bounds entry");

    // (b) Stored length exceeding raw length (impossible for the builder).
    let mut poisoned = meta.clone();
    poisoned.entries[0].raw_len = 0;
    oss.put(&meta_key, crc::seal(&poisoned.encode())).unwrap();
    restore_all("len > raw_len");
    oss.put(&meta_key, good_meta.clone()).unwrap();

    // (c) A compressed entry whose stored bytes are garbage: overwrite its
    // span with 0xFF (an LZSS stream that must fail strict decode) and
    // reseal the data object so only the chunk-level check can catch it.
    let compressed = meta.entries.iter().find(|e| e.is_compressed());
    if let Some(entry) = compressed {
        let mut data = crc::unseal(&good_data, "container data").unwrap().to_vec();
        for b in &mut data[entry.offset as usize..(entry.offset + entry.len) as usize] {
            *b = 0xFF;
        }
        oss.put(&data_key, crc::seal(&data)).unwrap();
        restore_all("garbage compressed payload");
        oss.put(&data_key, good_data.clone()).unwrap();
    }

    verify_all(&store, &history, "after poisoning");
}

/// The redundancy plane protects *stored* bytes: a damaged compressed
/// container heals through `repair()` and restores byte-identically.
#[test]
fn repair_heals_damaged_compressed_containers() {
    let oss = Oss::in_memory();
    let store = store_over(&oss, config(true));
    let history = backup_history(&store, 3);
    let last = history.last().unwrap().0;
    store.run_gnode_cycle(last).unwrap();

    let victim = oss
        .list(layout::CONTAINER_PREFIX)
        .into_iter()
        .find(|k| k.ends_with("/data"))
        .unwrap();
    let mut buf = oss.get(&victim).unwrap().to_vec();
    let mid = buf.len() / 2;
    buf[mid] ^= 0x10;
    oss.put(&victim, Bytes::from(buf)).unwrap();

    let (_, report) = store.repair().unwrap();
    assert_eq!(report.containers_unrepairable, 0, "{report:?}");
    verify_all(&store, &history, "after repair");
    let integrity = store.verify_checksums().unwrap();
    assert_eq!(integrity.containers_quarantined, 0);
}
