//! Umbrella crate for the SLIMSTORE reproduction workspace.
//!
//! This crate exists so that repository-level `tests/` and `examples/` can
//! exercise the public API of every member crate. Library users should depend
//! on [`slimstore`] (the system facade) or on the individual substrate crates.

pub use slim_baselines as baselines;
pub use slim_chunking as chunking;
pub use slim_frontend as frontend;
pub use slim_gnode as gnode;
pub use slim_index as index;
pub use slim_lnode as lnode;
pub use slim_oss as oss;
pub use slim_telemetry as telemetry;
pub use slim_types as types;
pub use slim_workload as workload;
pub use slimstore as system;
