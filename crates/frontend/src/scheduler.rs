//! The admission queue and deficit-round-robin dispatch state.
//!
//! One mutex-guarded [`Scheduler`] holds every tenant's bounded per-class
//! queues, token bucket, DRR deficit counters and in-flight accounting.
//! Dispatcher workers call [`Scheduler::dispatch`] under the lock to pick
//! the next request:
//!
//! * **strict priority across classes** — restore before backup before
//!   maintenance; a class is consulted only when every higher class has
//!   nothing dispatchable, so offline dedup can never starve foreground
//!   work (the reverse, foreground starving maintenance, is by design);
//! * **weighted deficit round-robin across tenants within a class** —
//!   every scheduling visit grants a tenant `quantum * weight` deficit and
//!   its head request runs once the deficit covers the request cost, so a
//!   tenant flooding huge backups cannot crowd out a tenant of small ones
//!   beyond its weight share;
//! * **in-flight gates** — a tenant's queued work is held back (without
//!   losing its place) while its executing bytes exceed the policy budget,
//!   and maintenance for a tenant runs only exclusively: never while any
//!   of that tenant's foreground requests execute, and vice versa, because
//!   the G-node is an *offline* component (§III-B) — its sweeps assume no
//!   concurrent backup on the same deployment;
//! * **deadline shedding** — expired requests found at the head of a queue
//!   are removed and completed with [`slim_types::SlimError::Overloaded`]
//!   instead of being executed late.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use slimstore::SlimStore;

use crate::policy::{Priority, TenantPolicy, TokenBucket, CLASSES};
use crate::request::{Request, TicketState};

/// One admitted request waiting in (or leaving) the queues.
pub(crate) struct Job {
    pub tenant: Arc<str>,
    pub class: Priority,
    pub cost: u64,
    /// Absolute virtual deadline; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Real admission time (latency histograms).
    pub admitted_at: Instant,
    pub request: Request,
    pub store: Arc<SlimStore>,
    pub ticket: Arc<TicketState>,
}

impl Job {
    /// Whether the deadline passed at virtual time `now`.
    pub fn expired(&self, now: Duration) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }

    /// Human-readable shed message.
    pub fn shed_message(&self, why: &str) -> String {
        format!(
            "{} for tenant {} {}",
            self.request.label(),
            self.tenant,
            why
        )
    }
}

/// Per-tenant scheduling state.
pub(crate) struct TenantEntry {
    pub policy: TenantPolicy,
    pub bucket: TokenBucket,
    queues: [VecDeque<Job>; CLASSES],
    deficit: [u64; CLASSES],
    pub inflight_foreground: usize,
    pub inflight_maintenance: usize,
    pub inflight_bytes: u64,
}

impl TenantEntry {
    fn new(policy: TenantPolicy, now: Duration) -> Self {
        TenantEntry {
            bucket: TokenBucket::new(&policy, now),
            policy,
            queues: Default::default(),
            deficit: [0; CLASSES],
            inflight_foreground: 0,
            inflight_maintenance: 0,
            inflight_bytes: 0,
        }
    }

    /// Total queued requests across classes.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Queued requests in one class.
    pub fn queued_in(&self, class: Priority) -> usize {
        self.queues[class.idx()].len()
    }

    /// Whether `job` may start now under the in-flight gates.
    fn gates_open(&self, job: &Job) -> bool {
        let exclusive_ok = match job.class {
            // Maintenance is offline: requires the tenant idle.
            Priority::Maintenance => {
                self.inflight_foreground == 0 && self.inflight_maintenance == 0
            }
            // Foreground never overlaps a running maintenance pass.
            _ => self.inflight_maintenance == 0,
        };
        // The byte budget meters aggregate in-flight volume; a tenant with
        // nothing in flight may always start one request, so a single
        // request larger than the budget cannot deadlock forever.
        let budget_ok = self.inflight_bytes == 0
            || self.inflight_bytes.saturating_add(job.cost) <= self.policy.max_inflight_bytes;
        exclusive_ok && budget_ok
    }
}

/// What [`Scheduler::dispatch`] decided.
pub(crate) struct Dispatch {
    /// The request to execute, if any became runnable.
    pub job: Option<Job>,
    /// Requests shed because their deadline expired in the queue. The
    /// caller completes their tickets and records the shed metrics.
    pub expired: Vec<Job>,
}

/// The frontend's entire mutable scheduling state (guarded by one mutex in
/// the frontend).
pub(crate) struct Scheduler {
    tenants: HashMap<Arc<str>, TenantEntry>,
    /// Tenants with queued work, per class; each tenant appears at most
    /// once per class list.
    active: [VecDeque<Arc<str>>; CLASSES],
    pub queued_total: usize,
    pub inflight_total: usize,
    pub draining: bool,
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler {
            tenants: HashMap::new(),
            active: Default::default(),
            queued_total: 0,
            inflight_total: 0,
            draining: false,
        }
    }

    /// The entry for `tenant`, created from `default_policy` on first use.
    pub fn entry(
        &mut self,
        tenant: &Arc<str>,
        default_policy: &TenantPolicy,
        now: Duration,
    ) -> &mut TenantEntry {
        self.tenants
            .entry(tenant.clone())
            .or_insert_with(|| TenantEntry::new(default_policy.clone(), now))
    }

    /// The existing entry for `tenant`, if any.
    pub fn get(&self, tenant: &str) -> Option<&TenantEntry> {
        self.tenants.get(tenant)
    }

    /// Replace a tenant's policy (queues and in-flight state survive; the
    /// token bucket restarts full under the new rate).
    pub fn set_policy(&mut self, tenant: &Arc<str>, policy: TenantPolicy, now: Duration) {
        let entry = self.entry(tenant, &policy, now);
        entry.bucket = TokenBucket::new(&policy, now);
        entry.policy = policy;
    }

    /// Enqueue an admitted job (capacity was already checked under the same
    /// lock hold).
    pub fn enqueue(&mut self, job: Job) {
        let tenant = job.tenant.clone();
        let class = job.class.idx();
        let entry = self
            .tenants
            .get_mut(&tenant)
            .expect("entry created at admission");
        entry.queues[class].push_back(job);
        self.queued_total += 1;
        // A sweep can leave a stale occurrence of the tenant in the active
        // list, so membership — not prior queue emptiness — decides.
        if !self.active[class].contains(&tenant) {
            self.active[class].push_back(tenant);
        }
    }

    /// Pick the next runnable request, shedding expired queue heads on the
    /// way. Called under the scheduler lock.
    pub fn dispatch(&mut self, now: Duration, quantum: u64) -> Dispatch {
        let mut expired = Vec::new();
        for class in 0..CLASSES {
            // Deficit rounds: keep cycling the class while some tenant has
            // an eligible head that merely lacks deficit. Terminates
            // because each visit grows that tenant's deficit by at least
            // `quantum >= 1` and costs are finite.
            loop {
                let mut underfunded = false;
                let scan = self.active[class].len();
                if scan == 0 {
                    break;
                }
                for _ in 0..scan {
                    let Some(tenant) = self.active[class].pop_front() else {
                        break;
                    };
                    let entry = self.tenants.get_mut(&tenant).expect("active implies entry");
                    // Shed expired heads before spending deficit on them.
                    while entry.queues[class]
                        .front()
                        .is_some_and(|job| job.expired(now))
                    {
                        let job = entry.queues[class].pop_front().expect("front checked");
                        self.queued_total -= 1;
                        expired.push(job);
                    }
                    let Some(head) = entry.queues[class].front() else {
                        entry.deficit[class] = 0;
                        continue; // drained: drop from the active list
                    };
                    if !entry.gates_open(head) {
                        // Parked on an in-flight gate: keep the place in
                        // line, spend no deficit, re-check after the next
                        // completion.
                        self.active[class].push_back(tenant);
                        continue;
                    }
                    entry.deficit[class] = entry.deficit[class]
                        .saturating_add(quantum.saturating_mul(u64::from(entry.policy.weight)));
                    if entry.deficit[class] < head.cost {
                        underfunded = true;
                        self.active[class].push_back(tenant);
                        continue;
                    }
                    let job = entry.queues[class].pop_front().expect("head exists");
                    entry.deficit[class] -= job.cost;
                    self.queued_total -= 1;
                    entry.inflight_bytes = entry.inflight_bytes.saturating_add(job.cost);
                    match job.class {
                        Priority::Maintenance => entry.inflight_maintenance += 1,
                        _ => entry.inflight_foreground += 1,
                    }
                    self.inflight_total += 1;
                    if entry.queues[class].is_empty() {
                        // An idle tenant carries no deficit into its next
                        // burst (classic DRR; prevents banked priority).
                        entry.deficit[class] = 0;
                    } else {
                        self.active[class].push_back(tenant);
                    }
                    return Dispatch {
                        job: Some(job),
                        expired,
                    };
                }
                if !underfunded {
                    break;
                }
            }
        }
        Dispatch { job: None, expired }
    }

    /// Sweep *every* queued request (not just heads) for expired deadlines.
    pub fn sweep_expired(&mut self, now: Duration) -> Vec<Job> {
        let mut expired = Vec::new();
        for entry in self.tenants.values_mut() {
            for queue in entry.queues.iter_mut() {
                let before = queue.len();
                let mut kept = VecDeque::with_capacity(before);
                for job in queue.drain(..) {
                    if job.expired(now) {
                        expired.push(job);
                    } else {
                        kept.push_back(job);
                    }
                }
                *queue = kept;
            }
        }
        self.queued_total -= expired.len();
        // Tenants whose queues drained entirely will be dropped from the
        // active lists lazily by the next dispatch scan.
        expired
    }

    /// Mark one request finished and release its in-flight accounting.
    pub fn complete(&mut self, tenant: &str, class: Priority, cost: u64) {
        let entry = self
            .tenants
            .get_mut(tenant)
            .expect("completed job had an entry");
        entry.inflight_bytes = entry.inflight_bytes.saturating_sub(cost);
        match class {
            Priority::Maintenance => entry.inflight_maintenance -= 1,
            _ => entry.inflight_foreground -= 1,
        }
        self.inflight_total -= 1;
    }

    /// Whether nothing is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queued_total == 0 && self.inflight_total == 0
    }

    /// Queue depth of one class across all tenants.
    pub fn queued_in_class(&self, class: Priority) -> usize {
        self.tenants.values().map(|t| t.queued_in(class)).sum()
    }

    /// Bytes of all executing requests across tenants.
    pub fn inflight_bytes_total(&self) -> u64 {
        self.tenants.values().map(|t| t.inflight_bytes).sum()
    }

    /// Tenant names with state, sorted (stats reporting).
    pub fn tenant_names(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = self.tenants.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::rocks::RocksConfig;
    use slim_types::{FileId, SlimConfig, VersionId};
    use slimstore::SlimStoreBuilder;

    fn test_store() -> Arc<SlimStore> {
        Arc::new(
            SlimStoreBuilder::in_memory()
                .with_config(SlimConfig::small_for_tests())
                .with_rocks_config(RocksConfig::small_for_tests())
                .build()
                .unwrap(),
        )
    }

    fn job(store: &Arc<SlimStore>, tenant: &Arc<str>, class: Priority, cost: u64) -> Job {
        let request = match class {
            Priority::Backup => Request::Backup {
                files: vec![(FileId::new("f"), vec![0u8; cost as usize])],
                jobs: 1,
            },
            Priority::Restore => Request::RestoreFile {
                file: FileId::new("f"),
                version: VersionId(0),
            },
            Priority::Maintenance => Request::GNodeCycle {
                version: VersionId(0),
            },
        };
        let (_ticket, state) = crate::request::Ticket::new();
        Job {
            tenant: tenant.clone(),
            class,
            cost,
            deadline: None,
            admitted_at: Instant::now(),
            request,
            store: store.clone(),
            ticket: state,
        }
    }

    fn sched_with(tenants: &[&Arc<str>]) -> Scheduler {
        let mut sched = Scheduler::new();
        for t in tenants {
            sched.entry(t, &TenantPolicy::default(), Duration::ZERO);
        }
        sched
    }

    #[test]
    fn strict_priority_across_classes() {
        let store = test_store();
        let t: Arc<str> = Arc::from("acme");
        let mut sched = sched_with(&[&t]);
        sched.enqueue(job(&store, &t, Priority::Maintenance, 1));
        sched.enqueue(job(&store, &t, Priority::Backup, 1));
        sched.enqueue(job(&store, &t, Priority::Restore, 1));
        let first = sched.dispatch(Duration::ZERO, 1024).job.unwrap();
        assert_eq!(first.class, Priority::Restore);
        sched.complete(&t, first.class, first.cost);
        let second = sched.dispatch(Duration::ZERO, 1024).job.unwrap();
        assert_eq!(second.class, Priority::Backup);
        sched.complete(&t, second.class, second.cost);
        let third = sched.dispatch(Duration::ZERO, 1024).job.unwrap();
        assert_eq!(third.class, Priority::Maintenance);
    }

    #[test]
    fn maintenance_waits_for_tenant_idle_and_blocks_foreground() {
        let store = test_store();
        let t: Arc<str> = Arc::from("acme");
        let mut sched = sched_with(&[&t]);
        // A running backup holds maintenance back...
        sched.enqueue(job(&store, &t, Priority::Backup, 1));
        let backup = sched.dispatch(Duration::ZERO, 1024).job.unwrap();
        sched.enqueue(job(&store, &t, Priority::Maintenance, 1));
        assert!(sched.dispatch(Duration::ZERO, 1024).job.is_none());
        sched.complete(&t, backup.class, backup.cost);
        // ...then maintenance runs, and now *foreground* waits for it.
        let maint = sched.dispatch(Duration::ZERO, 1024).job.unwrap();
        assert_eq!(maint.class, Priority::Maintenance);
        sched.enqueue(job(&store, &t, Priority::Restore, 1));
        assert!(sched.dispatch(Duration::ZERO, 1024).job.is_none());
        sched.complete(&t, maint.class, maint.cost);
        assert!(sched.dispatch(Duration::ZERO, 1024).job.is_some());
    }

    #[test]
    fn byte_budget_gates_dispatch_but_never_deadlocks_oversize() {
        let store = test_store();
        let t: Arc<str> = Arc::from("acme");
        let mut sched = Scheduler::new();
        let policy = TenantPolicy::default().with_max_inflight_bytes(1000);
        sched.entry(&t, &policy, Duration::ZERO);
        // An oversize request dispatches while the tenant is idle.
        sched.enqueue(job(&store, &t, Priority::Backup, 5000));
        let big = sched.dispatch(Duration::ZERO, 10_000).job.unwrap();
        // Budget exhausted: the next request waits...
        sched.enqueue(job(&store, &t, Priority::Backup, 10));
        assert!(sched.dispatch(Duration::ZERO, 10_000).job.is_none());
        // ...until the big one completes.
        sched.complete(&t, big.class, big.cost);
        assert!(sched.dispatch(Duration::ZERO, 10_000).job.is_some());
    }

    #[test]
    fn drr_shares_by_weight() {
        let store = test_store();
        let heavy: Arc<str> = Arc::from("heavy");
        let light: Arc<str> = Arc::from("light");
        let mut sched = Scheduler::new();
        sched.entry(
            &heavy,
            &TenantPolicy::default().with_weight(2),
            Duration::ZERO,
        );
        sched.entry(
            &light,
            &TenantPolicy::default().with_weight(1),
            Duration::ZERO,
        );
        for _ in 0..30 {
            sched.enqueue(job(&store, &heavy, Priority::Backup, 100));
            sched.enqueue(job(&store, &light, Priority::Backup, 100));
        }
        // Dispatch (and immediately complete) 30 requests; with quantum 100
        // and weights 2:1 the service ratio converges to 2:1.
        let mut served = HashMap::new();
        for _ in 0..30 {
            let job = sched.dispatch(Duration::ZERO, 100).job.unwrap();
            *served.entry(job.tenant.clone()).or_insert(0usize) += 1;
            sched.complete(&job.tenant, job.class, job.cost);
        }
        let h = served[&heavy];
        let l = served[&light];
        assert_eq!(h + l, 30);
        assert!((18..=22).contains(&h), "heavy {h} vs light {l}: want ~2:1");
    }

    #[test]
    fn expired_heads_are_shed_not_served() {
        let store = test_store();
        let t: Arc<str> = Arc::from("acme");
        let mut sched = sched_with(&[&t]);
        let mut doomed = job(&store, &t, Priority::Backup, 1);
        doomed.deadline = Some(Duration::from_secs(1));
        sched.enqueue(doomed);
        sched.enqueue(job(&store, &t, Priority::Backup, 1));
        let d = sched.dispatch(Duration::from_secs(2), 1024);
        assert_eq!(d.expired.len(), 1);
        assert!(d.job.is_some());
        assert_eq!(sched.queued_total, 0);
    }

    #[test]
    fn sweep_expired_reaches_non_heads() {
        let store = test_store();
        let t: Arc<str> = Arc::from("acme");
        let mut sched = sched_with(&[&t]);
        sched.enqueue(job(&store, &t, Priority::Backup, 1));
        let mut doomed = job(&store, &t, Priority::Backup, 1);
        doomed.deadline = Some(Duration::from_secs(1));
        sched.enqueue(doomed);
        let expired = sched.sweep_expired(Duration::from_secs(5));
        assert_eq!(expired.len(), 1);
        assert_eq!(sched.queued_total, 1);
        // The surviving head still dispatches.
        assert!(sched.dispatch(Duration::from_secs(5), 1024).job.is_some());
    }
}
