//! The request/response vocabulary of the frontend, and the [`Ticket`]
//! a caller holds while an admitted request is queued or executing.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use slim_gnode::GNodeCycleStats;
use slim_lnode::RestoreStats;
use slim_types::{FileId, Result, SlimError, VersionId};
use slimstore::{RetentionReport, SlimStore, VersionBackupReport};

use crate::policy::Priority;

/// One tenant-facing operation.
#[derive(Debug)]
pub enum Request {
    /// Back up one new version of the given files.
    Backup {
        files: Vec<(FileId, Vec<u8>)>,
        jobs: usize,
    },
    /// Restore one file at one version.
    RestoreFile { file: FileId, version: VersionId },
    /// Restore every file of a version.
    RestoreVersion { version: VersionId, jobs: usize },
    /// Run the offline G-node cycle for a version.
    GNodeCycle { version: VersionId },
    /// FIFO retention sweep keeping the newest `keep` versions.
    RetainLast { keep: usize },
}

impl Request {
    /// The scheduling class this request belongs to.
    pub fn priority(&self) -> Priority {
        match self {
            Request::RestoreFile { .. } | Request::RestoreVersion { .. } => Priority::Restore,
            Request::Backup { .. } => Priority::Backup,
            Request::GNodeCycle { .. } | Request::RetainLast { .. } => Priority::Maintenance,
        }
    }

    /// Scheduling cost in bytes (never zero). Backups declare their payload
    /// size up front; restores and maintenance cannot know theirs before
    /// running, so they cost one unit — the byte budget then meters them by
    /// concurrency rather than volume.
    pub fn cost_bytes(&self) -> u64 {
        match self {
            Request::Backup { files, .. } => files
                .iter()
                .map(|(_, bytes)| bytes.len() as u64)
                .sum::<u64>()
                .max(1),
            _ => 1,
        }
    }

    /// Short label for error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Backup { .. } => "backup",
            Request::RestoreFile { .. } => "restore_file",
            Request::RestoreVersion { .. } => "restore_version",
            Request::GNodeCycle { .. } => "gnode_cycle",
            Request::RetainLast { .. } => "retain_last",
        }
    }

    /// Execute against a tenant deployment (called by a dispatcher worker).
    pub(crate) fn execute(self, store: &SlimStore) -> Result<Response> {
        match self {
            Request::Backup { files, jobs } => store
                .backup_version_with_jobs(files, jobs)
                .map(Response::Backup),
            Request::RestoreFile { file, version } => store
                .restore_file(&file, version)
                .map(|(bytes, stats)| Response::File { bytes, stats }),
            Request::RestoreVersion { version, jobs } => {
                store.restore_version(version, jobs).map(Response::Version)
            }
            Request::GNodeCycle { version } => {
                store.run_gnode_cycle(version).map(Response::Maintenance)
            }
            Request::RetainLast { keep } => store.retain_last(keep).map(Response::Retention),
        }
    }
}

/// Successful outcome of a [`Request`], same shape as the direct
/// [`SlimStore`] call the frontend executed on the caller's behalf.
#[derive(Debug)]
pub enum Response {
    /// Outcome of [`Request::Backup`].
    Backup(VersionBackupReport),
    /// Outcome of [`Request::RestoreFile`].
    File { bytes: Vec<u8>, stats: RestoreStats },
    /// Outcome of [`Request::RestoreVersion`].
    Version(Vec<(FileId, Vec<u8>, RestoreStats)>),
    /// Outcome of [`Request::GNodeCycle`].
    Maintenance(GNodeCycleStats),
    /// Outcome of [`Request::RetainLast`].
    Retention(RetentionReport),
}

impl Response {
    /// The backup report, or an error if this response is another kind.
    pub fn into_backup(self) -> Result<VersionBackupReport> {
        match self {
            Response::Backup(report) => Ok(report),
            other => Err(other.kind_mismatch("backup")),
        }
    }

    /// The restored file bytes + stats, or an error for other kinds.
    pub fn into_file(self) -> Result<(Vec<u8>, RestoreStats)> {
        match self {
            Response::File { bytes, stats } => Ok((bytes, stats)),
            other => Err(other.kind_mismatch("file")),
        }
    }

    /// The restored version file set, or an error for other kinds.
    pub fn into_version(self) -> Result<Vec<(FileId, Vec<u8>, RestoreStats)>> {
        match self {
            Response::Version(files) => Ok(files),
            other => Err(other.kind_mismatch("version")),
        }
    }

    /// The maintenance cycle stats, or an error for other kinds.
    pub fn into_maintenance(self) -> Result<GNodeCycleStats> {
        match self {
            Response::Maintenance(stats) => Ok(stats),
            other => Err(other.kind_mismatch("maintenance")),
        }
    }

    /// The retention report, or an error for other kinds.
    pub fn into_retention(self) -> Result<RetentionReport> {
        match self {
            Response::Retention(report) => Ok(report),
            other => Err(other.kind_mismatch("retention")),
        }
    }

    fn kind_mismatch(&self, wanted: &str) -> SlimError {
        let got = match self {
            Response::Backup(_) => "backup",
            Response::File { .. } => "file",
            Response::Version(_) => "version",
            Response::Maintenance(_) => "maintenance",
            Response::Retention(_) => "retention",
        };
        SlimError::InvalidConfig(format!("expected a {wanted} response, got {got}"))
    }
}

/// Shared completion slot between a [`Ticket`] and the dispatcher.
#[derive(Default)]
pub(crate) struct TicketState {
    slot: Mutex<Option<Result<Response>>>,
    done: Condvar,
}

impl TicketState {
    /// Deliver the outcome and wake every waiter. Delivering twice is a
    /// scheduler bug; the first outcome wins and the second is dropped.
    pub fn complete(&self, outcome: Result<Response>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.done.notify_all();
    }
}

/// Handle to one admitted request. Obtain the outcome with
/// [`Ticket::wait`]; dropping the ticket abandons the result but never
/// cancels the request — admitted work always runs (or is shed by its
/// deadline) regardless of whether anyone is still watching.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    pub(crate) fn new() -> (Ticket, Arc<TicketState>) {
        let state = Arc::new(TicketState::default());
        (
            Ticket {
                state: state.clone(),
            },
            state,
        )
    }

    /// Block until the request completes (successfully, with its
    /// operation's error, or shed with [`SlimError::Overloaded`]).
    pub fn wait(self) -> Result<Response> {
        let mut slot = self.state.slot.lock();
        while slot.is_none() {
            self.state.done.wait(&mut slot);
        }
        slot.take().expect("guarded by loop")
    }

    /// Whether the outcome is already available ([`Ticket::wait`] would
    /// return without blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_and_costs() {
        let backup = Request::Backup {
            files: vec![(FileId::new("f"), vec![0u8; 1000])],
            jobs: 1,
        };
        assert_eq!(backup.priority(), Priority::Backup);
        assert_eq!(backup.cost_bytes(), 1000);
        let restore = Request::RestoreFile {
            file: FileId::new("f"),
            version: VersionId(0),
        };
        assert_eq!(restore.priority(), Priority::Restore);
        assert_eq!(restore.cost_bytes(), 1);
        let maint = Request::GNodeCycle {
            version: VersionId(0),
        };
        assert_eq!(maint.priority(), Priority::Maintenance);
        assert_eq!(
            Request::RetainLast { keep: 3 }.priority(),
            Priority::Maintenance
        );
        // An empty backup still has positive cost.
        let empty = Request::Backup {
            files: vec![],
            jobs: 1,
        };
        assert_eq!(empty.cost_bytes(), 1);
    }

    #[test]
    fn ticket_completes_once() {
        let (ticket, state) = Ticket::new();
        assert!(!ticket.is_done());
        state.complete(Err(SlimError::Overloaded("first".into())));
        state.complete(Err(SlimError::Overloaded("second".into())));
        match ticket.wait() {
            Err(SlimError::Overloaded(msg)) => assert_eq!(msg, "first"),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn ticket_wait_blocks_until_completion() {
        let (ticket, state) = Ticket::new();
        let handle = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        state.complete(Err(SlimError::Overloaded("late".into())));
        assert!(handle.join().unwrap().is_err());
    }

    #[test]
    fn response_kind_accessors() {
        let r = Response::Retention(RetentionReport::default());
        assert!(r.into_retention().is_ok());
        let r = Response::File {
            bytes: vec![1, 2],
            stats: RestoreStats::default(),
        };
        assert!(r.into_backup().is_err());
    }
}
