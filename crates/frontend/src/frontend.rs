//! The [`Frontend`]: the tenant-facing request plane.
//!
//! Callers submit [`Request`]s for a named tenant and receive a
//! [`Ticket`]. Admission control (token bucket, bounded queue, drain
//! state) runs synchronously in [`Frontend::submit`] and refuses with
//! [`SlimError::Overloaded`]; admitted requests wait in per-tenant
//! priority queues until a dispatcher worker selects them by weighted
//! deficit round-robin and executes them against the tenant's
//! [`slimstore::SlimStore`] deployment. Requests carrying a deadline are
//! shed — not executed late — once it expires.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use slim_telemetry::{Registry, Scope, TelemetrySnapshot};
use slim_types::{Result, SlimError};
use slimstore::TenantStoreManager;

use crate::clock::{Clock, SystemClock};
use crate::policy::{FrontendConfig, Priority, TenantPolicy, CLASSES};
use crate::request::{Request, Ticket};
use crate::scheduler::{Job, Scheduler};

/// Why a request was refused or abandoned.
#[derive(Debug, Clone, Copy)]
enum ShedReason {
    /// The tenant exceeded its admission rate limit.
    RateLimit,
    /// The tenant's queue for the request's class was full.
    QueueFull,
    /// The deadline expired while the request was queued.
    Deadline,
    /// The frontend is draining (or already shut down).
    Draining,
}

impl ShedReason {
    fn counter_name(self) -> &'static str {
        match self {
            ShedReason::RateLimit => "shed.rate_limit",
            ShedReason::QueueFull => "shed.queue_full",
            ShedReason::Deadline => "shed.deadline",
            ShedReason::Draining => "shed.draining",
        }
    }

    fn message(self) -> &'static str {
        match self {
            ShedReason::RateLimit => "tenant rate limit exceeded",
            ShedReason::QueueFull => "tenant admission queue full",
            ShedReason::Deadline => "deadline expired while queued",
            ShedReason::Draining => "frontend is draining",
        }
    }
}

/// State shared between the [`Frontend`] handle and its workers.
struct Shared {
    manager: Arc<TenantStoreManager>,
    config: FrontendConfig,
    clock: Arc<dyn Clock>,
    sched: Mutex<Scheduler>,
    /// Signals both "work arrived / completed" (workers) and "state
    /// changed towards idle" (drainers); everyone re-checks under the lock.
    cond: Condvar,
    registry: Registry,
    scope: Scope,
}

impl Shared {
    /// Refuse or abandon `tenant`'s request for `reason`, keeping the
    /// shed counters coherent: `shed` totals everything, the per-reason
    /// counter splits it, and `timeout` additionally counts deadline sheds
    /// (the ISSUE's name for them).
    fn count_shed(&self, tenant: &str, reason: ShedReason) {
        self.scope.counter("shed").inc();
        self.scope.counter(reason.counter_name()).inc();
        if matches!(reason, ShedReason::Deadline) {
            self.scope.counter("timeout").inc();
        }
        self.tenant_scope(tenant).counter("shed").inc();
    }

    /// Complete a queued job's ticket with [`SlimError::Overloaded`].
    fn shed_job(&self, job: Job, reason: ShedReason) {
        self.count_shed(&job.tenant, reason);
        let message = job.shed_message(reason.message());
        job.ticket.complete(Err(SlimError::Overloaded(message)));
    }

    /// Metric scope of one tenant (`frontend.tenant.<name>`).
    fn tenant_scope(&self, tenant: &str) -> Scope {
        self.scope.child("tenant").child(tenant)
    }

    /// Re-derive every queue/in-flight gauge from scheduler state. Called
    /// under the scheduler lock at each mutation point.
    fn refresh_gauges(&self, sched: &Scheduler) {
        self.scope
            .gauge("queue_depth")
            .set(sched.queued_total as i64);
        self.scope
            .gauge("inflight")
            .set(sched.inflight_total as i64);
        self.scope
            .gauge("inflight_bytes")
            .set(sched.inflight_bytes_total() as i64);
        for class in Priority::ALL {
            self.scope
                .child("class")
                .child(class.label())
                .gauge("queue_depth")
                .set(sched.queued_in_class(class) as i64);
        }
        for tenant in sched.tenant_names() {
            if let Some(entry) = sched.get(&tenant) {
                let scope = self.tenant_scope(&tenant);
                scope.gauge("queue_depth").set(entry.queued() as i64);
                scope
                    .gauge("inflight_bytes")
                    .set(entry.inflight_bytes as i64);
            }
        }
    }

    /// One dispatcher worker: pull the next runnable request, execute it
    /// outside the lock, deliver the outcome, repeat until drained.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut sched = self.sched.lock();
                loop {
                    let now = self.clock.now();
                    let decision = sched.dispatch(now, self.config.drr_quantum);
                    if !decision.expired.is_empty() {
                        self.refresh_gauges(&sched);
                        for expired in decision.expired {
                            // Ticket completion takes only the ticket's own
                            // lock; waiters never take the scheduler lock,
                            // so completing here cannot deadlock.
                            self.shed_job(expired, ShedReason::Deadline);
                        }
                    }
                    if let Some(job) = decision.job {
                        self.refresh_gauges(&sched);
                        break Some(job);
                    }
                    if sched.draining && sched.queued_total == 0 {
                        break None;
                    }
                    self.cond.wait(&mut sched);
                }
            };
            let Some(job) = job else { return };

            let Job {
                tenant,
                class,
                cost,
                admitted_at,
                request,
                store,
                ticket,
                deadline,
                ..
            } = job;
            self.scope
                .histogram(&format!("queue_wait_ns.{}", class.label()))
                .record_duration(admitted_at.elapsed());
            // Propagate whatever deadline budget survived the queue into the
            // execution as the ambient `Deadline`: every layer below —
            // retries, hedged reads, prefetch workers — sees the remaining
            // budget and stops issuing OSS calls once it is spent.
            let remaining = deadline.map(|d| d.saturating_sub(self.clock.now()));
            let ambient = match remaining {
                Some(budget) => slim_types::Deadline::within(budget),
                None => slim_types::Deadline::never(),
            };
            let outcome = ambient.scope(|| request.execute(&store));

            let latency = admitted_at.elapsed();
            self.scope
                .histogram(&format!("latency_ns.{}", class.label()))
                .record_duration(latency);
            self.tenant_scope(&tenant)
                .histogram("latency_ns")
                .record_duration(latency);
            self.scope
                .counter(if outcome.is_ok() {
                    "completed"
                } else {
                    "failed"
                })
                .inc();

            {
                let mut sched = self.sched.lock();
                sched.complete(&tenant, class, cost);
                self.refresh_gauges(&sched);
            }
            // Wake queued dispatchers (a gate may have opened) and any
            // drainer waiting for idle.
            self.cond.notify_all();
            ticket.complete(outcome);
        }
    }
}

/// Builds a [`Frontend`] over a [`TenantStoreManager`].
pub struct FrontendBuilder {
    manager: Arc<TenantStoreManager>,
    config: FrontendConfig,
    clock: Arc<dyn Clock>,
    registry: Option<Registry>,
    policies: Vec<(String, TenantPolicy)>,
}

impl FrontendBuilder {
    /// Start building over `manager`.
    pub fn new(manager: Arc<TenantStoreManager>) -> Self {
        FrontendBuilder {
            manager,
            config: FrontendConfig::default(),
            clock: Arc::new(SystemClock::new()),
            registry: None,
            policies: Vec::new(),
        }
    }

    /// Frontend-wide configuration.
    pub fn with_config(mut self, config: FrontendConfig) -> Self {
        self.config = config;
        self
    }

    /// Time source for rate limiting and deadlines (tests pass a
    /// [`crate::ManualClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Record frontend metrics into an existing registry instead of a
    /// private one.
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Per-tenant QoS override applied before the frontend starts.
    pub fn with_tenant_policy(mut self, tenant: &str, policy: TenantPolicy) -> Self {
        self.policies.push((tenant.to_string(), policy));
        self
    }

    /// Validate, spawn the dispatcher pool, and hand back the frontend.
    pub fn start(self) -> Result<Frontend> {
        self.config.validate()?;
        for (_, policy) in &self.policies {
            policy.validate()?;
        }
        let registry = self.registry.unwrap_or_default();
        let scope = registry.scope("frontend");
        let shared = Arc::new(Shared {
            manager: self.manager,
            config: self.config,
            clock: self.clock,
            sched: Mutex::new(Scheduler::new()),
            cond: Condvar::new(),
            registry,
            scope,
        });
        {
            let now = shared.clock.now();
            let mut sched = shared.sched.lock();
            for (tenant, policy) in self.policies {
                sched.set_policy(&Arc::from(tenant.as_str()), policy, now);
            }
        }
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("slim-frontend-{i}"))
                    .spawn(move || shared.worker_loop())
                    .map_err(|e| SlimError::InvalidConfig(format!("spawning frontend worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Frontend {
            shared,
            workers: Mutex::new(workers),
        })
    }
}

/// Point-in-time queue/QoS state for operator tooling (`slim stats --qos`).
#[derive(Debug, Clone)]
pub struct FrontendStats {
    /// Requests waiting in admission queues.
    pub queued: usize,
    /// Requests currently executing.
    pub inflight: usize,
    /// Whether the frontend has stopped admitting.
    pub draining: bool,
    /// Queue depth per priority class, indexed like [`Priority::ALL`].
    pub queued_by_class: [usize; CLASSES],
    /// Per-tenant queue state, sorted by tenant name.
    pub tenants: Vec<TenantQueueStats>,
}

/// One tenant's slice of [`FrontendStats`].
#[derive(Debug, Clone)]
pub struct TenantQueueStats {
    pub tenant: String,
    pub queued: usize,
    pub inflight_bytes: u64,
    pub weight: u32,
}

/// The tenant-facing request plane. See the crate docs for the admission
/// and scheduling model.
pub struct Frontend {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Frontend {
    /// Submit `request` for `tenant` under the frontend's default
    /// deadline. Returns a [`Ticket`] on admission, or
    /// [`SlimError::Overloaded`] when shed at the door.
    pub fn submit(&self, tenant: &str, request: Request) -> Result<Ticket> {
        self.submit_with_deadline(tenant, request, self.shared.config.default_deadline)
    }

    /// Submit with an explicit deadline (measured from admission; `None`
    /// waits forever). A request still queued when its deadline expires is
    /// completed with [`SlimError::Overloaded`] instead of executing.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket> {
        let shared = &self.shared;
        // Resolve (possibly build) the deployment before taking the
        // scheduler lock: first-touch builds replay journals and load
        // indexes, and an invalid tenant name must fail fast here.
        let store = shared.manager.get_or_create(tenant)?;
        let class = request.priority();
        let cost = request.cost_bytes();
        let tenant_arc: Arc<str> = Arc::from(tenant);

        let mut sched = shared.sched.lock();
        if sched.draining {
            shared.count_shed(tenant, ShedReason::Draining);
            return Err(SlimError::Overloaded(format!(
                "{} for tenant {tenant} refused: {}",
                request.label(),
                ShedReason::Draining.message()
            )));
        }
        let now = shared.clock.now();
        let entry = sched.entry(&tenant_arc, &shared.config.default_policy, now);
        if !entry.bucket.try_take(now) {
            shared.count_shed(tenant, ShedReason::RateLimit);
            return Err(SlimError::Overloaded(format!(
                "{} for tenant {tenant} refused: {}",
                request.label(),
                ShedReason::RateLimit.message()
            )));
        }
        if entry.queued_in(class) >= entry.policy.queue_capacity {
            shared.count_shed(tenant, ShedReason::QueueFull);
            return Err(SlimError::Overloaded(format!(
                "{} for tenant {tenant} refused: {} ({} queued in class {})",
                request.label(),
                ShedReason::QueueFull.message(),
                entry.queued_in(class),
                class.label()
            )));
        }
        let (ticket, state) = Ticket::new();
        sched.enqueue(Job {
            tenant: tenant_arc,
            class,
            cost,
            deadline: deadline.map(|d| now + d),
            admitted_at: Instant::now(),
            request,
            store,
            ticket: state,
        });
        shared.scope.counter("admitted").inc();
        shared.refresh_gauges(&sched);
        drop(sched);
        shared.cond.notify_all();
        Ok(ticket)
    }

    /// Install (or replace) `tenant`'s QoS policy. Queued and in-flight
    /// work is unaffected; the token bucket restarts full under the new
    /// rate.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) -> Result<()> {
        policy.validate()?;
        let now = self.shared.clock.now();
        self.shared
            .sched
            .lock()
            .set_policy(&Arc::from(tenant), policy, now);
        Ok(())
    }

    /// Shed every queued request whose deadline already expired (not just
    /// queue heads, which dispatch sheds on its own). Returns how many
    /// were shed. Useful for tests and for operators running the clock
    /// forward; dispatchers converge to the same outcome lazily.
    pub fn shed_expired(&self) -> usize {
        let now = self.shared.clock.now();
        let expired = {
            let mut sched = self.shared.sched.lock();
            let expired = sched.sweep_expired(now);
            self.shared.refresh_gauges(&sched);
            expired
        };
        let n = expired.len();
        for job in expired {
            self.shared.shed_job(job, ShedReason::Deadline);
        }
        if n > 0 {
            self.shared.cond.notify_all();
        }
        n
    }

    /// Stop admitting (new submissions are refused with
    /// [`SlimError::Overloaded`]) and block until every already-admitted
    /// request has completed or been shed by its deadline.
    pub fn drain(&self) {
        let mut sched = self.shared.sched.lock();
        sched.draining = true;
        self.shared.cond.notify_all();
        while !sched.is_idle() {
            self.shared.cond.wait(&mut sched);
        }
        self.shared.refresh_gauges(&sched);
    }

    /// Drain, then join the dispatcher pool. Idempotent; also invoked by
    /// [`Drop`], so letting a frontend fall out of scope never abandons
    /// admitted work.
    pub fn shutdown(&self) {
        self.drain();
        let workers = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }

    /// Whether the frontend is draining (or shut down).
    pub fn is_draining(&self) -> bool {
        self.shared.sched.lock().draining
    }

    /// The tenant deployment manager behind this frontend.
    pub fn manager(&self) -> &Arc<TenantStoreManager> {
        &self.shared.manager
    }

    /// The frontend's configuration.
    pub fn config(&self) -> &FrontendConfig {
        &self.shared.config
    }

    /// The metric registry the frontend records into.
    pub fn telemetry(&self) -> &Registry {
        &self.shared.registry
    }

    /// A point-in-time copy of the frontend's metrics.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.shared.registry.snapshot()
    }

    /// Current queue/QoS state for operator tooling.
    pub fn stats(&self) -> FrontendStats {
        let sched = self.shared.sched.lock();
        let mut queued_by_class = [0usize; CLASSES];
        for class in Priority::ALL {
            queued_by_class[class.idx()] = sched.queued_in_class(class);
        }
        let tenants = sched
            .tenant_names()
            .into_iter()
            .filter_map(|name| {
                sched.get(&name).map(|entry| TenantQueueStats {
                    tenant: name.to_string(),
                    queued: entry.queued(),
                    inflight_bytes: entry.inflight_bytes,
                    weight: entry.policy.weight,
                })
            })
            .collect();
        FrontendStats {
            queued: sched.queued_total,
            inflight: sched.inflight_total,
            draining: sched.draining,
            queued_by_class,
            tenants,
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use slim_oss::rocks::RocksConfig;
    use slim_oss::NetworkModel;
    use slim_types::{FileId, SlimConfig};

    fn manager() -> Arc<TenantStoreManager> {
        Arc::new(
            TenantStoreManager::in_memory(NetworkModel::instant())
                .with_config(SlimConfig::small_for_tests())
                .with_rocks_config(RocksConfig::small_for_tests()),
        )
    }

    fn frontend() -> Frontend {
        FrontendBuilder::new(manager())
            .with_config(FrontendConfig::small_for_tests())
            .start()
            .unwrap()
    }

    fn backup(seed: u8, len: usize) -> Request {
        Request::Backup {
            files: vec![(FileId::new("f"), vec![seed; len])],
            jobs: 1,
        }
    }

    #[test]
    fn backup_then_restore_roundtrips_through_the_frontend() {
        let fe = frontend();
        let payload = b"frontend payload".repeat(700);
        let ticket = fe
            .submit(
                "acme",
                Request::Backup {
                    files: vec![(FileId::new("db/f"), payload.clone())],
                    jobs: 1,
                },
            )
            .unwrap();
        let report = ticket.wait().unwrap().into_backup().unwrap();
        let version = report.version;
        let ticket = fe
            .submit(
                "acme",
                Request::RestoreFile {
                    file: FileId::new("db/f"),
                    version,
                },
            )
            .unwrap();
        let (bytes, _) = ticket.wait().unwrap().into_file().unwrap();
        assert_eq!(bytes, payload);
        let snap = fe.telemetry_snapshot();
        assert_eq!(snap.counter("frontend.admitted"), 2);
        assert_eq!(snap.counter("frontend.completed"), 2);
        assert_eq!(snap.counter("frontend.shed"), 0);
    }

    #[test]
    fn invalid_tenant_is_rejected_before_admission() {
        let fe = frontend();
        let err = fe.submit("../escape", backup(1, 64)).unwrap_err();
        assert!(!matches!(err, SlimError::Overloaded(_)), "got {err:?}");
        assert_eq!(fe.telemetry_snapshot().counter("frontend.admitted"), 0);
    }

    #[test]
    fn rate_limit_sheds_with_overloaded() {
        let clock = Arc::new(ManualClock::new());
        let fe = FrontendBuilder::new(manager())
            .with_config(FrontendConfig::small_for_tests())
            .with_clock(clock.clone())
            .with_tenant_policy("acme", TenantPolicy::default().with_rate(1.0, 1.0))
            .start()
            .unwrap();
        let first = fe.submit("acme", backup(1, 64)).unwrap();
        first.wait().unwrap().into_backup().unwrap();
        // Bucket empty, clock frozen: the second submit is refused.
        match fe.submit("acme", backup(2, 64)) {
            Err(SlimError::Overloaded(msg)) => assert!(msg.contains("rate limit"), "{msg}"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // A second's worth of refill readmits.
        clock.advance(Duration::from_secs(1));
        fe.submit("acme", backup(3, 64))
            .unwrap()
            .wait()
            .unwrap()
            .into_backup()
            .unwrap();
        let snap = fe.telemetry_snapshot();
        assert_eq!(snap.counter("frontend.shed"), 1);
        assert_eq!(snap.counter("frontend.shed.rate_limit"), 1);
    }

    #[test]
    fn queue_deadline_sheds_instead_of_executing_late() {
        // A frozen manual clock makes a zero deadline expire at admission:
        // whichever dispatcher (or explicit sweep) reaches the request
        // first must shed it — it can never execute.
        let clock = Arc::new(ManualClock::new());
        let fe = FrontendBuilder::new(manager())
            .with_config(FrontendConfig::small_for_tests())
            .with_clock(clock)
            .start()
            .unwrap();
        let doomed = fe
            .submit_with_deadline("acme", backup(2, 64), Some(Duration::ZERO))
            .unwrap();
        let swept = fe.shed_expired();
        match doomed.wait() {
            Err(SlimError::Overloaded(msg)) => {
                assert!(msg.contains("deadline"), "{msg}")
            }
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert!(swept <= 1, "shed exactly once, by sweep or dispatch");
        let snap = fe.telemetry_snapshot();
        assert_eq!(snap.counter("frontend.shed.deadline"), 1);
        assert_eq!(snap.counter("frontend.timeout"), 1);
        assert_eq!(snap.counter("frontend.completed"), 0);
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_admitted_work() {
        let fe = frontend();
        let admitted = fe.submit("acme", backup(1, 4096)).unwrap();
        fe.drain();
        assert!(fe.is_draining());
        // Admitted before drain: completes.
        admitted.wait().unwrap().into_backup().unwrap();
        // Submitted after drain: refused.
        match fe.submit("acme", backup(2, 64)) {
            Err(SlimError::Overloaded(msg)) => assert!(msg.contains("draining"), "{msg}"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(fe.telemetry_snapshot().counter("frontend.shed.draining"), 1);
        fe.shutdown();
        fe.shutdown(); // idempotent
    }

    #[test]
    fn stats_reports_queue_state() {
        let fe = frontend();
        let t = fe.submit("acme", backup(1, 1024)).unwrap();
        t.wait().unwrap().into_backup().unwrap();
        let stats = fe.stats();
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.inflight, 0);
        assert!(!stats.draining);
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].tenant, "acme");
    }

    #[test]
    fn maintenance_runs_through_the_frontend() {
        let fe = frontend();
        let report = fe
            .submit("acme", backup(7, 2048))
            .unwrap()
            .wait()
            .unwrap()
            .into_backup()
            .unwrap();
        let _stats = fe
            .submit(
                "acme",
                Request::GNodeCycle {
                    version: report.version,
                },
            )
            .unwrap()
            .wait()
            .unwrap()
            .into_maintenance()
            .unwrap();
        // The maintenance request ran to completion through the same
        // queues as foreground work.
        let snap = fe.telemetry_snapshot();
        assert_eq!(snap.counter("frontend.completed"), 2);
        assert!(snap
            .histogram("frontend.latency_ns.maintenance")
            .is_some_and(|h| h.count == 1));
    }
}
