//! Virtual time for admission control.
//!
//! Token-bucket refills and request deadlines are measured against a
//! [`Clock`] rather than [`std::time::Instant`] directly, so tests can
//! drive rate limiting and deadline expiry deterministically with a
//! [`ManualClock`] while production uses the monotonic [`SystemClock`].
//! Latency *histograms* always use real wall-clock time — they describe
//! what actually happened, not what the admission plane believed.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A monotonic time source: `now` is the elapsed time since an arbitrary
/// fixed origin. Only differences between readings are meaningful.
pub trait Clock: Send + Sync {
    /// Monotonic elapsed time since this clock's origin.
    fn now(&self) -> Duration;
}

/// Real monotonic time, anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] (or [`ManualClock::set`]) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock frozen at its origin.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Move time forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.now.lock() += by;
    }

    /// Jump to an absolute reading (must not move backwards in real use;
    /// the clock does not enforce it so tests can model clock bugs).
    pub fn set(&self, to: Duration) {
        *self.now.lock() = to;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(3));
        assert_eq!(c.now(), Duration::from_secs(3));
        c.set(Duration::from_secs(10));
        assert_eq!(c.now(), Duration::from_secs(10));
    }
}
