//! # slim-frontend — the multi-tenant request plane
//!
//! SLIMSTORE's service model (paper §III-B) runs one logical deployment
//! per user over a shared OSS bucket. The crates below this one implement
//! that deployment — chunking L-nodes, the offline G-node, the container
//! store — but none of them decides *whose* request runs *when*, or what
//! happens when more work arrives than the deployment can absorb. That
//! admission-and-scheduling decision is this crate.
//!
//! A [`Frontend`] sits in front of a [`slimstore::TenantStoreManager`]
//! and owns the request lifecycle:
//!
//! 1. **Admission** — [`Frontend::submit`] checks, synchronously and per
//!    tenant: the drain state, a token-bucket rate limit, and a bounded
//!    per-class queue. Refusals return
//!    [`slim_types::SlimError::Overloaded`] — a retryable error, so
//!    callers back off instead of queueing unboundedly inside the system.
//! 2. **Scheduling** — admitted requests wait in per-tenant queues split
//!    by [`Priority`] class. Dispatcher workers drain them with strict
//!    priority across classes (restore > backup > G-node maintenance) and
//!    weighted deficit round-robin across tenants within a class, so one
//!    tenant's backup flood cannot starve another tenant's restores, and
//!    offline dedup never runs ahead of foreground traffic.
//! 3. **Execution** — the winning request runs against its tenant's
//!    [`slimstore::SlimStore`], byte-identically to a direct call; the
//!    caller's [`Ticket`] resolves with the same result type.
//! 4. **Shedding** — a request whose deadline expires while queued is
//!    completed with `Overloaded` instead of executing late; overload is
//!    surfaced at the edges, never hidden in the middle.
//!
//! Rate limits and deadlines run on a virtual [`Clock`] so tests drive
//! them deterministically; latency histograms always use wall time.
//! Everything the frontend does is observable through its
//! [`slim_telemetry::Registry`]: `frontend.{admitted,shed,timeout,
//! completed,failed}` counters (with per-reason `shed.*` splits),
//! queue-depth and in-flight gauges (global, per class, per tenant), and
//! per-class/per-tenant latency and queue-wait histograms.
//!
//! ```
//! use slim_frontend::{FrontendBuilder, FrontendConfig, Request};
//! use slim_oss::rocks::RocksConfig;
//! use slim_oss::NetworkModel;
//! use slim_types::{FileId, SlimConfig};
//! use slimstore::TenantStoreManager;
//! use std::sync::Arc;
//!
//! let manager = Arc::new(
//!     TenantStoreManager::in_memory(NetworkModel::instant())
//!         .with_config(SlimConfig::small_for_tests())
//!         .with_rocks_config(RocksConfig::small_for_tests()),
//! );
//! let frontend = FrontendBuilder::new(manager)
//!     .with_config(FrontendConfig::small_for_tests())
//!     .start()
//!     .unwrap();
//! let ticket = frontend
//!     .submit(
//!         "acme",
//!         Request::Backup {
//!             files: vec![(FileId::new("db/users"), b"rows".repeat(900))],
//!             jobs: 1,
//!         },
//!     )
//!     .unwrap();
//! let report = ticket.wait().unwrap().into_backup().unwrap();
//! assert_eq!(report.files, 1);
//! frontend.shutdown();
//! ```

mod clock;
mod frontend;
mod policy;
mod request;
mod scheduler;

pub use clock::{Clock, ManualClock, SystemClock};
pub use frontend::{Frontend, FrontendBuilder, FrontendStats, TenantQueueStats};
pub use policy::{FrontendConfig, Priority, TenantPolicy, CLASSES};
pub use request::{Request, Response, Ticket};
