//! Admission and scheduling policy: priority classes, per-tenant QoS
//! knobs, and the token bucket that enforces request-rate limits.

use std::time::Duration;

use slim_oss::NetworkModel;
use slim_types::{Result, SlimError};

/// Scheduling class of a request. Lower value = served first.
///
/// Restores outrank backups (a restore is a user waiting for their data;
/// a backup is a window that merely must finish), and both outrank G-node
/// maintenance: offline dedup is free to starve under foreground pressure
/// — the reverse must never happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Foreground restore traffic.
    Restore,
    /// Foreground backup traffic.
    Backup,
    /// Offline G-node maintenance (cycles, retention sweeps).
    Maintenance,
}

/// Number of priority classes.
pub const CLASSES: usize = 3;

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; CLASSES] =
        [Priority::Restore, Priority::Backup, Priority::Maintenance];

    /// Dense index for per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            Priority::Restore => 0,
            Priority::Backup => 1,
            Priority::Maintenance => 2,
        }
    }

    /// Canonical metric-name label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Restore => "restore",
            Priority::Backup => "backup",
            Priority::Maintenance => "maintenance",
        }
    }
}

/// Per-tenant QoS contract.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Deficit-round-robin weight: a tenant with weight 2 receives twice
    /// the scheduling quantum of a weight-1 tenant per round.
    pub weight: u32,
    /// Sustained admission rate, requests per second
    /// ([`f64::INFINITY`] = unlimited).
    pub rate_per_sec: f64,
    /// Token-bucket capacity: how many requests may arrive in a burst
    /// before the rate limit bites.
    pub burst: f64,
    /// In-flight byte budget: dispatch holds a tenant's queued work back
    /// while the bytes of its executing requests would exceed this.
    pub max_inflight_bytes: u64,
    /// Bounded admission queue depth, per priority class. Submissions
    /// beyond it are shed with [`SlimError::Overloaded`].
    pub queue_capacity: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            rate_per_sec: f64::INFINITY,
            burst: 64.0,
            max_inflight_bytes: u64::MAX,
            queue_capacity: 1024,
        }
    }
}

impl TenantPolicy {
    /// Validate the contract.
    pub fn validate(&self) -> Result<()> {
        if self.weight == 0 {
            return Err(SlimError::InvalidConfig(
                "tenant weight must be >= 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(SlimError::InvalidConfig(
                "tenant queue_capacity must be >= 1".into(),
            ));
        }
        if self.rate_per_sec.is_nan() || self.rate_per_sec <= 0.0 {
            return Err(SlimError::InvalidConfig(
                "tenant rate_per_sec must be > 0".into(),
            ));
        }
        if self.rate_per_sec.is_finite() && self.burst < 1.0 {
            return Err(SlimError::InvalidConfig(
                "tenant burst must be >= 1 when rate limited".into(),
            ));
        }
        Ok(())
    }

    /// Builder-style weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Builder-style rate limit.
    pub fn with_rate(mut self, rate_per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = rate_per_sec;
        self.burst = burst;
        self
    }

    /// Builder-style in-flight byte budget.
    pub fn with_max_inflight_bytes(mut self, bytes: u64) -> Self {
        self.max_inflight_bytes = bytes;
        self
    }

    /// Builder-style queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// Frontend-wide configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Dispatcher worker threads executing admitted requests.
    pub workers: usize,
    /// Deficit-round-robin quantum, in cost units (bytes). Each scheduling
    /// visit grants a tenant `quantum * weight` deficit; a request runs
    /// once the tenant's accumulated deficit covers its cost.
    pub drr_quantum: u64,
    /// Deadline applied to submissions that do not carry their own; `None`
    /// admits them without one.
    pub default_deadline: Option<Duration>,
    /// Policy applied to tenants without an explicit
    /// [`TenantPolicy`] override.
    pub default_policy: TenantPolicy,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: 4,
            drr_quantum: 256 * 1024,
            default_deadline: None,
            default_policy: TenantPolicy::default(),
        }
    }
}

impl FrontendConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(SlimError::InvalidConfig(
                "frontend workers must be >= 1".into(),
            ));
        }
        if self.drr_quantum == 0 {
            return Err(SlimError::InvalidConfig(
                "frontend drr_quantum must be >= 1".into(),
            ));
        }
        self.default_policy.validate()
    }

    /// Small deterministic settings for unit tests.
    pub fn small_for_tests() -> Self {
        FrontendConfig {
            workers: 2,
            drr_quantum: 64 * 1024,
            default_deadline: None,
            default_policy: TenantPolicy {
                queue_capacity: 64,
                ..TenantPolicy::default()
            },
        }
    }

    /// Couple the dispatcher pool to the OSS channel pool: more dispatchers
    /// than the simulated network has channels cannot increase throughput —
    /// the surplus would only queue inside the OSS semaphore where the
    /// frontend can neither observe nor shed it. Keeping the queueing in
    /// the admission plane is the point of having one.
    pub fn coupled_to_network(mut self, network: &NetworkModel) -> Self {
        self.workers = self.workers.min(network.channels.max(1));
        self
    }

    /// Couple the dispatcher pool to the per-job backup pipeline: a
    /// pipelined job occupies `1 + pipeline_threads` OS threads and holds up
    /// to three sealed containers in flight instead of one, so with
    /// pipelining enabled the dispatcher admits proportionally fewer
    /// concurrent jobs. This keeps the total thread count — and the working
    /// memory the per-tenant `max_inflight_bytes` admission budgets are
    /// sized against — where a sequential deployment put it.
    pub fn coupled_to_pipeline(mut self, pipeline_threads: usize) -> Self {
        if pipeline_threads >= 2 {
            self.workers = (self.workers / (1 + pipeline_threads)).max(1);
        }
        self
    }

    /// Builder-style worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style DRR quantum.
    pub fn with_drr_quantum(mut self, quantum: u64) -> Self {
        self.drr_quantum = quantum;
        self
    }

    /// Builder-style default deadline.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Builder-style default tenant policy.
    pub fn with_default_policy(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = policy;
        self
    }
}

/// A token bucket over virtual time: `rate_per_sec` tokens drip in, at
/// most `burst` accumulate, one request costs one token.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: Duration,
}

impl TokenBucket {
    pub fn new(policy: &TenantPolicy, now: Duration) -> Self {
        TokenBucket {
            rate_per_sec: policy.rate_per_sec,
            burst: policy.burst,
            tokens: policy.burst,
            last_refill: now,
        }
    }

    /// Take one token if available; refills lazily from elapsed time.
    pub fn try_take(&mut self, now: Duration) -> bool {
        if self.rate_per_sec.is_infinite() {
            return true;
        }
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_and_labels() {
        assert!(Priority::Restore < Priority::Backup);
        assert!(Priority::Backup < Priority::Maintenance);
        assert_eq!(
            Priority::ALL.map(|p| p.label()),
            ["restore", "backup", "maintenance"]
        );
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.idx(), i);
        }
    }

    #[test]
    fn policy_validation() {
        assert!(TenantPolicy::default().validate().is_ok());
        assert!(TenantPolicy::default().with_weight(0).validate().is_err());
        assert!(TenantPolicy::default()
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(TenantPolicy::default()
            .with_rate(0.0, 4.0)
            .validate()
            .is_err());
        assert!(TenantPolicy::default()
            .with_rate(5.0, 0.5)
            .validate()
            .is_err());
        assert!(TenantPolicy::default()
            .with_rate(5.0, 5.0)
            .validate()
            .is_ok());

        assert!(FrontendConfig::default().validate().is_ok());
        assert!(FrontendConfig::default()
            .with_workers(0)
            .validate()
            .is_err());
        assert!(FrontendConfig::default()
            .with_drr_quantum(0)
            .validate()
            .is_err());
    }

    #[test]
    fn coupling_caps_workers_at_channel_count() {
        let net = NetworkModel {
            request_latency: Duration::ZERO,
            channel_bandwidth: u64::MAX,
            channels: 2,
        };
        let cfg = FrontendConfig::default()
            .with_workers(16)
            .coupled_to_network(&net);
        assert_eq!(cfg.workers, 2);
        // An unlimited-channel model leaves the pool alone.
        let cfg = FrontendConfig::default()
            .with_workers(16)
            .coupled_to_network(&NetworkModel::instant());
        assert_eq!(cfg.workers, 16);
    }

    #[test]
    fn pipeline_coupling_shrinks_the_dispatcher_pool() {
        // 16 dispatcher threads over 3-thread pipelined jobs = 4 concurrent
        // jobs x 4 threads each: the same 16 OS threads as before.
        let cfg = FrontendConfig::default()
            .with_workers(16)
            .coupled_to_pipeline(3);
        assert_eq!(cfg.workers, 4);
        // Sequential pipelines (0 or 1 threads) leave the pool alone.
        for threads in [0usize, 1] {
            let cfg = FrontendConfig::default()
                .with_workers(16)
                .coupled_to_pipeline(threads);
            assert_eq!(cfg.workers, 16);
        }
        // The pool never collapses below one dispatcher.
        let cfg = FrontendConfig::default()
            .with_workers(2)
            .coupled_to_pipeline(7);
        assert_eq!(cfg.workers, 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let policy = TenantPolicy::default().with_rate(2.0, 2.0);
        let mut bucket = TokenBucket::new(&policy, Duration::ZERO);
        // Burst of 2, then dry.
        assert!(bucket.try_take(Duration::ZERO));
        assert!(bucket.try_take(Duration::ZERO));
        assert!(!bucket.try_take(Duration::ZERO));
        // 0.5s at 2/s refills one token.
        assert!(bucket.try_take(Duration::from_millis(500)));
        assert!(!bucket.try_take(Duration::from_millis(500)));
        // Refill caps at burst.
        assert!(bucket.try_take(Duration::from_secs(100)));
        assert!(bucket.try_take(Duration::from_secs(100)));
        assert!(!bucket.try_take(Duration::from_secs(100)));
    }

    #[test]
    fn unlimited_bucket_never_blocks() {
        let mut bucket = TokenBucket::new(&TenantPolicy::default(), Duration::ZERO);
        for _ in 0..10_000 {
            assert!(bucket.try_take(Duration::ZERO));
        }
    }
}
