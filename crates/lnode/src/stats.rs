//! Job statistics.
//!
//! Backup jobs time each pipeline phase separately — chunking,
//! fingerprinting, index querying, others — because that breakdown *is*
//! Fig 2 and Fig 5(d) of the paper. Restore jobs count containers read and
//! bytes pulled from OSS, which is the read-amplification series of Fig 8.
//!
//! Each stats struct can [`emit`](BackupStats::emit) itself into a
//! telemetry [`Scope`] (canonically `lnode.<id>`), folding the per-job
//! phase timings into the shared span histograms and the counters into the
//! shared registry — so the same breakdowns are available fleet-wide
//! without threading stats structs around.

use std::time::Duration;

use slim_telemetry::Scope;

/// Statistics of one backup (deduplication) job.
#[derive(Debug, Clone, Default)]
pub struct BackupStats {
    /// Logical bytes processed.
    pub logical_bytes: u64,
    /// Bytes of new (unique) chunk payload written to containers.
    pub stored_bytes: u64,
    /// Total chunk records emitted.
    pub chunks: u64,
    /// Records confirmed duplicate.
    pub duplicates: u64,
    /// Duplicates confirmed by the skip-chunking fast path.
    pub skip_hits: u64,
    /// Skip attempts that failed verification (fell back to CDC).
    pub skip_misses: u64,
    /// Superchunks matched whole via Algorithm 1.
    pub super_hits: u64,
    /// Superchunk probes that failed (fingerprint mismatch).
    pub super_misses: u64,
    /// New superchunks created by history-aware chunk merging.
    pub superchunks_created: u64,
    /// Chunks absorbed into created superchunks.
    pub chunks_merged: u64,
    /// Segment recipes prefetched into the dedup cache.
    pub segments_prefetched: u64,

    /// Chunks consumed pre-fingerprinted from the parallel feed (pipelined
    /// backups only; zero on the sequential path).
    pub pipeline_chunks_fed: u64,
    /// Plain-CDC cuts computed inline because the feed was exhausted or
    /// misaligned (expected: zero — a canary, not a cost).
    pub pipeline_fallbacks: u64,
    /// Containers committed by the pipeline's async uploader stage.
    pub pipeline_async_uploads: u64,

    /// Chunks pushed through compressing container builders (zero when
    /// `SlimConfig::compression` is off).
    pub compress_chunks: u64,
    /// Raw payload bytes offered to the compressor. Note `stored_bytes`
    /// above stays in raw bytes — it feeds [`BackupStats::dedup_ratio`],
    /// which must be invariant under the compression knob.
    pub compress_raw_bytes: u64,
    /// Bytes actually written into container data objects (compressed
    /// where profitable, raw otherwise).
    pub compress_stored_bytes: u64,
    /// Chunks stored raw because compression was not strictly smaller.
    pub compress_incompressible: u64,

    /// Wall time of the whole job.
    pub wall_time: Duration,
    /// CPU time spent scanning for cut points (CDC).
    pub chunking_time: Duration,
    /// CPU time spent computing SHA-1 fingerprints.
    pub fingerprint_time: Duration,
    /// Time spent querying indexes and the dedup cache (including segment
    /// recipe prefetch decode).
    pub index_time: Duration,
    /// Time this job spent inside its own OSS calls (recipe-index fetch,
    /// segment-recipe prefetches, container/recipe uploads) — measured
    /// per call, so concurrent jobs do not pollute each other's numbers.
    pub network_time: Duration,
    /// Time the pipelined dedup stage spent blocked waiting on the chunk
    /// feed (zero on the sequential path). High stall with low network time
    /// means the job is CPU-bound and more fingerprint workers would help.
    pub pipeline_stall_time: Duration,
    /// CPU time spent compressing unique chunk payloads (zero when the
    /// compression knob is off).
    pub compress_time: Duration,
}

impl BackupStats {
    /// Deduplication ratio of this job (§VII-B definition).
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        // Saturating: aggressive merge settings can legitimately store more
        // than the logical size in one version; the ratio floors at 0.
        self.logical_bytes.saturating_sub(self.stored_bytes) as f64 / self.logical_bytes as f64
    }

    /// Throughput in MB/s over the wall time.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.logical_bytes as f64 / (1024.0 * 1024.0) / secs
    }

    /// CPU time not attributed to a named phase.
    pub fn other_time(&self) -> Duration {
        self.wall_time
            .saturating_sub(self.chunking_time)
            .saturating_sub(self.fingerprint_time)
            .saturating_sub(self.index_time)
            .saturating_sub(self.network_time)
            .saturating_sub(self.compress_time)
    }

    /// Fold a sealed builder's compression accounting into this job.
    pub fn add_compression(&mut self, c: &slim_types::CompressionStats) {
        self.compress_chunks += c.chunks;
        self.compress_raw_bytes += c.raw_bytes;
        self.compress_stored_bytes += c.stored_bytes;
        self.compress_incompressible += c.incompressible;
    }

    /// Fold this job into a telemetry scope: one observation per phase
    /// span (`<scope>.span.{backup,chunking,fingerprinting,index,
    /// container_io,other}`) and the job counters added to the scope's
    /// totals.
    pub fn emit(&self, scope: &Scope) {
        scope.counter("backup_jobs").inc();
        scope.counter("logical_bytes").add(self.logical_bytes);
        scope.counter("stored_bytes").add(self.stored_bytes);
        scope.counter("chunks").add(self.chunks);
        scope.counter("duplicates").add(self.duplicates);
        scope.counter("skip_hits").add(self.skip_hits);
        scope.counter("skip_misses").add(self.skip_misses);
        scope.counter("super_hits").add(self.super_hits);
        scope.counter("super_misses").add(self.super_misses);
        scope
            .counter("superchunks_created")
            .add(self.superchunks_created);
        scope.counter("chunks_merged").add(self.chunks_merged);
        scope
            .counter("segments_prefetched")
            .add(self.segments_prefetched);
        scope
            .counter("pipeline_chunks_fed")
            .add(self.pipeline_chunks_fed);
        scope
            .counter("pipeline_fallbacks")
            .add(self.pipeline_fallbacks);
        scope
            .counter("pipeline_async_uploads")
            .add(self.pipeline_async_uploads);
        scope.counter("compress.chunks").add(self.compress_chunks);
        scope
            .counter("compress.raw_bytes")
            .add(self.compress_raw_bytes);
        scope
            .counter("compress.stored_bytes")
            .add(self.compress_stored_bytes);
        scope
            .counter("compress.incompressible")
            .add(self.compress_incompressible);
        scope.record_span("backup", self.wall_time);
        scope.record_span("chunking", self.chunking_time);
        scope.record_span("fingerprinting", self.fingerprint_time);
        scope.record_span("index", self.index_time);
        scope.record_span("container_io", self.network_time);
        scope.record_span("pipeline_stall", self.pipeline_stall_time);
        scope.record_span("compress", self.compress_time);
        scope.record_span("other", self.other_time());
    }

    /// Merge another job's stats into this one (multi-file versions).
    pub fn merge(&mut self, other: &BackupStats) {
        self.logical_bytes += other.logical_bytes;
        self.stored_bytes += other.stored_bytes;
        self.chunks += other.chunks;
        self.duplicates += other.duplicates;
        self.skip_hits += other.skip_hits;
        self.skip_misses += other.skip_misses;
        self.super_hits += other.super_hits;
        self.super_misses += other.super_misses;
        self.superchunks_created += other.superchunks_created;
        self.chunks_merged += other.chunks_merged;
        self.segments_prefetched += other.segments_prefetched;
        self.pipeline_chunks_fed += other.pipeline_chunks_fed;
        self.pipeline_fallbacks += other.pipeline_fallbacks;
        self.pipeline_async_uploads += other.pipeline_async_uploads;
        self.compress_chunks += other.compress_chunks;
        self.compress_raw_bytes += other.compress_raw_bytes;
        self.compress_stored_bytes += other.compress_stored_bytes;
        self.compress_incompressible += other.compress_incompressible;
        self.wall_time += other.wall_time;
        self.chunking_time += other.chunking_time;
        self.fingerprint_time += other.fingerprint_time;
        self.index_time += other.index_time;
        self.network_time += other.network_time;
        self.pipeline_stall_time += other.pipeline_stall_time;
        self.compress_time += other.compress_time;
    }
}

/// Statistics of one restore job.
#[derive(Debug, Clone, Default)]
pub struct RestoreStats {
    /// Bytes of restored output.
    pub restored_bytes: u64,
    /// Container data objects read from OSS.
    pub containers_read: u64,
    /// Bytes read from OSS (data + metadata).
    pub oss_bytes_read: u64,
    /// Chunk lookups served from the restore cache.
    pub cache_hits: u64,
    /// Chunk lookups that required a container read.
    pub cache_misses: u64,
    /// Chunks relocated by reverse dedup that needed a global-index lookup.
    pub relocation_lookups: u64,
    /// Chunks served from the prefetch buffer without blocking.
    pub prefetch_hits: u64,
    /// Wall time of the whole job.
    pub wall_time: Duration,
}

impl RestoreStats {
    /// Restore throughput in MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.restored_bytes as f64 / (1024.0 * 1024.0) / secs
    }

    /// Containers read per 100 MB restored — the Fig 8 read-amplification
    /// metric.
    pub fn containers_per_100mb(&self) -> f64 {
        if self.restored_bytes == 0 {
            return 0.0;
        }
        self.containers_read as f64 * (100.0 * 1024.0 * 1024.0) / self.restored_bytes as f64
    }

    /// Fold this job into a telemetry scope (see [`BackupStats::emit`]).
    pub fn emit(&self, scope: &Scope) {
        scope.counter("restore_jobs").inc();
        scope.counter("restored_bytes").add(self.restored_bytes);
        scope.counter("containers_read").add(self.containers_read);
        scope.counter("oss_bytes_read").add(self.oss_bytes_read);
        scope.counter("cache_hits").add(self.cache_hits);
        scope.counter("cache_misses").add(self.cache_misses);
        scope
            .counter("relocation_lookups")
            .add(self.relocation_lookups);
        scope.counter("prefetch_hits").add(self.prefetch_hits);
        scope.record_span("restore", self.wall_time);
    }

    /// Merge another job's stats into this one.
    pub fn merge(&mut self, other: &RestoreStats) {
        self.restored_bytes += other.restored_bytes;
        self.containers_read += other.containers_read;
        self.oss_bytes_read += other.oss_bytes_read;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.relocation_lookups += other.relocation_lookups;
        self.prefetch_hits += other.prefetch_hits;
        self.wall_time += other.wall_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_ratio_and_throughput() {
        let stats = BackupStats {
            logical_bytes: 1000,
            stored_bytes: 160,
            wall_time: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((stats.dedup_ratio() - 0.84).abs() < 1e-9);
        assert!(stats.throughput_mbps() > 0.0);
        assert_eq!(BackupStats::default().dedup_ratio(), 0.0);
        assert_eq!(BackupStats::default().throughput_mbps(), 0.0);
    }

    #[test]
    fn other_time_never_negative() {
        let stats = BackupStats {
            wall_time: Duration::from_secs(1),
            chunking_time: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(stats.other_time(), Duration::ZERO);
    }

    #[test]
    fn containers_per_100mb() {
        let stats = RestoreStats {
            restored_bytes: 200 * 1024 * 1024,
            containers_read: 50,
            ..Default::default()
        };
        assert!((stats.containers_per_100mb() - 25.0).abs() < 1e-9);
        assert_eq!(RestoreStats::default().containers_per_100mb(), 0.0);
    }

    #[test]
    fn emit_folds_into_scope() {
        let registry = slim_telemetry::Registry::new();
        let scope = registry.scope("lnode").child("0");
        let stats = BackupStats {
            logical_bytes: 1000,
            stored_bytes: 160,
            chunks: 9,
            duplicates: 4,
            wall_time: Duration::from_micros(100),
            chunking_time: Duration::from_micros(40),
            ..Default::default()
        };
        stats.emit(&scope);
        stats.emit(&scope);
        let restore = RestoreStats {
            restored_bytes: 500,
            containers_read: 2,
            wall_time: Duration::from_micros(30),
            ..Default::default()
        };
        restore.emit(&scope);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lnode.0.backup_jobs"), 2);
        assert_eq!(snap.counter("lnode.0.logical_bytes"), 2000);
        assert_eq!(snap.counter("lnode.0.chunks"), 18);
        assert_eq!(snap.counter("lnode.0.restored_bytes"), 500);
        let chunking = snap.span("lnode.0", "chunking").unwrap();
        assert_eq!(chunking.count, 2);
        assert_eq!(chunking.sum, 80_000);
        assert_eq!(snap.span("lnode.0", "restore").unwrap().count, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BackupStats {
            chunks: 5,
            duplicates: 2,
            ..Default::default()
        };
        let b = BackupStats {
            chunks: 7,
            duplicates: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.chunks, 12);
        assert_eq!(a.duplicates, 5);
        let mut ra = RestoreStats {
            containers_read: 1,
            ..Default::default()
        };
        ra.merge(&RestoreStats {
            containers_read: 2,
            ..Default::default()
        });
        assert_eq!(ra.containers_read, 3);
    }
}
