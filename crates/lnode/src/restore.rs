//! The online restore pipeline (§V-A).
//!
//! Replays a recipe into the original file bytes using the full-vision cache
//! and LAW-based prefetching. Containers are read at most once per job (given
//! adequate cache capacity); chunks relocated by the G-node's reverse
//! deduplication are chased through the global index — the extra lookup the
//! paper accepts for old versions (§VI-A).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use slim_index::GlobalIndex;
use slim_types::{
    ChunkRecord, FileId, Fingerprint, Recipe, Result, SlimConfig, SlimError, VersionId,
};

use crate::fv_cache::FullVisionCache;
use crate::prefetch::Prefetcher;
use crate::stats::RestoreStats;
use crate::storage::StorageLayer;

/// Tunables of one restore job.
#[derive(Debug, Clone)]
pub struct RestoreOptions {
    /// Capacity of the in-memory cache tier.
    pub cache_mem: usize,
    /// Capacity of the on-disk cache tier.
    pub cache_disk: usize,
    /// Look-ahead window length in chunk records.
    pub law_window: usize,
    /// Prefetch threads (0 disables prefetching).
    pub prefetch_threads: usize,
}

impl RestoreOptions {
    /// Options from the system config.
    pub fn from_config(cfg: &SlimConfig) -> Self {
        RestoreOptions {
            cache_mem: cfg.restore_cache_mem,
            cache_disk: cfg.restore_cache_disk,
            law_window: cfg.law_window,
            prefetch_threads: cfg.prefetch_threads,
        }
    }

    /// Disable prefetching (Fig 8(a–c) measure the caches alone).
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_threads = 0;
        self
    }
}

/// Upper bound on the output preallocation of an in-memory restore. The
/// recipe's `logical_bytes` is untrusted input here: a corrupt or hostile
/// recipe must not make us reserve unbounded memory (or truncate the
/// reservation through a `u64 as usize` cast on 32-bit targets) before a
/// single chunk has been validated. The `Vec` still grows to the true size
/// as assembled bytes arrive; this only caps the up-front hint.
const MAX_PREALLOC_BYTES: usize = 256 * 1024 * 1024;

/// Checked, clamped capacity hint for the restore output buffer.
fn prealloc_hint(logical_bytes: u64) -> usize {
    usize::try_from(logical_bytes)
        .unwrap_or(usize::MAX)
        .min(MAX_PREALLOC_BYTES)
}

/// The restore engine of an L-node.
pub struct RestoreEngine<'a> {
    storage: &'a StorageLayer,
    /// Needed to chase chunks relocated by reverse deduplication; restores
    /// of never-reverse-deduped versions do not touch it.
    global: Option<&'a GlobalIndex>,
}

impl<'a> RestoreEngine<'a> {
    /// Engine over the storage layer, optionally with the global index for
    /// relocated chunks.
    pub fn new(storage: &'a StorageLayer, global: Option<&'a GlobalIndex>) -> Self {
        RestoreEngine { storage, global }
    }

    /// Restore `file` at `version`, returning its bytes and job statistics.
    pub fn restore_file(
        &self,
        file: &FileId,
        version: VersionId,
        options: &RestoreOptions,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let start = Instant::now();
        let recipe = self.storage.get_recipe(file, version)?;
        let (out, mut stats) = self.restore_recipe(&recipe, options)?;
        stats.wall_time = start.elapsed();
        Ok((out, stats))
    }

    /// Restore an already-loaded recipe into memory.
    pub fn restore_recipe(
        &self,
        recipe: &Recipe,
        options: &RestoreOptions,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let mut out = Vec::with_capacity(prealloc_hint(recipe.logical_bytes()));
        let stats = self.restore_recipe_to(recipe, options, &mut out)?;
        Ok((out, stats))
    }

    /// Restore `file` at `version` into a streaming sink (constant memory in
    /// the output: bytes leave as they are assembled — the restore cache is
    /// the only buffer).
    pub fn restore_file_to(
        &self,
        file: &FileId,
        version: VersionId,
        options: &RestoreOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<RestoreStats> {
        let start = Instant::now();
        let recipe = self.storage.get_recipe(file, version)?;
        let mut stats = self.restore_recipe_to(&recipe, options, sink)?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }

    /// Core restore loop, writing into any sink.
    pub fn restore_recipe_to(
        &self,
        recipe: &Recipe,
        options: &RestoreOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<RestoreStats> {
        let records: Vec<ChunkRecord> = recipe.records().copied().collect();
        let mut stats = RestoreStats::default();
        if records.is_empty() {
            return Ok(stats);
        }

        let mut cache = FullVisionCache::new(options.cache_mem, options.cache_disk, recipe);
        let mut prefetcher = Prefetcher::new(self.storage.clone(), options.prefetch_threads);

        // Containers discovered to have lost chunks to reverse dedup / SCC:
        // records pointing at them resolve through the global index *before*
        // prefetch scheduling, so old-version restores keep the benefit of
        // LAW prefetching (§VI-A's extra lookup, paid off the critical path).
        let mut stale: HashSet<slim_types::ContainerId> = HashSet::new();

        // Look-ahead window: multiset of upcoming fingerprints.
        let law = options.law_window.max(1);
        let mut law_counts: HashMap<Fingerprint, u32> = HashMap::new();
        for rec in records.iter().take(law) {
            *law_counts.entry(rec.fp).or_default() += 1;
            self.schedule(rec, &stale, &prefetcher);
        }

        for i in 0..records.len() {
            let rec = records[i];
            let chunk = match cache.get(&rec.fp) {
                Some(bytes) => {
                    stats.cache_hits += 1;
                    bytes
                }
                None => {
                    stats.cache_misses += 1;
                    self.fault_in(&rec, &mut cache, &prefetcher, &mut stale, &mut stats)?
                }
            };
            debug_assert_eq!(chunk.len(), rec.size as usize);
            sink.write_all(&chunk)?;
            stats.restored_bytes += chunk.len() as u64;
            cache.consume(&rec.fp);

            // Slide the LAW forward.
            if let Some(cnt) = law_counts.get_mut(&rec.fp) {
                *cnt -= 1;
                if *cnt == 0 {
                    law_counts.remove(&rec.fp);
                }
            }
            if let Some(next) = records.get(i + law) {
                *law_counts.entry(next.fp).or_default() += 1;
                self.schedule(next, &stale, &prefetcher);
            }
            cache.enforce(|fp| law_counts.contains_key(fp));
        }

        // Quiesce the workers first: a container scheduled by the LAW but
        // never taken may still be mid-read, and the read-amplification
        // metrics must include it deterministically.
        prefetcher.quiesce();
        stats.containers_read = prefetcher.containers_read();
        stats.oss_bytes_read = prefetcher.bytes_read();
        Ok(stats)
    }

    /// Schedule the container a record will need, resolving through the
    /// global index when the stated container is known to be stale.
    fn schedule(
        &self,
        rec: &ChunkRecord,
        stale: &HashSet<slim_types::ContainerId>,
        prefetcher: &Prefetcher,
    ) {
        if stale.contains(&rec.container_id) {
            if let Some(global) = self.global {
                if let Ok(Some(current)) = global.get(&rec.fp) {
                    prefetcher.schedule(current);
                    return;
                }
            }
        }
        prefetcher.schedule(rec.container_id);
    }

    /// Read the container holding `rec`, admit its useful chunks, and return
    /// the target chunk — chasing a relocation through the global index if
    /// the recorded container no longer holds a live copy.
    fn fault_in(
        &self,
        rec: &ChunkRecord,
        cache: &mut FullVisionCache,
        prefetcher: &Prefetcher,
        stale: &mut HashSet<slim_types::ContainerId>,
        stats: &mut RestoreStats,
    ) -> Result<bytes::Bytes> {
        if !stale.contains(&rec.container_id) {
            if let Some(bytes) =
                self.try_container(rec, rec.container_id, cache, prefetcher, stats)?
            {
                return Ok(bytes);
            }
            stale.insert(rec.container_id);
        }
        // Relocated (reverse dedup / SCC / rewrite): ask the global index.
        stats.relocation_lookups += 1;
        let Some(global) = self.global else {
            return Err(SlimError::ChunkUnresolvable {
                fp: rec.fp.to_hex(),
                detail: format!(
                    "not live in {} and no global index available",
                    rec.container_id
                ),
            });
        };
        let Some(current) = global.get(&rec.fp)? else {
            return Err(SlimError::ChunkUnresolvable {
                fp: rec.fp.to_hex(),
                detail: "missing from global index".into(),
            });
        };
        match self.try_container(rec, current, cache, prefetcher, stats)? {
            Some(bytes) => Ok(bytes),
            None => Err(SlimError::ChunkUnresolvable {
                fp: rec.fp.to_hex(),
                detail: format!("global index points at {current} but chunk is not live there"),
            }),
        }
    }

    /// Fetch `container` and admit its live useful chunks; returns the
    /// target chunk if it is live there.
    fn try_container(
        &self,
        rec: &ChunkRecord,
        container: slim_types::ContainerId,
        cache: &mut FullVisionCache,
        prefetcher: &Prefetcher,
        stats: &mut RestoreStats,
    ) -> Result<Option<bytes::Bytes>> {
        let ((data, meta), from_prefetch) = match prefetcher.take(container) {
            Ok(v) => v,
            Err(SlimError::ContainerMissing(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        if from_prefetch {
            stats.prefetch_hits += 1;
        }
        let mut target = None;
        for entry in &meta.entries {
            if entry.deleted {
                continue;
            }
            // Checked extraction (and decompression): a poisoned entry —
            // bit-flipped meta whose CRC collided, say — surfaces as
            // `Corrupt`, never as a slice panic.
            let payload = entry.payload_from(&data)?;
            if entry.fp == rec.fp {
                target = Some(payload.clone());
            }
            cache.admit(entry.fp, payload);
        }
        Ok(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::BackupPipeline;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_index::SimilarFileIndex;
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    struct Env {
        storage: StorageLayer,
        similar: SimilarFileIndex,
        cfg: SlimConfig,
    }

    fn setup() -> Env {
        Env {
            storage: StorageLayer::open(Arc::new(Oss::in_memory())),
            similar: SimilarFileIndex::new(),
            cfg: SlimConfig::small_for_tests(),
        }
    }

    impl Env {
        fn backup(&self, file: &FileId, version: u64, bytes: &[u8]) {
            let chunker = FastCdcChunker::new(ChunkSpec::from_config(&self.cfg));
            BackupPipeline::new(&self.storage, &self.similar, &chunker, &self.cfg)
                .backup_file(file, VersionId(version), bytes)
                .unwrap();
        }

        fn restore(
            &self,
            file: &FileId,
            version: u64,
            opts: &RestoreOptions,
        ) -> (Vec<u8>, RestoreStats) {
            RestoreEngine::new(&self.storage, None)
                .restore_file(file, VersionId(version), opts)
                .unwrap()
        }
    }

    fn opts(cfg: &SlimConfig) -> RestoreOptions {
        RestoreOptions::from_config(cfg)
    }

    #[test]
    fn roundtrip_single_version() {
        let env = setup();
        let file = FileId::new("f");
        let input = data(1, 64_000);
        env.backup(&file, 0, &input);
        let (out, stats) = env.restore(&file, 0, &opts(&env.cfg));
        assert_eq!(out, input);
        assert!(stats.containers_read > 0);
        assert_eq!(stats.restored_bytes, input.len() as u64);
    }

    #[test]
    fn roundtrip_many_versions() {
        let env = setup();
        let file = FileId::new("f");
        let mut inputs = Vec::new();
        let mut cur = data(2, 48_000);
        for v in 0..6u64 {
            env.backup(&file, v, &cur);
            inputs.push(cur.clone());
            // mutate for next version
            let patch = data(100 + v, 700);
            let at = 5_000 + (v as usize * 6_000);
            cur[at..at + 700].copy_from_slice(&patch);
        }
        for (v, expected) in inputs.iter().enumerate() {
            let (out, _) = env.restore(&file, v as u64, &opts(&env.cfg));
            assert_eq!(&out, expected, "version {v}");
        }
    }

    #[test]
    fn containers_read_at_most_once_with_fv_cache() {
        let env = setup();
        let file = FileId::new("f");
        // Several versions so chunks scatter across containers.
        let mut cur = data(3, 64_000);
        for v in 0..5u64 {
            env.backup(&file, v, &cur);
            let patch = data(200 + v, 800);
            cur[(v as usize * 9_000)..(v as usize * 9_000) + 800].copy_from_slice(&patch);
        }
        let (out, stats) = env.restore(&file, 4, &opts(&env.cfg));
        assert!(!out.is_empty());
        let distinct: std::collections::HashSet<_> = env
            .storage
            .get_recipe(&file, VersionId(4))
            .unwrap()
            .records()
            .map(|r| r.container_id)
            .collect();
        assert!(
            stats.containers_read <= distinct.len() as u64,
            "read {} containers but recipe references only {} distinct",
            stats.containers_read,
            distinct.len()
        );
    }

    #[test]
    fn self_referencing_stream_restores_and_reads_once() {
        let env = setup();
        let file = FileId::new("f");
        let block = data(4, 16_000);
        let mut input = block.clone();
        input.extend_from_slice(&block);
        input.extend_from_slice(&block);
        env.backup(&file, 0, &input);
        let (out, stats) = env.restore(&file, 0, &opts(&env.cfg));
        assert_eq!(out, input);
        let distinct: std::collections::HashSet<_> = env
            .storage
            .get_recipe(&file, VersionId(0))
            .unwrap()
            .records()
            .map(|r| r.container_id)
            .collect();
        assert!(stats.containers_read <= distinct.len() as u64);
    }

    #[test]
    fn prefetching_produces_identical_bytes() {
        let env = setup();
        let file = FileId::new("f");
        let input = data(5, 80_000);
        env.backup(&file, 0, &input);
        let with = opts(&env.cfg);
        let without = opts(&env.cfg).without_prefetch();
        let (a, sa) = env.restore(&file, 0, &with);
        let (b, sb) = env.restore(&file, 0, &without);
        assert_eq!(a, b);
        assert_eq!(a, input);
        assert!(sa.prefetch_hits > 0, "prefetcher should serve containers");
        assert_eq!(sb.prefetch_hits, 0);
    }

    #[test]
    fn tiny_cache_still_correct() {
        let env = setup();
        let file = FileId::new("f");
        let input = data(6, 60_000);
        env.backup(&file, 0, &input);
        let mut o = opts(&env.cfg);
        o.cache_mem = 2 * 1024;
        o.cache_disk = 4 * 1024;
        o.law_window = 4;
        let (out, _) = env.restore(&file, 0, &o);
        assert_eq!(out, input);
    }

    #[test]
    fn missing_version_is_an_error() {
        let env = setup();
        let err = RestoreEngine::new(&env.storage, None)
            .restore_file(&FileId::new("ghost"), VersionId(0), &opts(&env.cfg))
            .unwrap_err();
        assert!(matches!(err, SlimError::ObjectNotFound(_)));
    }

    #[test]
    fn empty_file_restores_empty() {
        let env = setup();
        let file = FileId::new("empty");
        env.backup(&file, 0, &[]);
        let (out, stats) = env.restore(&file, 0, &opts(&env.cfg));
        assert!(out.is_empty());
        assert_eq!(stats.containers_read, 0);
    }

    #[test]
    fn streaming_restore_matches_in_memory() {
        let env = setup();
        let file = FileId::new("f");
        let input = data(8, 40_000);
        env.backup(&file, 0, &input);
        let engine = RestoreEngine::new(&env.storage, None);
        let mut sink = Vec::new();
        let stats = engine
            .restore_file_to(&file, VersionId(0), &opts(&env.cfg), &mut sink)
            .unwrap();
        assert_eq!(sink, input);
        assert_eq!(stats.restored_bytes, input.len() as u64);
        let (in_mem, _) = env.restore(&file, 0, &opts(&env.cfg));
        assert_eq!(in_mem, sink);
    }

    #[test]
    fn superchunk_recipes_restore() {
        let mut env = setup();
        env.cfg.merge_threshold = 2;
        let file = FileId::new("f");
        let input = data(7, 50_000);
        for v in 0..5u64 {
            env.backup(&file, v, &input);
        }
        // Later versions are dominated by superchunks; they must restore.
        let (out, _) = env.restore(&file, 4, &opts(&env.cfg));
        assert_eq!(out, input);
    }

    #[test]
    fn prealloc_hint_is_clamped() {
        assert_eq!(prealloc_hint(0), 0);
        assert_eq!(prealloc_hint(1000), 1000);
        assert_eq!(prealloc_hint(MAX_PREALLOC_BYTES as u64), MAX_PREALLOC_BYTES);
        // A hostile recipe claiming absurd logical sizes cannot force an
        // unbounded (or, on 32-bit, truncated) reservation.
        assert_eq!(
            prealloc_hint(MAX_PREALLOC_BYTES as u64 + 1),
            MAX_PREALLOC_BYTES
        );
        assert_eq!(prealloc_hint(u64::MAX), MAX_PREALLOC_BYTES);
    }
}
