//! LAW-based container prefetching (§V-A).
//!
//! Background threads read the containers that the look-ahead window says
//! will be needed soon, so the restore loop finds chunks already in memory
//! instead of blocking on OSS. The paper's Table II shows restore throughput
//! saturating once prefetch speed exceeds restore speed (6 threads on their
//! testbed); the same scaling emerges here from the simulated OSS's
//! multi-channel bandwidth model.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use slim_types::{ContainerId, ContainerMeta, Deadline, Result, SlimError};

use crate::storage::StorageLayer;

/// A fetched container: payload + metadata.
pub type FetchedContainer = (Bytes, ContainerMeta);

enum Slot {
    InFlight,
    Ready(FetchedContainer),
    /// The container's objects are gone (collected/rewritten) — callers may
    /// fall back to the global index.
    Missing,
    /// The background fetch failed. The *actual* error is kept (not a
    /// stringified copy): the consumer must be able to tell a retryable
    /// `Transient`/`Throttled`/`Timeout` fault apart from a permanent one.
    Failed(SlimError),
}

struct Shared {
    queue: Mutex<VecDeque<ContainerId>>,
    queue_cv: Condvar,
    results: Mutex<HashMap<ContainerId, Slot>>,
    results_cv: Condvar,
    /// Containers already delivered once: re-scheduling them is a no-op, so
    /// the read-once invariant of the full-vision cache holds even when a
    /// container id re-enters the look-ahead window (self-reference).
    done: Mutex<HashSet<ContainerId>>,
    stop: AtomicBool,
    reads: AtomicU64,
    bytes: AtomicU64,
}

/// Multi-threaded LAW prefetcher. `threads == 0` degrades to a pass-through
/// where [`Prefetcher::take`] always reads synchronously.
pub struct Prefetcher {
    shared: Arc<Shared>,
    storage: StorageLayer,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Start `threads` prefetch workers over `storage`.
    pub fn new(storage: StorageLayer, threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            results_cv: Condvar::new(),
            done: Mutex::new(HashSet::new()),
            stop: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        });
        // Thread-locals do not cross spawns: capture the ambient request
        // deadline here and re-install it inside each worker, so prefetch
        // reads stop issuing OSS calls once the caller's budget is spent.
        let deadline = Deadline::current();
        let workers = (0..threads)
            .map(|_| {
                let shared = shared.clone();
                let storage = storage.clone();
                std::thread::spawn(move || deadline.scope(|| worker_loop(&shared, &storage)))
            })
            .collect();
        Prefetcher {
            shared,
            storage,
            workers,
        }
    }

    /// Whether background workers exist.
    pub fn is_active(&self) -> bool {
        !self.workers.is_empty()
    }

    /// Schedule a container for background fetch. No-op when inactive or
    /// already scheduled/ready.
    pub fn schedule(&self, id: ContainerId) {
        if !self.is_active() {
            return;
        }
        if self.shared.done.lock().contains(&id) {
            return;
        }
        {
            let mut results = self.shared.results.lock();
            if results.contains_key(&id) {
                return;
            }
            results.insert(id, Slot::InFlight);
        }
        self.shared.queue.lock().push_back(id);
        self.shared.queue_cv.notify_one();
    }

    /// Obtain a container: from the prefetch buffer if ready (waiting for an
    /// in-flight fetch), otherwise with a synchronous read. Returns the
    /// container and whether it was served by the prefetcher.
    ///
    /// A retryable background failure (`Transient`/`Throttled`/`Timeout`)
    /// degrades to a synchronous re-read — the retry — instead of surfacing;
    /// permanent errors surface with their original type intact.
    pub fn take(&self, id: ContainerId) -> Result<(FetchedContainer, bool)> {
        let mut count_read = true;
        if self.is_active() {
            if self.shared.done.lock().contains(&id) {
                // Already delivered once (a container id re-entering the
                // look-ahead window under self-reference, or a relocation
                // re-read). Serve a fresh synchronous read, but do not count
                // it again: `containers_read`/`bytes_read` measure the
                // read-once invariant the full-vision cache provides, and a
                // re-take is the caller's cache decision, not a cache miss.
                count_read = false;
            } else {
                let mut results = self.shared.results.lock();
                loop {
                    match results.get(&id) {
                        Some(Slot::Ready(_)) => {
                            let Some(Slot::Ready(fetched)) = results.remove(&id) else {
                                unreachable!("checked ready above");
                            };
                            drop(results);
                            self.shared.done.lock().insert(id);
                            return Ok((fetched, true));
                        }
                        Some(Slot::Missing) => {
                            results.remove(&id);
                            return Err(SlimError::ContainerMissing(id.0));
                        }
                        Some(Slot::Failed(_)) => {
                            let Some(Slot::Failed(err)) = results.remove(&id) else {
                                unreachable!("checked failed above");
                            };
                            if !err.is_retryable() {
                                return Err(err);
                            }
                            // Retryable: fall through to the sync read below.
                            // The failed background attempt never touched the
                            // counters, so the retry counts as the (single)
                            // physical read if it succeeds.
                            break;
                        }
                        Some(Slot::InFlight) => {
                            self.shared.results_cv.wait(&mut results);
                        }
                        None => break, // never scheduled: fall through to sync read
                    }
                }
            }
        }
        let fetched = read_container(&self.storage, id, &self.shared, count_read)?;
        if self.is_active() {
            self.shared.done.lock().insert(id);
        }
        Ok((fetched, false))
    }

    /// Containers actually read from OSS (sync + async paths).
    pub fn containers_read(&self) -> u64 {
        self.shared.reads.load(Ordering::Relaxed)
    }

    /// Bytes read from OSS (data + metadata).
    pub fn bytes_read(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Stop workers and wait for them. Idempotent; also runs on Drop.
    ///
    /// Counters are only stable after this returns — a worker may still be
    /// mid-read for a container that was scheduled but never taken.
    pub fn quiesce(&mut self) {
        {
            // Hold the queue lock while flipping the stop flag so a worker
            // cannot observe stop == false and then miss the wake-up (the
            // classic lost-wakeup race: the notify would land between its
            // check and its wait registration).
            let _queue = self.shared.queue.lock();
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.queue_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stop workers and wait for them.
    pub fn shutdown(mut self) {
        self.quiesce();
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.quiesce();
    }
}

fn worker_loop(shared: &Shared, storage: &StorageLayer) {
    loop {
        let id = {
            let mut queue = shared.queue.lock();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                shared.queue_cv.wait(&mut queue);
            }
        };
        let outcome = read_container(storage, id, shared, true);
        let mut results = shared.results.lock();
        match outcome {
            Ok(fetched) => {
                results.insert(id, Slot::Ready(fetched));
            }
            Err(SlimError::ContainerMissing(_)) => {
                results.insert(id, Slot::Missing);
            }
            Err(e) => {
                results.insert(id, Slot::Failed(e));
            }
        }
        shared.results_cv.notify_all();
    }
}

fn read_container(
    storage: &StorageLayer,
    id: ContainerId,
    shared: &Shared,
    count: bool,
) -> Result<FetchedContainer> {
    let meta = storage.get_container_meta(id)?;
    let data = storage.get_container_data(id)?;
    if count {
        shared.reads.fetch_add(1, Ordering::Relaxed);
        shared.bytes.fetch_add(
            data.len() as u64 + meta.encode().len() as u64,
            Ordering::Relaxed,
        );
    }
    Ok((data, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::{FaultPlan, Oss};
    use slim_types::{ContainerBuilder, Fingerprint};

    /// Block until the background worker has parked a `Failed` slot for `id`.
    fn wait_for_failed_slot(pf: &Prefetcher, id: ContainerId) {
        for _ in 0..5_000 {
            if matches!(pf.shared.results.lock().get(&id), Some(Slot::Failed(_))) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("worker never recorded a failure for {id:?}");
    }

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn store_container(storage: &StorageLayer, b: u8) -> ContainerId {
        let id = storage.allocate_container_id();
        let mut builder = ContainerBuilder::new(id, 1024);
        builder.push(fp(b), &[b; 64]);
        let (data, meta) = builder.seal();
        storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn take_without_threads_reads_synchronously() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 1);
        let pf = Prefetcher::new(storage, 0);
        assert!(!pf.is_active());
        let ((data, meta), from_prefetch) = pf.take(id).unwrap();
        assert!(!from_prefetch);
        assert_eq!(meta.id, id);
        assert_eq!(data.len(), 64);
        assert_eq!(pf.containers_read(), 1);
        assert!(pf.bytes_read() > 64);
    }

    #[test]
    fn scheduled_container_served_from_buffer() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 2);
        let pf = Prefetcher::new(storage, 2);
        pf.schedule(id);
        let ((_, meta), from_prefetch) = pf.take(id).unwrap();
        assert!(from_prefetch, "must come from the prefetch buffer");
        assert_eq!(meta.id, id);
        pf.shutdown();
    }

    #[test]
    fn many_containers_all_arrive() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let ids: Vec<_> = (0..30u8).map(|b| store_container(&storage, b)).collect();
        let pf = Prefetcher::new(storage, 4);
        for &id in &ids {
            pf.schedule(id);
        }
        for &id in &ids {
            let ((_, meta), _) = pf.take(id).unwrap();
            assert_eq!(meta.id, id);
        }
        assert_eq!(pf.containers_read(), 30);
    }

    #[test]
    fn failed_fetch_surfaces_error() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let pf = Prefetcher::new(storage, 1);
        let ghost = ContainerId(999);
        pf.schedule(ghost);
        assert!(pf.take(ghost).is_err());
    }

    #[test]
    fn retryable_worker_failure_retries_synchronously() {
        let oss = Arc::new(Oss::in_memory());
        let storage = StorageLayer::open(oss.clone());
        let id = store_container(&storage, 4);
        // Every container read fails with a retryable Transient fault while
        // the background worker runs...
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: "containers/".into(),
            prob: 1.0,
            seed: 42,
        });
        let pf = Prefetcher::new(storage, 1);
        pf.schedule(id);
        wait_for_failed_slot(&pf, id);
        // ...then the fault clears, as transient faults do. `take` must
        // retry synchronously and succeed instead of surfacing the stale
        // worker failure (which it used to do, as a non-retryable Corrupt).
        oss.clear_faults();
        let ((data, meta), from_prefetch) = pf.take(id).unwrap();
        assert!(!from_prefetch, "retry is a synchronous read");
        assert_eq!(meta.id, id);
        assert_eq!(data.len(), 64);
        assert_eq!(
            pf.containers_read(),
            1,
            "the failed attempt is uncounted; the retry counts once"
        );
    }

    #[test]
    fn worker_failure_preserves_error_type_and_retryability() {
        // Retryable class: a Transient worker failure whose sync retry also
        // fails must surface as a *retryable* error, not Corrupt.
        let oss = Arc::new(Oss::in_memory());
        let storage = StorageLayer::open(oss.clone());
        let id = store_container(&storage, 5);
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: "containers/".into(),
            prob: 1.0,
            seed: 7,
        });
        let pf = Prefetcher::new(storage, 1);
        pf.schedule(id);
        wait_for_failed_slot(&pf, id);
        let err = pf.take(id).unwrap_err();
        assert!(
            err.is_retryable(),
            "transient prefetch failure must stay retryable, got {err:?}"
        );

        // Permanent class: the original error type survives the prefetch
        // path instead of being stringified into Corrupt.
        let oss = Arc::new(Oss::in_memory());
        let storage = StorageLayer::open(oss.clone());
        let id = store_container(&storage, 6);
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        let pf = Prefetcher::new(storage, 1);
        pf.schedule(id);
        let err = pf.take(id).unwrap_err();
        assert!(
            matches!(err, SlimError::InjectedFault(_)),
            "expected the injected fault's own type, got {err:?}"
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn retake_of_delivered_container_is_not_double_counted() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 7);
        let pf = Prefetcher::new(storage, 2);
        pf.schedule(id);
        let (_, hit) = pf.take(id).unwrap();
        assert!(hit);
        assert_eq!(pf.containers_read(), 1);
        let bytes_after_first = pf.bytes_read();
        // A second take of the same container (self-referencing recipes do
        // this when a container id re-enters the look-ahead window) still
        // returns the data but must not break the read-once accounting.
        let ((data, meta), hit2) = pf.take(id).unwrap();
        assert!(!hit2);
        assert_eq!(meta.id, id);
        assert_eq!(data.len(), 64);
        assert_eq!(pf.containers_read(), 1, "re-take must not double-count");
        assert_eq!(pf.bytes_read(), bytes_after_first);
    }

    #[test]
    fn double_schedule_reads_once() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 3);
        let pf = Prefetcher::new(storage, 2);
        pf.schedule(id);
        pf.schedule(id);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(pf.containers_read(), 1, "duplicate schedule must dedup");
        let (_fetched, hit) = pf.take(id).unwrap();
        assert!(hit);
    }
}
