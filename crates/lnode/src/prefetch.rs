//! LAW-based container prefetching (§V-A).
//!
//! Background threads read the containers that the look-ahead window says
//! will be needed soon, so the restore loop finds chunks already in memory
//! instead of blocking on OSS. The paper's Table II shows restore throughput
//! saturating once prefetch speed exceeds restore speed (6 threads on their
//! testbed); the same scaling emerges here from the simulated OSS's
//! multi-channel bandwidth model.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use slim_types::{ContainerId, ContainerMeta, Result, SlimError};

use crate::storage::StorageLayer;

/// A fetched container: payload + metadata.
pub type FetchedContainer = (Bytes, ContainerMeta);

enum Slot {
    InFlight,
    Ready(FetchedContainer),
    /// The container's objects are gone (collected/rewritten) — callers may
    /// fall back to the global index.
    Missing,
    Failed(String),
}

struct Shared {
    queue: Mutex<VecDeque<ContainerId>>,
    queue_cv: Condvar,
    results: Mutex<HashMap<ContainerId, Slot>>,
    results_cv: Condvar,
    /// Containers already delivered once: re-scheduling them is a no-op, so
    /// the read-once invariant of the full-vision cache holds even when a
    /// container id re-enters the look-ahead window (self-reference).
    done: Mutex<HashSet<ContainerId>>,
    stop: AtomicBool,
    reads: AtomicU64,
    bytes: AtomicU64,
}

/// Multi-threaded LAW prefetcher. `threads == 0` degrades to a pass-through
/// where [`Prefetcher::take`] always reads synchronously.
pub struct Prefetcher {
    shared: Arc<Shared>,
    storage: StorageLayer,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Start `threads` prefetch workers over `storage`.
    pub fn new(storage: StorageLayer, threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            results_cv: Condvar::new(),
            done: Mutex::new(HashSet::new()),
            stop: AtomicBool::new(false),
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = shared.clone();
                let storage = storage.clone();
                std::thread::spawn(move || worker_loop(&shared, &storage))
            })
            .collect();
        Prefetcher {
            shared,
            storage,
            workers,
        }
    }

    /// Whether background workers exist.
    pub fn is_active(&self) -> bool {
        !self.workers.is_empty()
    }

    /// Schedule a container for background fetch. No-op when inactive or
    /// already scheduled/ready.
    pub fn schedule(&self, id: ContainerId) {
        if !self.is_active() {
            return;
        }
        if self.shared.done.lock().contains(&id) {
            return;
        }
        {
            let mut results = self.shared.results.lock();
            if results.contains_key(&id) {
                return;
            }
            results.insert(id, Slot::InFlight);
        }
        self.shared.queue.lock().push_back(id);
        self.shared.queue_cv.notify_one();
    }

    /// Obtain a container: from the prefetch buffer if ready (waiting for an
    /// in-flight fetch), otherwise with a synchronous read. Returns the
    /// container and whether it was served by the prefetcher.
    pub fn take(&self, id: ContainerId) -> Result<(FetchedContainer, bool)> {
        if self.is_active() {
            let mut results = self.shared.results.lock();
            loop {
                match results.get(&id) {
                    Some(Slot::Ready(_)) => {
                        let Some(Slot::Ready(fetched)) = results.remove(&id) else {
                            unreachable!("checked ready above");
                        };
                        drop(results);
                        self.shared.done.lock().insert(id);
                        return Ok((fetched, true));
                    }
                    Some(Slot::Missing) => {
                        results.remove(&id);
                        return Err(SlimError::ContainerMissing(id.0));
                    }
                    Some(Slot::Failed(_)) => {
                        let Some(Slot::Failed(msg)) = results.remove(&id) else {
                            unreachable!("checked failed above");
                        };
                        return Err(SlimError::corrupt("prefetch", msg));
                    }
                    Some(Slot::InFlight) => {
                        self.shared.results_cv.wait(&mut results);
                    }
                    None => break, // never scheduled: fall through to sync read
                }
            }
        }
        let fetched = read_container(&self.storage, id, &self.shared)?;
        if self.is_active() {
            self.shared.done.lock().insert(id);
        }
        Ok((fetched, false))
    }

    /// Containers actually read from OSS (sync + async paths).
    pub fn containers_read(&self) -> u64 {
        self.shared.reads.load(Ordering::Relaxed)
    }

    /// Bytes read from OSS (data + metadata).
    pub fn bytes_read(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Stop workers and wait for them. Idempotent; also runs on Drop.
    ///
    /// Counters are only stable after this returns — a worker may still be
    /// mid-read for a container that was scheduled but never taken.
    pub fn quiesce(&mut self) {
        {
            // Hold the queue lock while flipping the stop flag so a worker
            // cannot observe stop == false and then miss the wake-up (the
            // classic lost-wakeup race: the notify would land between its
            // check and its wait registration).
            let _queue = self.shared.queue.lock();
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.queue_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stop workers and wait for them.
    pub fn shutdown(mut self) {
        self.quiesce();
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.quiesce();
    }
}

fn worker_loop(shared: &Shared, storage: &StorageLayer) {
    loop {
        let id = {
            let mut queue = shared.queue.lock();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                shared.queue_cv.wait(&mut queue);
            }
        };
        let outcome = read_container(storage, id, shared);
        let mut results = shared.results.lock();
        match outcome {
            Ok(fetched) => {
                results.insert(id, Slot::Ready(fetched));
            }
            Err(SlimError::ContainerMissing(_)) => {
                results.insert(id, Slot::Missing);
            }
            Err(e) => {
                results.insert(id, Slot::Failed(e.to_string()));
            }
        }
        shared.results_cv.notify_all();
    }
}

fn read_container(
    storage: &StorageLayer,
    id: ContainerId,
    shared: &Shared,
) -> Result<FetchedContainer> {
    let meta = storage.get_container_meta(id)?;
    let data = storage.get_container_data(id)?;
    shared.reads.fetch_add(1, Ordering::Relaxed);
    shared.bytes.fetch_add(
        data.len() as u64 + meta.encode().len() as u64,
        Ordering::Relaxed,
    );
    Ok((data, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;
    use slim_types::{ContainerBuilder, Fingerprint};

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn store_container(storage: &StorageLayer, b: u8) -> ContainerId {
        let id = storage.allocate_container_id();
        let mut builder = ContainerBuilder::new(id, 1024);
        builder.push(fp(b), &[b; 64]);
        let (data, meta) = builder.seal();
        storage.put_container(data, &meta).unwrap();
        id
    }

    #[test]
    fn take_without_threads_reads_synchronously() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 1);
        let pf = Prefetcher::new(storage, 0);
        assert!(!pf.is_active());
        let ((data, meta), from_prefetch) = pf.take(id).unwrap();
        assert!(!from_prefetch);
        assert_eq!(meta.id, id);
        assert_eq!(data.len(), 64);
        assert_eq!(pf.containers_read(), 1);
        assert!(pf.bytes_read() > 64);
    }

    #[test]
    fn scheduled_container_served_from_buffer() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 2);
        let pf = Prefetcher::new(storage, 2);
        pf.schedule(id);
        let ((_, meta), from_prefetch) = pf.take(id).unwrap();
        assert!(from_prefetch, "must come from the prefetch buffer");
        assert_eq!(meta.id, id);
        pf.shutdown();
    }

    #[test]
    fn many_containers_all_arrive() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let ids: Vec<_> = (0..30u8).map(|b| store_container(&storage, b)).collect();
        let pf = Prefetcher::new(storage, 4);
        for &id in &ids {
            pf.schedule(id);
        }
        for &id in &ids {
            let ((_, meta), _) = pf.take(id).unwrap();
            assert_eq!(meta.id, id);
        }
        assert_eq!(pf.containers_read(), 30);
    }

    #[test]
    fn failed_fetch_surfaces_error() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let pf = Prefetcher::new(storage, 1);
        let ghost = ContainerId(999);
        pf.schedule(ghost);
        assert!(pf.take(ghost).is_err());
    }

    #[test]
    fn double_schedule_reads_once() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let id = store_container(&storage, 3);
        let pf = Prefetcher::new(storage, 2);
        pf.schedule(id);
        pf.schedule(id);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(pf.containers_read(), 1, "duplicate schedule must dedup");
        let (_fetched, hit) = pf.take(id).unwrap();
        assert!(hit);
    }
}
