//! The online deduplication pipeline (§IV).
//!
//! One [`BackupPipeline::backup_file`] call runs the full three-step workflow
//! for one input file:
//!
//! 1. **Detect** a historical version (by path) or a similar file (by
//!    representative-fingerprint vote) and fetch its recipe index.
//! 2. **Dedup** the stream: every sampled chunk probes the recipe index and
//!    prefetches the matching segment recipe into the dedup cache; logical
//!    locality then confirms whole runs of duplicates. Two history-aware
//!    fast paths cut the CPU cost:
//!    * *skip chunking* — after a duplicate, jump `|next chunk|` bytes,
//!      check the cut condition in O(window), and verify by fingerprint;
//!      on mismatch fall back to the byte-by-byte CDC scan;
//!    * *SuperChunking* (Algorithm 1) — a chunk matching the first member of
//!      a previous-version superchunk triggers a whole-superchunk
//!      fingerprint comparison.
//! 3. **Segment & persist**: unique chunks pack into containers that seal to
//!    OSS at capacity; records group into segment recipes; sampled
//!    fingerprints become the recipe index for the *next* version.
//!
//! History-aware chunk merging (§IV-C) runs as a per-segment post-pass: runs
//! of records whose `duplicateTimes` reached the threshold merge into a new
//! superchunk whose payload is written to the current container (the old
//! member copies are reclaimed later by the G-node's reverse deduplication).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use slim_chunking::{chunk_all, fingerprint, sample::file_representatives, Chunker};
use slim_index::similar::Detection;
use slim_index::{DedupCache, SimilarFileIndex};
use slim_types::recipe::SegmentSpan;
use slim_types::{
    ChunkRecord, ContainerBuilder, ContainerId, FileBackupInfo, FileId, Fingerprint, Recipe,
    RecipeIndex, Result, SegmentRecipe, SlimConfig, SlimError, SuperChunkInfo, VersionId,
};

use crate::pipeline::{ChunkFeed, PipelineShared, UploadSink};
use crate::stats::BackupStats;
use crate::storage::StorageLayer;

/// How many segments the dedup cache holds.
const DEDUP_CACHE_SEGMENTS: usize = 64;
/// How many consecutive segment recipes one prefetch pulls: adjacent segment
/// blocks are contiguous in the recipe object, so one OSS range read covers
/// several (the backup stream sweeps forward, so the following segments are
/// the likely next matches).
const PREFETCH_BATCH: u32 = 4;
/// How many leading chunks are eligible as file representatives (header
/// sampling for large files, §IV-A Step 1).
const HEADER_CHUNKS: usize = 512;

/// Result of backing up one file.
#[derive(Debug, Clone)]
pub struct BackupOutcome {
    /// Manifest entry for the file.
    pub info: FileBackupInfo,
    /// Job statistics (phase timings, dedup counters).
    pub stats: BackupStats,
    /// Containers this job created (input to reverse deduplication).
    pub new_containers: Vec<ContainerId>,
    /// Duplicate-chunk references per container — the raw counts the G-node
    /// combines with container metadata to find sparse containers (§V-B).
    pub container_refs: HashMap<ContainerId, u64>,
}

/// The online dedup pipeline of an L-node.
pub struct BackupPipeline<'a> {
    storage: &'a StorageLayer,
    similar: &'a SimilarFileIndex,
    chunker: &'a dyn Chunker,
    config: &'a SlimConfig,
}

impl<'a> BackupPipeline<'a> {
    /// Assemble a pipeline over the shared storage layer and indexes.
    pub fn new(
        storage: &'a StorageLayer,
        similar: &'a SimilarFileIndex,
        chunker: &'a dyn Chunker,
        config: &'a SlimConfig,
    ) -> Self {
        BackupPipeline {
            storage,
            similar,
            chunker,
            config,
        }
    }

    /// Deduplicate and persist one file as `version`.
    pub fn backup_file(
        &self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BackupOutcome> {
        let wall_start = Instant::now();
        let mut stats = BackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };

        // ---- STEP 1: detect a historical version or similar file ----
        let detected = self.detect(file, data, &mut stats)?;
        let recipe_index = match &detected {
            Some((f, v)) => {
                let t = Instant::now();
                let idx = match self.storage.get_recipe_index(f, *v) {
                    Ok(idx) => Some(idx),
                    // The detected history may have been reclaimed out from
                    // under the in-memory similar index (orphan scrub after a
                    // failed job, retention pruning). Degrade to a fresh
                    // backup rather than failing the job.
                    Err(slim_types::SlimError::ObjectNotFound(_)) => None,
                    Err(e) => return Err(e),
                };
                stats.network_time += t.elapsed();
                idx
            }
            None => None,
        };

        // ---- STEP 2 + 3: dedup the stream, segment and persist ----
        let segment_spans: HashMap<u32, SegmentSpan> = recipe_index
            .as_ref()
            .map(|idx| {
                idx.entries
                    .iter()
                    .map(|e| (e.segment_idx, e.span))
                    .collect()
            })
            .unwrap_or_default();
        // Hash view of the recipe index: every cut chunk probes it in O(1),
        // so a sampled fingerprint anywhere in the stream finds its segment.
        let mut index_lookup: HashMap<Fingerprint, Vec<u32>> = HashMap::new();
        if let Some(idx) = &recipe_index {
            for e in &idx.entries {
                let segs = index_lookup.entry(e.sample_fp).or_default();
                if !segs.contains(&e.segment_idx) {
                    segs.push(e.segment_idx);
                }
            }
        }
        let mut job = Job {
            pipeline: self,
            data,
            detected,
            index_lookup,
            segment_spans,
            first_records: HashMap::new(),
            cache: DedupCache::new(DEDUP_CACHE_SEGMENTS),
            fetched_segments: HashSet::new(),
            local_index: HashMap::new(),
            builder: None,
            new_containers: Vec::new(),
            segments: Vec::new(),
            cur_records: Vec::new(),
            cur_spans: Vec::new(),
            prediction: None,
            feed: None,
            sink: None,
            stats,
        };
        let threads = self.config.backup_pipeline_threads;
        if threads >= 2 && !data.is_empty() {
            job.run_pipelined(threads)?;
        } else {
            job.run()?;
        }
        let Job {
            mut stats,
            segments,
            new_containers,
            ..
        } = job;

        // Persist the recipe and its index.
        let recipe = Recipe { segments };
        let t = Instant::now();
        let (recipe_buf, spans) = recipe.encode();
        let index = RecipeIndex::build(&recipe, &spans, self.config.sample_rate);
        stats.index_time += t.elapsed();
        let recipe_key = slim_types::layout::recipe(file, version);
        let index_key = slim_types::layout::recipe_index(file, version);
        let t = Instant::now();
        self.storage.oss().put(&recipe_key, recipe_buf)?;
        self.storage.oss().put(&index_key, index.encode())?;
        stats.network_time += t.elapsed();

        // Register the file's representatives for future similarity search.
        let reps = self.representatives(&recipe);
        self.similar.register(file.clone(), version, reps);

        // Reference counts per container, from the final recipe (SCC input).
        let mut container_refs: HashMap<ContainerId, u64> = HashMap::new();
        for rec in recipe.records() {
            *container_refs.entry(rec.container_id).or_default() += 1;
        }

        let duplicate_count = stats.duplicates;
        let chunk_count = stats.chunks;
        stats.wall_time = wall_start.elapsed();
        Ok(BackupOutcome {
            info: FileBackupInfo {
                file: file.clone(),
                recipe_key,
                recipe_index_key: index_key,
                logical_bytes: data.len() as u64,
                stored_bytes: stats.stored_bytes,
                chunk_count,
                duplicate_count,
            },
            stats,
            new_containers,
            container_refs,
        })
    }

    /// STEP 1: path match first, then similarity by sampled header chunks.
    fn detect(
        &self,
        file: &FileId,
        data: &[u8],
        stats: &mut BackupStats,
    ) -> Result<Option<(FileId, VersionId)>> {
        let t = Instant::now();
        if let Some(version) = self.similar.latest_version(file) {
            stats.index_time += t.elapsed();
            return Ok(Some((file.clone(), version)));
        }
        stats.index_time += t.elapsed();
        // No historical version: chunk + sample the header and vote.
        let header_len = data.len().min(HEADER_CHUNKS * self.config.avg_chunk_size);
        let t = Instant::now();
        let header_chunks = chunk_all(self.chunker, &data[..header_len]);
        stats.chunking_time += t.elapsed();
        let t = Instant::now();
        let samples = file_representatives(
            &header_chunks,
            self.config.sample_rate,
            HEADER_CHUNKS,
            self.config.similar_index_samples,
        );
        let detection = self.similar.detect(file, &samples);
        stats.index_time += t.elapsed();
        Ok(match detection {
            Detection::HistoricalVersion(f, v) => Some((f, v)),
            Detection::SimilarFile(f, v, _) => Some((f, v)),
            Detection::None => None,
        })
    }

    /// Representative fingerprints of the just-written recipe (header
    /// sampling). Superchunk records are represented by their first member
    /// chunk — the fingerprint an incoming file's CDC scan can reproduce.
    fn representatives(&self, recipe: &Recipe) -> Vec<Fingerprint> {
        let key = |rec: &ChunkRecord| match &rec.super_chunk {
            Some(sc) => sc.first_chunk,
            None => rec.fp,
        };
        let mut reps = Vec::new();
        let mut seen = 0usize;
        'outer: for seg in &recipe.segments {
            for rec in &seg.records {
                if seen >= HEADER_CHUNKS || reps.len() >= self.config.similar_index_samples {
                    break 'outer;
                }
                if key(rec).is_sample(self.config.sample_rate) {
                    reps.push(key(rec));
                }
                seen += 1;
            }
        }
        if reps.is_empty() {
            reps = recipe
                .records()
                .take(self.config.similar_index_samples)
                .map(key)
                .collect();
        }
        reps
    }
}

/// Mutable state of one running backup job.
struct Job<'p, 'a> {
    pipeline: &'p BackupPipeline<'a>,
    data: &'p [u8],
    detected: Option<(FileId, VersionId)>,
    /// Hash view of the source recipe index: sample fp -> segment ordinals.
    index_lookup: HashMap<Fingerprint, Vec<u32>>,
    /// Segment ordinal -> byte span in the source recipe (from its index).
    segment_spans: HashMap<u32, SegmentSpan>,
    /// First record of each prefetched segment (for sequential chaining).
    first_records: HashMap<u32, ChunkRecord>,
    cache: DedupCache,
    fetched_segments: HashSet<u32>,
    /// Chunks already emitted by *this* job (intra-stream / self-reference
    /// dedup).
    local_index: HashMap<Fingerprint, ChunkRecord>,
    builder: Option<ContainerBuilder>,
    new_containers: Vec<ContainerId>,
    segments: Vec<SegmentRecipe>,
    cur_records: Vec<ChunkRecord>,
    /// Byte span in `data` of each record in `cur_records` (for merging).
    cur_spans: Vec<(usize, usize)>,
    /// Skip-chunking prediction: the record expected to match at the cursor.
    prediction: Option<ChunkRecord>,
    /// Pipelined mode: the precomputed plain-CDC chunk stream (stages 1+2).
    feed: Option<ChunkFeed>,
    /// Pipelined mode: async container uploads (stage 4).
    sink: Option<UploadSink>,
    stats: BackupStats,
}

impl Job<'_, '_> {
    fn config(&self) -> &SlimConfig {
        self.pipeline.config
    }

    fn run(&mut self) -> Result<()> {
        let mut pos = 0usize;
        while pos < self.data.len() {
            pos = self.step(pos)?;
            if self.cur_records.len() >= self.config().segment_chunks {
                self.close_segment()?;
            }
        }
        self.close_segment()?;
        self.seal_container()?;
        Ok(())
    }

    /// Run the same dedup loop with the parallel stages of
    /// [`crate::pipeline`] around it: a chunking feeder, `threads - 2`
    /// fingerprint workers, and an async container uploader, all scoped to
    /// this call. The loop itself — and therefore every byte of output — is
    /// identical to [`Job::run`]; the stages only precompute the plain-CDC
    /// stream it consumes and overlap the uploads it orders.
    fn run_pipelined(&mut self, threads: usize) -> Result<()> {
        debug_assert!(threads >= 2);
        let shared = Arc::new(PipelineShared::default());
        let chunker = self.pipeline.chunker;
        let data = self.data;
        let storage = self.pipeline.storage.clone();
        let fp_workers = threads - 2; // one feeder + one uploader
        let result = std::thread::scope(|s| {
            self.feed = Some(ChunkFeed::spawn(
                s,
                chunker,
                data,
                fp_workers,
                shared.clone(),
            ));
            let (sink, uploader) = UploadSink::spawn(s, storage, shared.clone());
            self.sink = Some(sink);
            // The feed and sink must be detached from `self` before the
            // scope ends even if the loop panics (a debug assertion, say):
            // their queues are what lets the spawned threads exit, and the
            // scope joins those threads.
            let run_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run()));
            self.feed = None;
            let sink_result = match self.sink.take() {
                Some(sink) => sink.finish(uploader),
                None => Ok(()),
            };
            match run_result {
                Ok(res) => res.and(sink_result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        });
        shared.fold_into(&mut self.stats);
        result
    }

    /// Process one chunk (or superchunk) starting at `pos`; returns the new
    /// cursor.
    fn step(&mut self, pos: usize) -> Result<usize> {
        // -- History-aware skip chunking (§IV-B) --
        if self.config().skip_chunking {
            if let Some(predicted) = self.prediction.take() {
                if let Some(end) = self.try_skip(pos, &predicted) {
                    let mut rec = predicted;
                    rec.duplicate_times += 1;
                    self.stats.skip_hits += 1;
                    // Sampled chunks still probe the recipe index even on
                    // the fast path, so the set of prefetched segments — and
                    // therefore the dedup ratio — is identical to plain CDC
                    // (Fig 5(b)).
                    let probe = match &rec.super_chunk {
                        Some(sc) => sc.first_chunk,
                        None => rec.fp,
                    };
                    self.maybe_prefetch(&probe)?;
                    self.emit_duplicate(rec, pos, end)?;
                    return Ok(end);
                }
                self.stats.skip_misses += 1;
            }
        }

        // -- Plain CDC cut --
        let (end, fp) = self.cut_at(pos);

        // -- Probe the recipe index and prefetch matching segments --
        self.maybe_prefetch(&fp)?;

        // -- SuperChunking probe (Algorithm 1): fp may be the first member
        //    of a previous-version superchunk --
        if self.config().chunk_merging {
            if let Some(sc) = self.probe_superchunk(pos, &fp) {
                let sc_end = pos + sc.size as usize;
                let mut rec = sc;
                rec.duplicate_times += 1;
                self.stats.super_hits += 1;
                self.emit_duplicate(rec, pos, sc_end)?;
                return Ok(sc_end);
            }
        }

        // -- Intra-stream duplicate (self-reference) --
        // Checked before the history cache: if this job already stored the
        // chunk, referencing the *new* copy keeps the current version's
        // locality and never conflicts with reverse deduplication (which
        // keeps the newest copy, §VI-A).
        if let Some(rec) = self.local_index.get(&fp).copied() {
            self.emit_duplicate(rec, pos, end)?;
            return Ok(end);
        }

        // -- Dedup cache lookup (logical locality) --
        let t = Instant::now();
        let hit = self.cache.lookup(&fp);
        self.stats.index_time += t.elapsed();
        if let Some(hit) = hit {
            debug_assert_eq!(hit.record.size as usize, end - pos, "same fp, same size");
            let mut rec = hit.record;
            rec.duplicate_times += 1;
            self.prediction = hit.next;
            self.emit_duplicate(rec, pos, end)?;
            return Ok(end);
        }

        // -- Unique chunk: store it --
        self.emit_unique(fp, pos, end)?;
        Ok(end)
    }

    /// The plain-CDC cut and fingerprint at `pos`: consumed from the
    /// parallel feed when pipelined, computed inline otherwise. The feed is
    /// the same `next_boundary`/`fingerprint` pair evaluated ahead of time,
    /// so both sources yield the identical chunk.
    fn cut_at(&mut self, pos: usize) -> (usize, Fingerprint) {
        if let Some(feed) = &mut self.feed {
            if let Some(c) = feed.take_at(pos) {
                return (c.end, c.fp);
            }
            feed.note_fallback();
        }
        let t = Instant::now();
        let end = self.pipeline.chunker.next_boundary(self.data, pos);
        self.stats.chunking_time += t.elapsed();
        let t = Instant::now();
        let fp = fingerprint(&self.data[pos..end]);
        self.stats.fingerprint_time += t.elapsed();
        (end, fp)
    }

    /// Attempt a skip-chunking jump: land on the predicted cut, check the
    /// cut condition in O(window), verify by fingerprint. Returns the chunk
    /// end on success.
    fn try_skip(&mut self, pos: usize, predicted: &ChunkRecord) -> Option<usize> {
        let end = pos + predicted.size as usize;
        if end > self.data.len() {
            return None;
        }
        if predicted.is_super() {
            // Superchunk ends are not single-chunk cut points; the
            // fingerprint comparison alone decides (content equality implies
            // the member boundaries align).
            let t = Instant::now();
            let fp = fingerprint(&self.data[pos..end]);
            self.stats.fingerprint_time += t.elapsed();
            if fp == predicted.fp {
                return Some(end);
            }
            return None;
        }
        // Pipelined: the plain chunk at `pos` is already cut and hashed.
        // The prediction holds iff it *is* that chunk — same decision as
        // the inline check below (a fingerprint match implies content
        // equality, so the historical cut is the next plain-CDC cut), with
        // the hash work already paid by the worker pool. On a miss the
        // chunk stays buffered for the plain-CDC path.
        if let Some(feed) = &mut self.feed {
            if let Some(c) = feed.peek_at(pos) {
                if c.end == end && c.fp == predicted.fp {
                    feed.consume_head();
                    return Some(end);
                }
                return None;
            }
            // Feed exhausted/misaligned: verify inline below.
        }
        let t = Instant::now();
        let cut_ok = self.pipeline.chunker.is_boundary(self.data, pos, end);
        self.stats.chunking_time += t.elapsed();
        if !cut_ok {
            return None;
        }
        let t = Instant::now();
        let fp = fingerprint(&self.data[pos..end]);
        self.stats.fingerprint_time += t.elapsed();
        if fp == predicted.fp {
            Some(end)
        } else {
            None
        }
    }

    /// Algorithm 1: if `fp` matches the first member chunk of a cached
    /// superchunk, compare the whole-superchunk fingerprint.
    fn probe_superchunk(&mut self, pos: usize, fp: &Fingerprint) -> Option<ChunkRecord> {
        let t = Instant::now();
        let candidate = self.cache.lookup_super_first(fp);
        self.stats.index_time += t.elapsed();
        let sc = candidate?;
        let sc_end = pos + sc.size as usize;
        if sc_end > self.data.len() {
            return None;
        }
        let t = Instant::now();
        let sc_fp = fingerprint(&self.data[pos..sc_end]);
        self.stats.fingerprint_time += t.elapsed();
        if sc_fp == sc.fp {
            Some(sc)
        } else {
            self.stats.super_misses += 1;
            None
        }
    }

    /// Prefetch the segment recipe(s) whose sample matches `fp` (§IV-A
    /// Step 2). Called for every cut chunk; the O(1) hash probe is free for
    /// non-samples (sampling bounds what the index *contains*).
    fn maybe_prefetch(&mut self, fp: &Fingerprint) -> Result<()> {
        let Some(segs) = self.index_lookup.get(fp) else {
            return Ok(());
        };
        let hits: Vec<u32> = segs
            .iter()
            .filter(|s| !self.fetched_segments.contains(s))
            .copied()
            .collect();
        for seg_idx in hits {
            self.fetch_segment(seg_idx)?;
        }
        Ok(())
    }

    /// Fetch segment `idx` of the detected file into the dedup cache (if it
    /// exists and is not already cached); returns its first record. Batches:
    /// up to [`PREFETCH_BATCH`] contiguous following segments ride along in
    /// the same OSS range read.
    fn fetch_segment(&mut self, idx: u32) -> Result<Option<ChunkRecord>> {
        if self.fetched_segments.contains(&idx) {
            return Ok(self.first_records.get(&idx).copied());
        }
        let Some((src_file, src_version)) = self.detected.clone() else {
            return Ok(None);
        };
        let Some(first_span) = self.segment_spans.get(&idx).copied() else {
            return Ok(None);
        };
        // Extend the read over contiguous, unfetched following segments.
        let mut batch = vec![(idx, first_span)];
        let mut end = first_span.offset + first_span.len;
        for next in idx + 1..idx + PREFETCH_BATCH {
            if self.fetched_segments.contains(&next) {
                break;
            }
            let Some(span) = self.segment_spans.get(&next).copied() else {
                break;
            };
            if span.offset != end {
                break; // not contiguous (should not happen, but be safe)
            }
            end = span.offset + span.len;
            batch.push((next, span));
        }
        let t = Instant::now();
        let buf = match self.pipeline.storage.oss().get_range(
            &slim_types::layout::recipe(&src_file, src_version),
            first_span.offset,
            end - first_span.offset,
        ) {
            Ok(buf) => buf,
            // The source recipe was reclaimed (orphan scrub / retention) after
            // its index was fetched. Mark the batch fetched so we do not retry
            // the read per chunk, and store the stream fresh.
            Err(SlimError::ObjectNotFound(_)) => {
                for (seg_idx, _) in batch {
                    self.fetched_segments.insert(seg_idx);
                }
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        self.stats.network_time += t.elapsed();
        let mut first_of_idx = None;
        for (seg_idx, span) in batch {
            let lo = (span.offset - first_span.offset) as usize;
            let hi = lo + span.len as usize;
            let seg = SegmentRecipe::decode_block(&buf[lo..hi])?;
            let first = seg.records.first().copied();
            let t = Instant::now();
            self.cache.insert_segment(seg, seg_idx);
            self.stats.index_time += t.elapsed();
            self.fetched_segments.insert(seg_idx);
            if let Some(f) = first {
                self.first_records.insert(seg_idx, f);
            }
            if seg_idx == idx {
                first_of_idx = first;
            }
            self.stats.segments_prefetched += 1;
        }
        Ok(first_of_idx)
    }

    fn emit_duplicate(&mut self, rec: ChunkRecord, start: usize, end: usize) -> Result<()> {
        debug_assert_eq!(rec.size as usize, end - start);
        // Keep the prediction chain alive: the successor of the matched
        // record is the next expected chunk. At a segment end, chain to the
        // *next* segment recipe of the source file — incremental backup
        // streams sweep forward, so its records are the likely duplicates
        // (sequential logical locality).
        if self.prediction.is_none() {
            if let Some(hit) = self.cache.peek(&rec.fp) {
                self.prediction = match hit.next {
                    Some(next) => Some(next),
                    None => self.fetch_segment(hit.segment + 1)?,
                };
            }
        }
        self.stats.chunks += 1;
        self.stats.duplicates += 1;
        self.cur_records.push(rec);
        self.cur_spans.push((start, end));
        Ok(())
    }

    fn emit_unique(&mut self, fp: Fingerprint, start: usize, end: usize) -> Result<()> {
        let payload = &self.data[start..end];
        let container_id = self.push_to_container(fp, payload)?;
        let rec = ChunkRecord::new(fp, container_id, payload.len() as u32, 0);
        self.local_index.insert(fp, rec);
        self.prediction = None;
        self.stats.chunks += 1;
        self.stats.stored_bytes += payload.len() as u64;
        self.cur_records.push(rec);
        self.cur_spans.push((start, end));
        Ok(())
    }

    fn push_to_container(&mut self, fp: Fingerprint, payload: &[u8]) -> Result<ContainerId> {
        if self
            .builder
            .as_ref()
            .is_some_and(|b| b.would_overflow(payload.len()))
        {
            self.seal_container()?;
        }
        let compress = self.config().compression;
        let builder = match &mut self.builder {
            Some(b) => b,
            None => {
                let id = self.pipeline.storage.allocate_container_id();
                self.new_containers.push(id);
                self.builder.insert(
                    ContainerBuilder::new(id, self.config().container_capacity)
                        .with_compression(compress),
                )
            }
        };
        if compress {
            let t = Instant::now();
            builder.push(fp, payload);
            self.stats.compress_time += t.elapsed();
        } else {
            builder.push(fp, payload);
        }
        Ok(builder.id())
    }

    fn seal_container(&mut self) -> Result<()> {
        if let Some(builder) = self.builder.take() {
            if builder.is_empty() {
                return Ok(());
            }
            self.stats.add_compression(&builder.compression_stats());
            let (data, meta) = builder.seal();
            match &self.sink {
                // Pipelined: hand off to the async uploader. Containers are
                // sealed — and ids allocated — in stream order, so the
                // queue's FIFO order is container-id order; the uploader's
                // time is folded into network_time when the stages join.
                Some(sink) => sink.push(data, meta)?,
                None => {
                    let t = Instant::now();
                    self.pipeline.storage.put_container(data, &meta)?;
                    self.stats.network_time += t.elapsed();
                }
            }
        }
        Ok(())
    }

    /// Close the current segment: apply history-aware chunk merging, then
    /// append the segment recipe.
    fn close_segment(&mut self) -> Result<()> {
        if self.cur_records.is_empty() {
            return Ok(());
        }
        let records = std::mem::take(&mut self.cur_records);
        let spans = std::mem::take(&mut self.cur_spans);
        let merged = if self.config().chunk_merging {
            self.merge_runs(records, &spans)?
        } else {
            records
        };
        self.segments.push(SegmentRecipe::new(merged));
        Ok(())
    }

    /// History-aware chunk merging (§IV-C): consecutive plain records whose
    /// `duplicateTimes` reached the threshold merge into a superchunk whose
    /// payload is written to the current container.
    fn merge_runs(
        &mut self,
        records: Vec<ChunkRecord>,
        spans: &[(usize, usize)],
    ) -> Result<Vec<ChunkRecord>> {
        let threshold = self.config().merge_threshold;
        let min_members = self.config().superchunk_min_members;
        let max_members = self.config().superchunk_max_members;
        // A superchunk payload must fit in one container.
        let max_bytes = self.config().container_capacity;
        let mut out = Vec::with_capacity(records.len());
        let mut i = 0usize;
        while i < records.len() {
            let eligible = |r: &ChunkRecord| !r.is_super() && r.duplicate_times >= threshold;
            if !eligible(&records[i]) {
                out.push(records[i]);
                i += 1;
                continue;
            }
            // Extend the run while records stay eligible and within caps.
            let mut j = i + 1;
            let mut bytes = records[i].size as usize;
            while j < records.len()
                && j - i < max_members
                && eligible(&records[j])
                && bytes + records[j].size as usize <= max_bytes
            {
                bytes += records[j].size as usize;
                j += 1;
            }
            if j - i < min_members {
                out.push(records[i]);
                i += 1;
                continue;
            }
            let (start, _) = spans[i];
            let (_, end) = spans[j - 1];
            debug_assert_eq!(end - start, bytes);
            let payload = &self.data[start..end];
            let t = Instant::now();
            let sc_fp = fingerprint(payload);
            self.stats.fingerprint_time += t.elapsed();
            // An identical run may merge more than once in the same stream
            // (self-reference): the payload is stored only once.
            if let Some(existing) = self.local_index.get(&sc_fp).copied() {
                self.stats.chunks_merged += (j - i) as u64;
                out.push(existing);
                i = j;
                continue;
            }
            let container_id = self.push_to_container(sc_fp, payload)?;
            let rec = ChunkRecord {
                fp: sc_fp,
                container_id,
                size: bytes as u32,
                duplicate_times: records[i..j]
                    .iter()
                    .map(|r| r.duplicate_times)
                    .min()
                    .unwrap_or(0),
                super_chunk: Some(SuperChunkInfo {
                    first_chunk: records[i].fp,
                    first_chunk_size: records[i].size,
                    member_count: (j - i) as u32,
                }),
            };
            // The superchunk payload is stored anew: the online dedup ratio
            // pays for the future speed-up (Fig 6(b)).
            self.stats.stored_bytes += bytes as u64;
            self.stats.superchunks_created += 1;
            self.stats.chunks_merged += (j - i) as u64;
            self.local_index.insert(sc_fp, rec);
            out.push(rec);
            i = j;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn setup() -> (Oss, StorageLayer, SimilarFileIndex, SlimConfig) {
        let oss = Oss::in_memory();
        let storage = StorageLayer::open(Arc::new(oss.clone()));
        (
            oss,
            storage,
            SimilarFileIndex::new(),
            SlimConfig::small_for_tests(),
        )
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn backup(
        storage: &StorageLayer,
        similar: &SimilarFileIndex,
        cfg: &SlimConfig,
        file: &FileId,
        version: u64,
        bytes: &[u8],
    ) -> BackupOutcome {
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(cfg));
        let pipeline = BackupPipeline::new(storage, similar, &chunker, cfg);
        pipeline
            .backup_file(file, VersionId(version), bytes)
            .unwrap()
    }

    /// Reassemble a file from its recipe by reading containers directly
    /// (restore correctness is tested end-to-end in the restore module; this
    /// is the minimal oracle for backup tests).
    fn reassemble(storage: &StorageLayer, file: &FileId, version: u64) -> Vec<u8> {
        let recipe = storage.get_recipe(file, VersionId(version)).unwrap();
        let mut out = Vec::new();
        for rec in recipe.records() {
            let meta = storage.get_container_meta(rec.container_id).unwrap();
            let entry = meta.find(&rec.fp).expect("chunk in container");
            let data = storage.get_container_data(rec.container_id).unwrap();
            out.extend_from_slice(&entry.payload_from(&data).unwrap());
        }
        out
    }

    #[test]
    fn first_backup_stores_everything_and_restores() {
        let (_oss, storage, similar, cfg) = setup();
        let file = FileId::new("f");
        let input = data(1, 40_000);
        let out = backup(&storage, &similar, &cfg, &file, 0, &input);
        assert_eq!(out.info.logical_bytes, 40_000);
        assert_eq!(out.stats.duplicates, 0, "nothing to dedup on v0");
        assert!(out.info.stored_bytes >= 39_000, "v0 is stored nearly whole");
        assert!(!out.new_containers.is_empty());
        assert_eq!(reassemble(&storage, &file, 0), input);
    }

    #[test]
    fn second_version_dedups_against_first() {
        let (_oss, storage, similar, cfg) = setup();
        let file = FileId::new("f");
        let v0 = data(2, 60_000);
        backup(&storage, &similar, &cfg, &file, 0, &v0);
        // v1 = v0 with a small mutation in the middle.
        let mut v1 = v0.clone();
        v1[30_000..30_500].copy_from_slice(&data(99, 500));
        let out = backup(&storage, &similar, &cfg, &file, 1, &v1);
        assert!(
            out.stats.dedup_ratio() > 0.8,
            "dedup ratio too low: {}",
            out.stats.dedup_ratio()
        );
        assert!(out.stats.duplicates > 0);
        assert!(
            out.stats.segments_prefetched > 0,
            "similar segments fetched"
        );
        assert_eq!(reassemble(&storage, &file, 1), v1);
        // v0 must still restore.
        assert_eq!(reassemble(&storage, &file, 0), v0);
    }

    #[test]
    fn skip_chunking_fires_on_duplicate_runs() {
        let (_oss, storage, similar, cfg) = setup();
        let file = FileId::new("f");
        let v0 = data(3, 80_000);
        backup(&storage, &similar, &cfg, &file, 0, &v0);
        let out = backup(&storage, &similar, &cfg, &file, 1, &v0);
        assert!(
            out.stats.skip_hits > 10,
            "identical content should skip-chunk: {:?}",
            out.stats
        );
        assert!(out.stats.dedup_ratio() > 0.95);
    }

    #[test]
    fn skip_chunking_off_still_correct() {
        let (_oss, storage, similar, mut cfg) = setup();
        cfg.skip_chunking = false;
        let file = FileId::new("f");
        let v0 = data(4, 50_000);
        backup(&storage, &similar, &cfg, &file, 0, &v0);
        let out = backup(&storage, &similar, &cfg, &file, 1, &v0);
        assert_eq!(out.stats.skip_hits, 0);
        assert!(out.stats.dedup_ratio() > 0.95);
        assert_eq!(reassemble(&storage, &file, 1), v0);
    }

    #[test]
    fn chunk_stream_identical_with_and_without_skip() {
        // Fig 5(b): skip chunking must not change the dedup ratio. Stronger:
        // the recipes must describe the same chunk boundaries.
        let (_, storage_a, similar_a, mut cfg_a) = setup();
        cfg_a.skip_chunking = true;
        cfg_a.chunk_merging = false;
        let (_, storage_b, similar_b, mut cfg_b) = setup();
        cfg_b.skip_chunking = false;
        cfg_b.chunk_merging = false;

        let file = FileId::new("f");
        let v0 = data(5, 60_000);
        let mut v1 = v0.clone();
        v1[10_000..10_200].copy_from_slice(&data(50, 200));
        v1[40_000..40_050].copy_from_slice(&data(51, 50));

        for (storage, similar, cfg) in [
            (&storage_a, &similar_a, &cfg_a),
            (&storage_b, &similar_b, &cfg_b),
        ] {
            backup(storage, similar, cfg, &file, 0, &v0);
            backup(storage, similar, cfg, &file, 1, &v1);
        }
        let ra: Vec<(Fingerprint, u32)> = storage_a
            .get_recipe(&file, VersionId(1))
            .unwrap()
            .records()
            .map(|r| (r.fp, r.size))
            .collect();
        let rb: Vec<(Fingerprint, u32)> = storage_b
            .get_recipe(&file, VersionId(1))
            .unwrap()
            .records()
            .map(|r| (r.fp, r.size))
            .collect();
        assert_eq!(ra, rb, "skip chunking changed the chunk stream");
    }

    #[test]
    fn chunk_merging_creates_and_matches_superchunks() {
        let (_oss, storage, similar, mut cfg) = setup();
        cfg.merge_threshold = 2;
        let file = FileId::new("f");
        let input = data(6, 60_000);
        let mut super_seen = 0;
        for v in 0..6u64 {
            let out = backup(&storage, &similar, &cfg, &file, v, &input);
            super_seen += out.stats.super_hits;
            assert_eq!(reassemble(&storage, &file, v), input, "version {v}");
            if v >= 3 {
                let recipe = storage.get_recipe(&file, VersionId(v)).unwrap();
                let supers = recipe.records().filter(|r| r.is_super()).count();
                assert!(supers > 0, "superchunks expected by v{v}");
            }
        }
        assert!(super_seen > 0, "Algorithm 1 never matched a superchunk");
    }

    #[test]
    fn merging_reduces_record_count() {
        let (_oss, storage, similar, mut cfg) = setup();
        cfg.merge_threshold = 2;
        let file = FileId::new("f");
        let input = data(7, 80_000);
        let mut counts = Vec::new();
        for v in 0..5u64 {
            backup(&storage, &similar, &cfg, &file, v, &input);
            counts.push(
                storage
                    .get_recipe(&file, VersionId(v))
                    .unwrap()
                    .record_count(),
            );
        }
        assert!(
            counts.last().unwrap() * 3 < counts[0],
            "merging should shrink the recipe: {counts:?}"
        );
    }

    #[test]
    fn renamed_file_detected_by_similarity() {
        let (_oss, storage, similar, cfg) = setup();
        let input = data(8, 60_000);
        backup(
            &storage,
            &similar,
            &cfg,
            &FileId::new("old-name"),
            0,
            &input,
        );
        let out = backup(
            &storage,
            &similar,
            &cfg,
            &FileId::new("new-name"),
            1,
            &input,
        );
        assert!(
            out.stats.dedup_ratio() > 0.9,
            "similar-file detection failed: {}",
            out.stats.dedup_ratio()
        );
    }

    #[test]
    fn unrelated_file_stores_fresh() {
        let (_oss, storage, similar, cfg) = setup();
        backup(
            &storage,
            &similar,
            &cfg,
            &FileId::new("a"),
            0,
            &data(9, 40_000),
        );
        let out = backup(
            &storage,
            &similar,
            &cfg,
            &FileId::new("b"),
            0,
            &data(10, 40_000),
        );
        assert!(out.stats.dedup_ratio() < 0.05);
    }

    #[test]
    fn self_reference_deduped_within_stream() {
        let (_oss, storage, similar, mut cfg) = setup();
        cfg.chunk_merging = false;
        let file = FileId::new("f");
        let block = data(11, 20_000);
        let mut input = block.clone();
        input.extend_from_slice(&block); // the same content twice
        let out = backup(&storage, &similar, &cfg, &file, 0, &input);
        assert!(
            out.stats.dedup_ratio() > 0.4,
            "second half should dedup against the first: {}",
            out.stats.dedup_ratio()
        );
        assert_eq!(reassemble(&storage, &file, 0), input);
    }

    #[test]
    fn empty_file_backup() {
        let (_oss, storage, similar, cfg) = setup();
        let file = FileId::new("empty");
        let out = backup(&storage, &similar, &cfg, &file, 0, &[]);
        assert_eq!(out.info.logical_bytes, 0);
        assert_eq!(out.stats.chunks, 0);
        assert_eq!(reassemble(&storage, &file, 0), Vec::<u8>::new());
    }

    #[test]
    fn phase_times_are_recorded() {
        let (_oss, storage, similar, cfg) = setup();
        let out = backup(
            &storage,
            &similar,
            &cfg,
            &FileId::new("t"),
            0,
            &data(12, 100_000),
        );
        assert!(out.stats.chunking_time > std::time::Duration::ZERO);
        assert!(out.stats.fingerprint_time > std::time::Duration::ZERO);
        assert!(out.stats.wall_time >= out.stats.chunking_time);
    }

    #[test]
    fn tiny_file_with_appended_tail_still_dedups() {
        // Regression: with only a handful of chunks, random sampling can
        // select just the tail chunk — which an append then changes, leaving
        // no index hit at all. The always-indexed segment-first record must
        // anchor the chain.
        let (_oss, storage, similar, mut cfg) = setup();
        // Few, large chunks relative to the file.
        cfg.sample_rate = 1 << 20; // sampling selects (almost) nothing
        let file = FileId::new("f");
        let v0 = data(21, 6_000);
        let mut v1 = v0.clone();
        v1.extend_from_slice(&data(22, 300)); // append changes only the tail
        backup(&storage, &similar, &cfg, &file, 0, &v0);
        let out = backup(&storage, &similar, &cfg, &file, 1, &v1);
        assert!(
            out.stats.dedup_ratio() > 0.7,
            "appended tiny file must dedup its unchanged head: {}",
            out.stats.dedup_ratio()
        );
        assert_eq!(reassemble(&storage, &file, 1), v1);
    }

    /// Full bucket contents, sorted by key — the byte-identity oracle for
    /// pipelined-vs-sequential comparisons.
    fn bucket(oss: &Oss) -> Vec<(String, Vec<u8>)> {
        use slim_oss::ObjectStore;
        let mut keys = oss.list("");
        keys.sort();
        keys.into_iter()
            .map(|k| {
                let bytes = oss.get(&k).unwrap().to_vec();
                (k, bytes)
            })
            .collect()
    }

    #[test]
    fn pipelined_backup_is_byte_identical_to_sequential() {
        // The acceptance invariant of the parallel backup plane: same
        // containers, same recipes, same dedup statistics — for every
        // thread count, with every history-aware fast path enabled.
        let file = FileId::new("f");
        let v0 = data(30, 90_000);
        let mut v1 = v0.clone();
        v1[20_000..20_400].copy_from_slice(&data(31, 400));
        let mut v2 = v1.clone();
        v2.extend_from_slice(&v0[..10_000]); // tail self-references the head
        let versions = [&v0, &v1, &v2];

        let run = |threads: usize| {
            let (oss, storage, similar, mut cfg) = setup();
            cfg.merge_threshold = 2; // superchunks by v2
            cfg.backup_pipeline_threads = threads;
            let mut sigs = Vec::new();
            for (v, bytes) in versions.iter().enumerate() {
                let out = backup(&storage, &similar, &cfg, &file, v as u64, bytes);
                let s = &out.stats;
                sigs.push((
                    s.logical_bytes,
                    s.stored_bytes,
                    s.chunks,
                    s.duplicates,
                    s.skip_hits,
                    s.skip_misses,
                    s.super_hits,
                    s.super_misses,
                    s.superchunks_created,
                    s.chunks_merged,
                    s.segments_prefetched,
                ));
            }
            (bucket(&oss), sigs)
        };

        let (seq_bucket, seq_sigs) = run(0);
        for threads in [2usize, 3, 4, 8] {
            let (pipe_bucket, pipe_sigs) = run(threads);
            assert_eq!(
                pipe_sigs, seq_sigs,
                "dedup statistics diverged at {threads} threads"
            );
            assert_eq!(
                pipe_bucket.len(),
                seq_bucket.len(),
                "object count diverged at {threads} threads"
            );
            for ((pk, pv), (sk, sv)) in pipe_bucket.iter().zip(&seq_bucket) {
                assert_eq!(pk, sk, "key set diverged at {threads} threads");
                assert_eq!(pv, sv, "object {pk} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn pipelined_backup_uses_the_feed() {
        let (_oss, storage, similar, mut cfg) = setup();
        cfg.backup_pipeline_threads = 4;
        let file = FileId::new("f");
        let input = data(32, 60_000);
        let out = backup(&storage, &similar, &cfg, &file, 0, &input);
        assert!(out.stats.pipeline_chunks_fed > 0, "feed never consulted");
        assert_eq!(
            out.stats.pipeline_fallbacks, 0,
            "feed misaligned: {:?}",
            out.stats
        );
        assert!(out.stats.pipeline_async_uploads > 0, "uploader idle");
        assert_eq!(reassemble(&storage, &file, 0), input);
        // A duplicate second version exercises the feed under skip hits.
        let out = backup(&storage, &similar, &cfg, &file, 1, &input);
        assert!(out.stats.skip_hits > 0);
        assert_eq!(out.stats.pipeline_fallbacks, 0);
        assert_eq!(reassemble(&storage, &file, 1), input);
    }

    #[test]
    fn container_refs_cover_recipe() {
        let (_oss, storage, similar, cfg) = setup();
        let file = FileId::new("f");
        let input = data(13, 30_000);
        backup(&storage, &similar, &cfg, &file, 0, &input);
        let out = backup(&storage, &similar, &cfg, &file, 1, &input);
        let recipe = storage.get_recipe(&file, VersionId(1)).unwrap();
        let total_refs: u64 = out.container_refs.values().sum();
        assert_eq!(total_refs, recipe.record_count() as u64);
    }
}
