//! The pipelined parallel backup plane.
//!
//! Splits the sequential hot loop of [`crate::backup::BackupPipeline`] into
//! bounded-queue stages so CPU-side chunking/fingerprinting overlaps both
//! itself and the OSS uploads:
//!
//! ```text
//!  (1) feeder ──(seq,start,end)──▶ (2) fp workers ──(seq,ChunkRef)──▶ (3)
//!      rolling-hash CDC scan           SHA-1 pool        in-order dedup
//!                                                        (caller thread)
//!                                                              │ sealed
//!                                                              ▼ containers
//!                                                  (4) uploader ──▶ OSS
//! ```
//!
//! Stage (3) is the *unchanged* dedup loop: cache lookups, similar-index
//! sampling, skip-chunking and self-reference semantics all run on one
//! thread, in stream order, exactly as the sequential path does. The feed
//! only precomputes what that loop would have computed anyway — the plain
//! CDC cut sequence and its fingerprints — which is sound because every
//! history-aware jump is accepted only on a fingerprint match, i.e. content
//! equality, so a jump always lands back on the plain-CDC boundary sequence
//! (the invariant `chunk_stream_identical_with_and_without_skip` pins down).
//! Output is therefore byte-identical to the sequential path; only
//! wall-clock and `pipeline_*` telemetry differ.
//!
//! **Ordering/commit invariants.** Container ids are allocated by stage (3)
//! in stream order and sealed containers enter the upload queue in that same
//! order; the single uploader PUTs them sequentially, so containers commit
//! in container-id order. [`UploadSink::finish`] joins the uploader *before*
//! the recipe/index PUTs, preserving the crash-commit protocol (containers →
//! recipe → recipe index → version manifest).
//!
//! **Memory bounds.** The feed queues carry `(seq, ChunkRef)` tuples (~40
//! bytes), bounded at [`FEED_QUEUE`] each; the out-of-order buffer holds at
//! most the in-flight window. The upload queue holds at most
//! [`UPLOAD_QUEUE`] sealed containers (double buffering), so a pipelined job
//! uses at most ~`(UPLOAD_QUEUE + 1) * container_capacity` bytes more than a
//! sequential one. A stalled tenant therefore still fits the admission
//! byte-budget reasoning of the frontend (see
//! `FrontendConfig::coupled_to_pipeline`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use slim_chunking::{boundaries, fingerprint, ChunkRef, Chunker};
use slim_types::{ContainerMeta, Result, SlimError};

use crate::stats::BackupStats;
use crate::storage::StorageLayer;

/// Bounded depth of the feeder→worker and worker→consumer queues, in chunk
/// descriptors. Deep enough to ride out scheduling jitter, small enough that
/// the feeder can never run unboundedly ahead of the dedup stage.
const FEED_QUEUE: usize = 512;

/// Sealed containers allowed to queue behind the uploader (double
/// buffering): the dedup stage fills container N+2 while N uploads and N+1
/// waits.
const UPLOAD_QUEUE: usize = 2;

/// Counters and phase-time accumulators shared across pipeline threads,
/// folded into the job's [`BackupStats`] once the stages have joined.
#[derive(Default)]
pub(crate) struct PipelineShared {
    chunk_nanos: AtomicU64,
    fp_nanos: AtomicU64,
    upload_nanos: AtomicU64,
    stall_nanos: AtomicU64,
    fed: AtomicU64,
    fallbacks: AtomicU64,
    uploads: AtomicU64,
}

impl PipelineShared {
    fn add(cell: &AtomicU64, d: Duration) {
        cell.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Fold the accumulated thread work into the job's stats. The worker
    /// phase times land in the same `chunking`/`fingerprinting`/`container
    /// I/O` buckets the sequential path uses — they measure the same work,
    /// just done elsewhere — while the `pipeline_*` fields are new.
    pub(crate) fn fold_into(&self, stats: &mut BackupStats) {
        let ns = |cell: &AtomicU64| Duration::from_nanos(cell.load(Ordering::Relaxed));
        stats.chunking_time += ns(&self.chunk_nanos);
        stats.fingerprint_time += ns(&self.fp_nanos);
        stats.network_time += ns(&self.upload_nanos);
        stats.pipeline_stall_time += ns(&self.stall_nanos);
        stats.pipeline_chunks_fed += self.fed.load(Ordering::Relaxed);
        stats.pipeline_fallbacks += self.fallbacks.load(Ordering::Relaxed);
        stats.pipeline_async_uploads += self.uploads.load(Ordering::Relaxed);
    }
}

/// Consumer end of stages (1)+(2): the plain-CDC chunk stream of the input,
/// in order, with fingerprints computed by the worker pool. The dedup stage
/// pulls from it at its cursor; chunks the cursor jumped over (skip hits,
/// superchunk matches) are discarded on the fly.
pub(crate) struct ChunkFeed {
    rx: Receiver<(u64, ChunkRef)>,
    /// Out-of-order arrivals parked until their predecessors show up.
    pending: BTreeMap<u64, ChunkRef>,
    next_seq: u64,
    head: Option<ChunkRef>,
    exhausted: bool,
    shared: Arc<PipelineShared>,
}

impl ChunkFeed {
    /// Spawn the feeder (and `fp_workers` fingerprint workers when > 0)
    /// inside `scope` and return the consumer handle. With zero workers the
    /// feeder fingerprints inline — still one stage ahead of the consumer.
    pub(crate) fn spawn<'scope, 'env>(
        scope: &'scope Scope<'scope, 'env>,
        chunker: &'env dyn Chunker,
        data: &'env [u8],
        fp_workers: usize,
        shared: Arc<PipelineShared>,
    ) -> ChunkFeed {
        let (done_tx, done_rx) = bounded::<(u64, ChunkRef)>(FEED_QUEUE);
        if fp_workers == 0 {
            let shared_f = shared.clone();
            scope.spawn(move || {
                let mut seq = 0u64;
                let mut iter = boundaries(chunker, data);
                loop {
                    let t = Instant::now();
                    let span = iter.next();
                    PipelineShared::add(&shared_f.chunk_nanos, t.elapsed());
                    let Some((start, end)) = span else { return };
                    let t = Instant::now();
                    let fp = fingerprint(&data[start..end]);
                    PipelineShared::add(&shared_f.fp_nanos, t.elapsed());
                    if done_tx.send((seq, ChunkRef { start, end, fp })).is_err() {
                        return; // consumer is gone
                    }
                    seq += 1;
                }
            });
        } else {
            let (work_tx, work_rx) = bounded::<(u64, usize, usize)>(FEED_QUEUE);
            for _ in 0..fp_workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let shared_w = shared.clone();
                scope.spawn(move || {
                    while let Ok((seq, start, end)) = work_rx.recv() {
                        let t = Instant::now();
                        let fp = fingerprint(&data[start..end]);
                        PipelineShared::add(&shared_w.fp_nanos, t.elapsed());
                        if done_tx.send((seq, ChunkRef { start, end, fp })).is_err() {
                            return;
                        }
                    }
                });
            }
            let shared_f = shared.clone();
            scope.spawn(move || {
                let mut seq = 0u64;
                let mut iter = boundaries(chunker, data);
                loop {
                    let t = Instant::now();
                    let span = iter.next();
                    PipelineShared::add(&shared_f.chunk_nanos, t.elapsed());
                    let Some((start, end)) = span else { return };
                    if work_tx.send((seq, start, end)).is_err() {
                        return; // workers are gone
                    }
                    seq += 1;
                }
            });
        }
        ChunkFeed {
            rx: done_rx,
            pending: BTreeMap::new(),
            next_seq: 0,
            head: None,
            exhausted: false,
            shared,
        }
    }

    /// Block until the next in-order chunk is buffered in `head` (or the
    /// feed is exhausted).
    fn fill_head(&mut self) {
        while self.head.is_none() && !self.exhausted {
            if let Some(c) = self.pending.remove(&self.next_seq) {
                self.head = Some(c);
                self.next_seq += 1;
                return;
            }
            let t = Instant::now();
            let msg = self.rx.recv();
            PipelineShared::add(&self.shared.stall_nanos, t.elapsed());
            match msg {
                Ok((seq, c)) => {
                    if seq == self.next_seq {
                        self.head = Some(c);
                        self.next_seq += 1;
                    } else {
                        self.pending.insert(seq, c);
                    }
                }
                Err(_) => self.exhausted = true,
            }
        }
    }

    /// The plain-CDC chunk starting exactly at `pos`, without consuming it.
    /// Chunks entirely behind `pos` (jumped over by a skip or superchunk
    /// match) are discarded. Returns `None` if the feed is exhausted or — a
    /// defensive case that content-local CDC makes unreachable — misaligned
    /// past `pos`; the caller then computes inline.
    pub(crate) fn peek_at(&mut self, pos: usize) -> Option<ChunkRef> {
        loop {
            self.fill_head();
            let c = self.head?;
            if c.start < pos {
                self.head = None; // jumped over: discard and refill
                continue;
            }
            if c.start == pos {
                return Some(c);
            }
            debug_assert!(false, "feed misaligned: chunk at {} cursor {pos}", c.start);
            return None;
        }
    }

    /// Consume the buffered head chunk (after a successful `peek_at`).
    pub(crate) fn consume_head(&mut self) {
        debug_assert!(self.head.is_some(), "consume without peek");
        self.head = None;
        self.shared.fed.fetch_add(1, Ordering::Relaxed);
    }

    /// The chunk at `pos`, consumed, or `None` (see [`ChunkFeed::peek_at`]).
    pub(crate) fn take_at(&mut self, pos: usize) -> Option<ChunkRef> {
        let c = self.peek_at(pos)?;
        self.consume_head();
        Some(c)
    }

    /// Record an inline fallback (feed exhausted or misaligned).
    pub(crate) fn note_fallback(&self) {
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Stage (4): sealed containers travel a bounded queue to one uploader
/// thread, which PUTs them strictly in arrival (= container-id) order.
pub(crate) struct UploadSink {
    tx: Option<Sender<(Bytes, ContainerMeta)>>,
    state: Arc<SinkState>,
}

struct SinkState {
    failed: AtomicBool,
    error: Mutex<Option<SlimError>>,
}

impl UploadSink {
    /// Spawn the uploader inside `scope` over its own handle to the storage
    /// layer. Returns the sink plus the uploader's join handle (consumed by
    /// [`UploadSink::finish`]).
    pub(crate) fn spawn<'scope>(
        scope: &'scope Scope<'scope, '_>,
        storage: StorageLayer,
        shared: Arc<PipelineShared>,
    ) -> (UploadSink, ScopedJoinHandle<'scope, ()>) {
        let (tx, rx) = bounded::<(Bytes, ContainerMeta)>(UPLOAD_QUEUE);
        let state = Arc::new(SinkState {
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        });
        let state_w = state.clone();
        // Scoped threads still don't inherit thread-locals: carry the
        // ambient request deadline into the uploader so its PUTs observe
        // the caller's remaining budget.
        let deadline = slim_types::Deadline::current();
        let handle = scope.spawn(move || {
            let _deadline = deadline.install();
            while let Ok((data, meta)) = rx.recv() {
                if state_w.failed.load(Ordering::Acquire) {
                    // A container already failed to commit: later containers
                    // must not commit either (the job is doomed and every
                    // skipped PUT is one orphan fewer to scrub).
                    continue;
                }
                let t = Instant::now();
                match storage.put_container(data, &meta) {
                    Ok(()) => {
                        PipelineShared::add(&shared.upload_nanos, t.elapsed());
                        shared.uploads.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        *state_w.error.lock() = Some(e);
                        state_w.failed.store(true, Ordering::Release);
                    }
                }
            }
        });
        (
            UploadSink {
                tx: Some(tx),
                state,
            },
            handle,
        )
    }

    /// Queue a sealed container for upload. Surfaces the uploader's first
    /// error (once), aborting the job before it can seal more work.
    pub(crate) fn push(&self, data: Bytes, meta: ContainerMeta) -> Result<()> {
        if self.state.failed.load(Ordering::Acquire) {
            if let Some(e) = self.state.error.lock().take() {
                return Err(e);
            }
            // The error was already delivered; refuse further pushes.
            return Err(SlimError::Transient(
                "container uploader already failed".into(),
            ));
        }
        let tx = self.tx.as_ref().expect("push after finish");
        if tx.send((data, meta)).is_err() {
            if let Some(e) = self.state.error.lock().take() {
                return Err(e);
            }
            return Err(SlimError::Transient("container uploader stopped".into()));
        }
        Ok(())
    }

    /// Close the queue, join the uploader, and surface any upload error not
    /// yet delivered through [`UploadSink::push`]. Must run before the
    /// recipe/index PUTs: a version must never commit over unwritten
    /// containers.
    pub(crate) fn finish(mut self, handle: ScopedJoinHandle<'_, ()>) -> Result<()> {
        drop(self.tx.take());
        let _ = handle.join();
        match self.state.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{chunk_all, ChunkSpec, FastCdcChunker};
    use slim_oss::{FaultPlan, Oss};
    use slim_types::{ContainerBuilder, ContainerId, Fingerprint};

    fn chunker() -> FastCdcChunker {
        FastCdcChunker::new(ChunkSpec::new(64, 256, 1024))
    }

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    #[test]
    fn feed_reproduces_the_plain_cdc_stream() {
        let c = chunker();
        let data = random_data(100_000, 1);
        let expected = chunk_all(&c, &data);
        for workers in [0usize, 1, 3] {
            let shared = Arc::new(PipelineShared::default());
            let got = std::thread::scope(|s| {
                let mut feed = ChunkFeed::spawn(s, &c, &data, workers, shared.clone());
                let mut got = Vec::new();
                let mut pos = 0usize;
                while let Some(ch) = feed.take_at(pos) {
                    pos = ch.end;
                    got.push(ch);
                }
                got
            });
            assert_eq!(got, expected, "workers = {workers}");
            assert_eq!(
                shared.fed.load(Ordering::Relaxed),
                expected.len() as u64,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn feed_discards_jumped_over_chunks() {
        let c = chunker();
        let data = random_data(60_000, 2);
        let expected = chunk_all(&c, &data);
        assert!(expected.len() > 8, "need enough chunks to jump over");
        std::thread::scope(|s| {
            let shared = Arc::new(PipelineShared::default());
            let mut feed = ChunkFeed::spawn(s, &c, &data, 2, shared);
            // Consume two chunks, then jump the cursor over the next three —
            // the way a superchunk hit moves it — and resume.
            let a = feed.take_at(0).unwrap();
            let b = feed.take_at(a.end).unwrap();
            let resume = expected[5].start;
            assert!(resume > b.end);
            let after_jump = feed.take_at(resume).unwrap();
            assert_eq!(after_jump, expected[5]);
        });
    }

    #[test]
    fn feed_peek_does_not_consume() {
        let c = chunker();
        let data = random_data(20_000, 3);
        std::thread::scope(|s| {
            let shared = Arc::new(PipelineShared::default());
            let mut feed = ChunkFeed::spawn(s, &c, &data, 1, shared);
            let peeked = feed.peek_at(0).unwrap();
            let taken = feed.take_at(0).unwrap();
            assert_eq!(peeked, taken);
        });
    }

    fn sealed(storage: &StorageLayer, b: u8) -> (ContainerId, Bytes, ContainerMeta) {
        let id = storage.allocate_container_id();
        let mut builder = ContainerBuilder::new(id, 4096);
        builder.push(Fingerprint::from_slice(&[b; 20]).unwrap(), &[b; 128]);
        let (data, meta) = builder.seal();
        (id, data, meta)
    }

    #[test]
    fn sink_uploads_everything_before_finish_returns() {
        let oss = Arc::new(Oss::in_memory());
        let storage = StorageLayer::open(oss.clone());
        let shared = Arc::new(PipelineShared::default());
        let ids = std::thread::scope(|s| {
            let (sink, handle) = UploadSink::spawn(s, storage.clone(), shared.clone());
            let mut ids = Vec::new();
            for b in 0..10u8 {
                let (id, data, meta) = sealed(&storage, b);
                sink.push(data, meta).unwrap_or_else(|e| panic!("{e}"));
                ids.push(id);
            }
            sink.finish(handle).unwrap();
            ids
        });
        assert_eq!(shared.uploads.load(Ordering::Relaxed), 10);
        for id in ids {
            storage.get_container_meta(id).unwrap();
            storage.get_container_data(id).unwrap();
        }
    }

    #[test]
    fn sink_surfaces_upload_errors_and_stops_committing() {
        let oss = Arc::new(Oss::in_memory());
        let storage = StorageLayer::open(oss.clone());
        oss.inject_fault(FaultPlan::NthOnPrefix {
            prefix: "containers/".into(),
            nth: 3,
        });
        let shared = Arc::new(PipelineShared::default());
        let err = std::thread::scope(|s| {
            let (sink, handle) = UploadSink::spawn(s, storage.clone(), shared.clone());
            for b in 0..8u8 {
                let (_, data, meta) = sealed(&storage, b);
                if let Err(e) = sink.push(data, meta) {
                    drop(sink.finish(handle));
                    return e;
                }
            }
            sink.finish(handle).unwrap_err()
        });
        assert!(
            matches!(err, SlimError::InjectedFault(_)),
            "uploader error type must survive: {err:?}"
        );
        // Once a container failed, later ones are skipped, not committed.
        assert!(shared.uploads.load(Ordering::Relaxed) < 8);
    }
}
