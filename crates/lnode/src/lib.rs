//! The SLIMSTORE L-node: fast online deduplication and restore (§IV, §V-A).
//!
//! L-nodes are the stateless workers of the computing layer. A backup job
//! runs the three-step workflow of §IV-A — detect a historical/similar file,
//! prefetch similar segment recipes and dedup against them, segment and
//! persist — accelerated by the two history-aware techniques:
//!
//! * **skip chunking** (§IV-B): after a confirmed duplicate, jump straight to
//!   the predicted next cut point and verify by fingerprint, skipping the
//!   byte-by-byte CDC scan;
//! * **chunk merging / SuperChunking** (§IV-C, Algorithm 1): runs of
//!   long-duplicated chunks merge into superchunks, and superchunks of the
//!   previous version are matched via their first member chunk.
//!
//! A restore job replays a recipe with the §V-A machinery: the **full-vision
//! cache** (counting bloom filter over the whole recipe + S_I/S_L/S_U chunk
//! states + memory/disk tiers) and **LAW-based multi-threaded prefetching**.
//!
//! [`storage::StorageLayer`] — the shared view of the OSS storage layer
//! (container store, recipe store, manifests) — also lives here because both
//! node types are built on it.

pub mod backup;
pub mod fv_cache;
pub mod node;
pub(crate) mod pipeline;
pub mod prefetch;
pub mod restore;
pub mod stats;
pub mod storage;

pub use backup::{BackupOutcome, BackupPipeline};
pub use fv_cache::FullVisionCache;
pub use node::LNode;
pub use restore::{RestoreEngine, RestoreOptions};
pub use stats::{BackupStats, RestoreStats};
pub use storage::StorageLayer;
