//! The full-vision restore cache (§V-A).
//!
//! A chunk-granularity cache whose replacement policy sees the *entire*
//! future of the restore, not just a look-ahead window:
//!
//! * a **counting bloom filter** built from the whole recipe records how many
//!   future references each chunk has; restoring one occurrence decrements
//!   it;
//! * chunks are classified **S_I** (inside the LAW — needed soon), **S_L**
//!   (outside the LAW but still referenced in the future) or **S_U**
//!   (useless); only useful chunks are ever admitted, and a chunk whose
//!   future-reference count reaches zero is dropped immediately;
//! * the cache is **two-tier**: when `Cache_m` (memory) fills with useful
//!   chunks, S_L chunks spill to `Cache_d` (L-node local disk) instead of
//!   being evicted — re-promoting from disk is cheap compared with another
//!   OSS container read.
//!
//! With sufficient disk capacity every container is read from OSS **at most
//! once** per restore job, which is the invariant the Fig 8 experiments (and
//! our tests) check.

use std::collections::HashMap;

use bytes::Bytes;
use slim_types::bloom::CountingBloomFilter;
use slim_types::{Fingerprint, Recipe};

/// Which tier a cached chunk currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Mem,
    Disk,
}

/// The full-vision two-tier restore cache.
pub struct FullVisionCache {
    entries: HashMap<Fingerprint, (Tier, Bytes)>,
    mem_bytes: usize,
    disk_bytes: usize,
    mem_cap: usize,
    disk_cap: usize,
    cbf: CountingBloomFilter,
    /// Chunks dropped because even the disk tier was full (each may cost a
    /// repeated container read later).
    pub overflow_drops: u64,
    /// Promotions from the disk tier back to memory.
    pub disk_promotions: u64,
}

impl FullVisionCache {
    /// Build the cache for one restore job: the CBF is seeded with every
    /// record of the recipe (full vision).
    pub fn new(mem_cap: usize, disk_cap: usize, recipe: &Recipe) -> Self {
        let mut cbf = CountingBloomFilter::new(recipe.record_count().max(16));
        for rec in recipe.records() {
            cbf.insert(rec.fp.prefix64());
        }
        FullVisionCache {
            entries: HashMap::new(),
            mem_bytes: 0,
            disk_bytes: 0,
            mem_cap: mem_cap.max(1),
            disk_cap,
            cbf,
            overflow_drops: 0,
            disk_promotions: 0,
        }
    }

    /// Whether `fp` still has future references (may rarely over-approximate,
    /// never under-approximates).
    pub fn still_needed(&self, fp: &Fingerprint) -> bool {
        self.cbf.may_contain(fp.prefix64())
    }

    /// Fetch a chunk, promoting it from disk if needed.
    pub fn get(&mut self, fp: &Fingerprint) -> Option<Bytes> {
        let (tier, data) = self.entries.get_mut(fp)?;
        if *tier == Tier::Disk {
            *tier = Tier::Mem;
            let len = data.len();
            self.disk_promotions += 1;
            let out = data.clone();
            self.disk_bytes -= len;
            self.mem_bytes += len;
            return Some(out);
        }
        Some(data.clone())
    }

    /// Record that one occurrence of `fp` was restored: decrement its future
    /// count and drop the cached copy once it becomes useless (S_U).
    pub fn consume(&mut self, fp: &Fingerprint) {
        self.cbf.remove(fp.prefix64());
        if !self.cbf.may_contain(fp.prefix64()) {
            if let Some((tier, data)) = self.entries.remove(fp) {
                match tier {
                    Tier::Mem => self.mem_bytes -= data.len(),
                    Tier::Disk => self.disk_bytes -= data.len(),
                }
            }
        }
    }

    /// Offer a chunk read from a container. Admitted only if useful (S_I or
    /// S_L); useless (S_U) chunks never occupy cache space.
    pub fn admit(&mut self, fp: Fingerprint, data: Bytes) {
        if !self.still_needed(&fp) {
            return; // S_U: restored already (or never referenced)
        }
        if self.entries.contains_key(&fp) {
            return;
        }
        self.mem_bytes += data.len();
        self.entries.insert(fp, (Tier::Mem, data));
    }

    /// Enforce tier capacities. `in_law` tells whether a chunk is inside the
    /// current look-ahead window (S_I); S_L chunks spill to disk first.
    pub fn enforce(&mut self, in_law: impl Fn(&Fingerprint) -> bool) {
        if self.mem_bytes <= self.mem_cap {
            return;
        }
        // Pass 1: demote S_L chunks (not needed soon) to the disk tier.
        let mut to_demote: Vec<Fingerprint> = Vec::new();
        let mut excess = self.mem_bytes.saturating_sub(self.mem_cap);
        for (fp, (tier, data)) in &self.entries {
            if excess == 0 {
                break;
            }
            if *tier == Tier::Mem && !in_law(fp) {
                to_demote.push(*fp);
                excess = excess.saturating_sub(data.len());
            }
        }
        for fp in to_demote {
            self.demote(&fp);
        }
        // Pass 2: if memory is still over cap (everything left is S_I),
        // demote S_I chunks too — better on disk than re-read from OSS.
        if self.mem_bytes > self.mem_cap {
            let mut to_demote: Vec<Fingerprint> = Vec::new();
            let mut excess = self.mem_bytes - self.mem_cap;
            for (fp, (tier, data)) in &self.entries {
                if excess == 0 {
                    break;
                }
                if *tier == Tier::Mem {
                    to_demote.push(*fp);
                    excess = excess.saturating_sub(data.len());
                }
            }
            for fp in to_demote {
                self.demote(&fp);
            }
        }
    }

    fn demote(&mut self, fp: &Fingerprint) {
        let Some((tier, data)) = self.entries.get_mut(fp) else {
            return;
        };
        if *tier != Tier::Mem {
            return;
        }
        let len = data.len();
        if self.disk_bytes + len > self.disk_cap {
            // Disk full too: drop entirely (may cause a repeated read).
            self.entries.remove(fp);
            self.mem_bytes -= len;
            self.overflow_drops += 1;
            return;
        }
        *tier = Tier::Disk;
        self.mem_bytes -= len;
        self.disk_bytes += len;
    }

    /// Bytes resident in the memory tier.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    /// Bytes resident in the disk tier.
    pub fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    /// Number of cached chunks across both tiers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_types::{ChunkRecord, ContainerId, SegmentRecipe};

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn recipe_of(fps: &[u8]) -> Recipe {
        Recipe {
            segments: vec![SegmentRecipe::new(
                fps.iter()
                    .map(|&b| ChunkRecord::new(fp(b), ContainerId(0), 100, 0))
                    .collect(),
            )],
        }
    }

    #[test]
    fn admit_get_consume_lifecycle() {
        let recipe = recipe_of(&[1, 2, 1]);
        let mut cache = FullVisionCache::new(10_000, 10_000, &recipe);
        cache.admit(fp(1), Bytes::from(vec![0u8; 100]));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&fp(1)).is_some());
        // First consume: fp(1) appears twice, must stay cached.
        cache.consume(&fp(1));
        assert!(cache.get(&fp(1)).is_some(), "still referenced once more");
        // Second consume: now useless, dropped.
        cache.consume(&fp(1));
        assert!(cache.get(&fp(1)).is_none());
        assert_eq!(cache.mem_bytes(), 0);
    }

    #[test]
    fn useless_chunks_not_admitted() {
        let recipe = recipe_of(&[1]);
        let mut cache = FullVisionCache::new(10_000, 10_000, &recipe);
        // fp(9) is not in the recipe at all: S_U on arrival.
        cache.admit(fp(9), Bytes::from(vec![0u8; 100]));
        assert!(cache.is_empty());
    }

    #[test]
    fn spill_to_disk_prefers_out_of_law_chunks() {
        let recipe = recipe_of(&[1, 2, 3, 4]);
        let mut cache = FullVisionCache::new(250, 10_000, &recipe);
        for b in [1u8, 2, 3] {
            cache.admit(fp(b), Bytes::from(vec![b; 100]));
        }
        assert!(cache.mem_bytes() > 250);
        // LAW contains only fp(1): 2 and 3 are S_L and must spill.
        cache.enforce(|f| *f == fp(1));
        assert!(cache.mem_bytes() <= 250, "mem over cap after enforce");
        assert!(cache.disk_bytes() > 0, "S_L chunks should be on disk");
        // All three chunks still retrievable (disk promotes back).
        for b in [1u8, 2, 3] {
            assert!(cache.get(&fp(b)).is_some(), "chunk {b} lost");
        }
        assert!(cache.disk_promotions > 0);
    }

    #[test]
    fn disk_overflow_drops_and_counts() {
        let recipe = recipe_of(&[1, 2, 3]);
        let mut cache = FullVisionCache::new(100, 50, &recipe);
        cache.admit(fp(1), Bytes::from(vec![1; 100]));
        cache.admit(fp(2), Bytes::from(vec![2; 100]));
        cache.enforce(|_| false); // nothing in LAW: both try to spill
        assert!(cache.overflow_drops > 0, "tiny disk must overflow");
    }

    #[test]
    fn all_law_chunks_still_respect_mem_cap() {
        let recipe = recipe_of(&[1, 2, 3]);
        let mut cache = FullVisionCache::new(150, 10_000, &recipe);
        for b in [1u8, 2, 3] {
            cache.admit(fp(b), Bytes::from(vec![b; 100]));
        }
        cache.enforce(|_| true); // everything S_I
        assert!(cache.mem_bytes() <= 150, "pass 2 must demote S_I as well");
        for b in [1u8, 2, 3] {
            assert!(cache.get(&fp(b)).is_some());
        }
    }

    #[test]
    fn duplicate_admit_is_noop() {
        let recipe = recipe_of(&[1, 1]);
        let mut cache = FullVisionCache::new(10_000, 10_000, &recipe);
        cache.admit(fp(1), Bytes::from(vec![0u8; 100]));
        cache.admit(fp(1), Bytes::from(vec![0u8; 100]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.mem_bytes(), 100);
    }
}
