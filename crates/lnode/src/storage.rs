//! The storage layer: SLIMSTORE's view of the object store (§III-B).
//!
//! Wraps an [`ObjectStore`] with the container store, recipe store and
//! version-manifest conventions. All state lives on OSS; the only in-process
//! state is the monotonic container-id allocator, which is recovered on open
//! as the numeric max over every parsed container key (zero-padding makes
//! keys *usually* sort numerically, but recovery must not depend on it —
//! a 13-digit id sorts before any 12-digit one).
//!
//! The handed-in store may be a healing wrapper (`slim_oss::RedundantStore`):
//! whole-object container reads then transparently reconstruct damaged
//! primaries from the redundancy plane. Integrity sweeps that must observe
//! the primary as stored bypass healing via `ObjectStore::get_raw`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use slim_oss::ObjectStore;
use slim_types::{
    crc, layout, ContainerId, ContainerMeta, FileId, Recipe, RecipeIndex, Result, SegmentRecipe,
    SlimError, VersionId, VersionManifest,
};

/// Shared handle to the storage layer. Cheap to clone.
#[derive(Clone)]
pub struct StorageLayer {
    oss: Arc<dyn ObjectStore>,
    next_container: Arc<AtomicU64>,
}

impl StorageLayer {
    /// Open the storage layer on `oss`, recovering the container-id
    /// allocator from the existing key space.
    pub fn open(oss: Arc<dyn ObjectStore>) -> Self {
        // Numeric max over *all* parsed ids, not the lexicographically last
        // key: once an id outgrows the 12-digit key padding it sorts before
        // shorter ids, and recovering from `.last()` would hand out a live
        // id again.
        let next_id = oss
            .list(layout::CONTAINER_PREFIX)
            .iter()
            .filter_map(|k| layout::parse_container_key(k))
            .map(|id| id.0)
            .max()
            .map(|max| max + 1)
            .unwrap_or(0);
        StorageLayer {
            oss,
            next_container: Arc::new(AtomicU64::new(next_id)),
        }
    }

    /// The underlying object store.
    pub fn oss(&self) -> &Arc<dyn ObjectStore> {
        &self.oss
    }

    /// Allocate the next container id (globally monotonic).
    pub fn allocate_container_id(&self) -> ContainerId {
        ContainerId(self.next_container.fetch_add(1, Ordering::SeqCst))
    }

    /// Persist a sealed container (data + metadata).
    ///
    /// Both objects carry a CRC32 trailer ([`crc::seal`]) so that corruption
    /// is detected on read rather than silently restored. The trailer sits
    /// *after* the payload, so chunk offsets recorded in recipes still address
    /// the data object directly and range reads stay trailer-free.
    pub fn put_container(&self, data: Bytes, meta: &ContainerMeta) -> Result<()> {
        self.oss
            .put(&layout::container_data(meta.id), crc::seal(&data))?;
        self.put_container_meta(meta)
    }

    /// Persist only a container's metadata (deletion marks etc.).
    pub fn put_container_meta(&self, meta: &ContainerMeta) -> Result<()> {
        self.oss
            .put(&layout::container_meta(meta.id), crc::seal(&meta.encode()))
    }

    /// Read a container's data object, verifying its CRC32 trailer.
    pub fn get_container_data(&self, id: ContainerId) -> Result<Bytes> {
        let buf = self
            .oss
            .get(&layout::container_data(id))
            .map_err(|e| match e {
                SlimError::ObjectNotFound(_) => SlimError::ContainerMissing(id.0),
                other => other,
            })?;
        crc::unseal(&buf, "container data")
    }

    /// Read a byte range of a container's data object.
    pub fn get_container_range(&self, id: ContainerId, start: u64, len: u64) -> Result<Bytes> {
        self.oss.get_range(&layout::container_data(id), start, len)
    }

    /// Read many containers' data objects in one batched OSS sweep.
    ///
    /// Results are in `ids` order, one per input, with the same error
    /// mapping as [`StorageLayer::get_container_data`].
    pub fn get_container_data_many(&self, ids: &[ContainerId]) -> Vec<Result<Bytes>> {
        let keys: Vec<String> = ids.iter().map(|id| layout::container_data(*id)).collect();
        self.oss
            .get_many(&keys)
            .into_iter()
            .zip(ids)
            .map(|(r, id)| match r {
                Ok(buf) => crc::unseal(&buf, "container data"),
                Err(SlimError::ObjectNotFound(_)) => Err(SlimError::ContainerMissing(id.0)),
                Err(other) => Err(other),
            })
            .collect()
    }

    /// Read many containers' metadata objects in one batched OSS sweep.
    ///
    /// Results are in `ids` order, one per input, with the same error
    /// mapping as [`StorageLayer::get_container_meta`].
    pub fn get_container_meta_many(&self, ids: &[ContainerId]) -> Vec<Result<ContainerMeta>> {
        let keys: Vec<String> = ids.iter().map(|id| layout::container_meta(*id)).collect();
        self.oss
            .get_many(&keys)
            .into_iter()
            .zip(ids)
            .map(|(r, id)| match r {
                Ok(buf) => ContainerMeta::decode(&crc::unseal(&buf, "container meta")?),
                Err(SlimError::ObjectNotFound(_)) => Err(SlimError::ContainerMissing(id.0)),
                Err(other) => Err(other),
            })
            .collect()
    }

    /// Read a container's metadata, verifying its CRC32 trailer.
    pub fn get_container_meta(&self, id: ContainerId) -> Result<ContainerMeta> {
        let buf = self
            .oss
            .get(&layout::container_meta(id))
            .map_err(|e| match e {
                SlimError::ObjectNotFound(_) => SlimError::ContainerMissing(id.0),
                other => other,
            })?;
        ContainerMeta::decode(&crc::unseal(&buf, "container meta")?)
    }

    /// Whether a container still exists.
    pub fn container_exists(&self, id: ContainerId) -> Result<bool> {
        self.oss.exists(&layout::container_meta(id))
    }

    /// Delete both objects of a container (GC sweep).
    pub fn delete_container(&self, id: ContainerId) -> Result<()> {
        self.oss.delete(&layout::container_data(id))?;
        self.oss.delete(&layout::container_meta(id))
    }

    /// Delete both objects of many containers in one batched OSS sweep.
    ///
    /// Returns the first error encountered (in key order); deletes are
    /// idempotent, so a partially-applied sweep can simply be retried.
    pub fn delete_containers(&self, ids: &[ContainerId]) -> Result<()> {
        let keys: Vec<String> = ids
            .iter()
            .flat_map(|id| [layout::container_data(*id), layout::container_meta(*id)])
            .collect();
        for result in self.oss.delete_many(&keys) {
            result?;
        }
        Ok(())
    }

    /// All container ids currently stored, ascending.
    pub fn list_containers(&self) -> Vec<ContainerId> {
        self.oss
            .list(layout::CONTAINER_PREFIX)
            .iter()
            .filter(|k| k.ends_with("/meta"))
            .filter_map(|k| layout::parse_container_key(k))
            .collect()
    }

    /// Persist a recipe and its recipe index; returns their keys.
    pub fn put_recipe(
        &self,
        file: &FileId,
        version: VersionId,
        recipe: &Recipe,
        index: &RecipeIndex,
    ) -> Result<(String, String)> {
        let (buf, _spans) = recipe.encode();
        let rkey = layout::recipe(file, version);
        let ikey = layout::recipe_index(file, version);
        self.oss.put(&rkey, buf)?;
        self.oss.put(&ikey, index.encode())?;
        Ok((rkey, ikey))
    }

    /// Read the full recipe of `file` at `version`.
    pub fn get_recipe(&self, file: &FileId, version: VersionId) -> Result<Recipe> {
        let buf = self.oss.get(&layout::recipe(file, version))?;
        Recipe::decode(&buf)
    }

    /// Read the recipe index of `file` at `version`.
    pub fn get_recipe_index(&self, file: &FileId, version: VersionId) -> Result<RecipeIndex> {
        let buf = self.oss.get(&layout::recipe_index(file, version))?;
        RecipeIndex::decode(&buf)
    }

    /// Fetch one segment recipe with a range read (§IV-A Step 2: prefetching
    /// a similar segment costs one small OSS request, not a recipe download).
    pub fn get_segment_recipe(
        &self,
        file: &FileId,
        version: VersionId,
        span: slim_types::recipe::SegmentSpan,
    ) -> Result<SegmentRecipe> {
        let buf = self
            .oss
            .get_range(&layout::recipe(file, version), span.offset, span.len)?;
        SegmentRecipe::decode_block(&buf)
    }

    /// Delete the recipe objects of `file` at `version`.
    pub fn delete_recipe(&self, file: &FileId, version: VersionId) -> Result<()> {
        self.oss.delete(&layout::recipe(file, version))?;
        self.oss.delete(&layout::recipe_index(file, version))
    }

    /// Persist a version manifest.
    pub fn put_manifest(&self, manifest: &VersionManifest) -> Result<()> {
        self.oss
            .put(&layout::version_manifest(manifest.id()), manifest.encode())
    }

    /// Read a version manifest.
    pub fn get_manifest(&self, version: VersionId) -> Result<VersionManifest> {
        let buf = self
            .oss
            .get(&layout::version_manifest(version))
            .map_err(|e| match e {
                SlimError::ObjectNotFound(_) => SlimError::VersionNotFound(version.0),
                other => other,
            })?;
        VersionManifest::decode(&buf)
    }

    /// Delete a version manifest.
    pub fn delete_manifest(&self, version: VersionId) -> Result<()> {
        self.oss.delete(&layout::version_manifest(version))
    }

    /// All stored versions, ascending.
    ///
    /// Sorted numerically after parsing: the listing order of the object
    /// store is lexicographic over padded keys, which agrees with numeric
    /// order only while every id fits the pad width. Version ids past the
    /// pad width (and FIFO collection, which deletes the *numerically*
    /// oldest versions) must not depend on that coincidence.
    pub fn list_versions(&self) -> Vec<VersionId> {
        let mut versions: Vec<VersionId> = self
            .oss
            .list(layout::VERSION_PREFIX)
            .iter()
            .filter_map(|k| k.strip_prefix(layout::VERSION_PREFIX)?.parse::<u64>().ok())
            .map(VersionId)
            .collect();
        versions.sort_unstable();
        versions
    }

    /// Total bytes stored in the container store (the paper's "occupied
    /// space").
    ///
    /// Errors (e.g. transient faults on a `len` probe) are propagated, not
    /// silently counted as zero: an under-reported figure would corrupt the
    /// space-saving curves without any visible failure.
    pub fn container_store_bytes(&self) -> Result<u64> {
        // Only available on the simulated OSS; a real deployment would track
        // this in billing metadata.
        self.oss_stored_bytes(layout::CONTAINER_PREFIX)
    }

    fn oss_stored_bytes(&self, prefix: &str) -> Result<u64> {
        let keys = self.oss.list(prefix);
        let mut total = 0u64;
        for result in self.oss.len_many(&keys) {
            total += result?.unwrap_or(0);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;
    use slim_types::{ChunkRecord, ContainerBuilder, Fingerprint};

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    fn layer() -> (Oss, StorageLayer) {
        let oss = Oss::in_memory();
        let layer = StorageLayer::open(Arc::new(oss.clone()));
        (oss, layer)
    }

    #[test]
    fn container_roundtrip() {
        let (_oss, s) = layer();
        let id = s.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1024);
        b.push(fp(1), &[1u8; 100]);
        b.push(fp(2), &[2u8; 50]);
        let (data, meta) = b.seal();
        s.put_container(data.clone(), &meta).unwrap();
        assert_eq!(s.get_container_data(id).unwrap(), data);
        assert_eq!(s.get_container_meta(id).unwrap(), meta);
        assert!(s.container_exists(id).unwrap());
        assert_eq!(s.list_containers(), vec![id]);
        assert_eq!(s.get_container_range(id, 100, 50).unwrap(), &[2u8; 50][..]);
        s.delete_container(id).unwrap();
        assert!(!s.container_exists(id).unwrap());
        assert!(matches!(
            s.get_container_data(id),
            Err(SlimError::ContainerMissing(_))
        ));
    }

    #[test]
    fn corrupted_container_objects_are_detected_on_read() {
        let (oss, s) = layer();
        let id = s.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1024);
        b.push(fp(5), &[7u8; 64]);
        let (data, meta) = b.seal();
        s.put_container(data, &meta).unwrap();
        for key in [layout::container_data(id), layout::container_meta(id)] {
            let mut buf = oss.get(&key).unwrap().to_vec();
            buf[0] ^= 0x01;
            oss.put(&key, Bytes::from(buf)).unwrap();
        }
        assert!(matches!(
            s.get_container_data(id),
            Err(SlimError::Corrupt { .. })
        ));
        assert!(matches!(
            s.get_container_meta(id),
            Err(SlimError::Corrupt { .. })
        ));
        assert!(matches!(
            s.get_container_data_many(&[id])[0],
            Err(SlimError::Corrupt { .. })
        ));
        assert!(matches!(
            s.get_container_meta_many(&[id])[0],
            Err(SlimError::Corrupt { .. })
        ));
    }

    #[test]
    fn id_allocator_recovers_after_reopen() {
        let (oss, s) = layer();
        let a = s.allocate_container_id();
        let mut b = ContainerBuilder::new(a, 64);
        b.push(fp(1), &[0u8; 10]);
        let (data, meta) = b.seal();
        s.put_container(data, &meta).unwrap();
        let s2 = StorageLayer::open(Arc::new(oss));
        let next = s2.allocate_container_id();
        assert!(next > a, "allocator must not reuse {a}");
    }

    #[test]
    fn recipe_roundtrip_and_segment_range_read() {
        let (_oss, s) = layer();
        let file = FileId::new("f");
        let v = VersionId(1);
        let recipe = Recipe {
            segments: vec![
                SegmentRecipe::new(vec![ChunkRecord::new(fp(1), ContainerId(0), 10, 0)]),
                SegmentRecipe::new(vec![ChunkRecord::new(fp(2), ContainerId(0), 20, 1)]),
            ],
        };
        let (_, spans) = recipe.encode();
        let mut index = RecipeIndex::new();
        index.push(slim_types::RecipeIndexEntry {
            sample_fp: fp(2),
            segment_idx: 1,
            span: spans[1],
        });
        s.put_recipe(&file, v, &recipe, &index).unwrap();
        assert_eq!(s.get_recipe(&file, v).unwrap(), recipe);
        let idx = s.get_recipe_index(&file, v).unwrap();
        assert_eq!(idx, index);
        let seg = s.get_segment_recipe(&file, v, spans[1]).unwrap();
        assert_eq!(seg, recipe.segments[1]);
        s.delete_recipe(&file, v).unwrap();
        assert!(s.get_recipe(&file, v).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_listing() {
        let (_oss, s) = layer();
        let mut m = VersionManifest::new(VersionId(0));
        m.new_containers.push(ContainerId(1));
        s.put_manifest(&m).unwrap();
        let m2 = VersionManifest::new(VersionId(1));
        s.put_manifest(&m2).unwrap();
        assert_eq!(s.list_versions(), vec![VersionId(0), VersionId(1)]);
        assert_eq!(s.get_manifest(VersionId(0)).unwrap(), m);
        assert!(matches!(
            s.get_manifest(VersionId(9)),
            Err(SlimError::VersionNotFound(9))
        ));
        s.delete_manifest(VersionId(0)).unwrap();
        assert_eq!(s.list_versions(), vec![VersionId(1)]);
    }

    #[test]
    fn list_versions_sorts_numerically_beyond_pad_width() {
        let (_oss, s) = layer();
        // 8-digit pad: 100000000 lists lexicographically *before* 99999999
        // ("1…" < "9…"). The numeric sort must not inherit that order.
        for v in [99_999_999u64, 100_000_000, 3] {
            s.put_manifest(&VersionManifest::new(VersionId(v))).unwrap();
        }
        assert_eq!(
            s.list_versions(),
            vec![VersionId(3), VersionId(99_999_999), VersionId(100_000_000)]
        );
    }

    #[test]
    fn container_store_bytes_counts_data_and_meta() {
        let (_oss, s) = layer();
        assert_eq!(s.container_store_bytes().unwrap(), 0);
        let id = s.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1024);
        b.push(fp(3), &[0u8; 200]);
        let (data, meta) = b.seal();
        let expect =
            data.len() as u64 + meta.encode().len() as u64 + 2 * crc::CRC_TRAILER_LEN as u64;
        s.put_container(data, &meta).unwrap();
        assert_eq!(s.container_store_bytes().unwrap(), expect);
    }

    #[test]
    fn allocator_recovery_survives_padding_overflow() {
        // Regression: keys are zero-padded to 12 digits, so a 13-digit id
        // sorts lexicographically *before* any 12-digit id. Recovery via the
        // last listed key would resurrect a live id; numeric max must win.
        let oss = Oss::in_memory();
        for id in [999_999_999_999u64, 1_000_000_000_000u64] {
            oss.put(&layout::container_meta(ContainerId(id)), Bytes::new())
                .unwrap();
        }
        let s = StorageLayer::open(Arc::new(oss));
        let next = s.allocate_container_id();
        assert!(
            next.0 > 1_000_000_000_000,
            "allocator handed out live id {next:?}"
        );
    }

    #[test]
    fn container_store_bytes_surfaces_transient_faults() {
        // Regression: a transient fault during the sizing sweep used to be
        // swallowed (`len(k).unwrap_or(None)`), silently under-counting.
        let (oss, s) = layer();
        let id = s.allocate_container_id();
        let mut b = ContainerBuilder::new(id, 1024);
        b.push(fp(4), &[0u8; 100]);
        let (data, meta) = b.seal();
        s.put_container(data, &meta).unwrap();
        oss.inject_fault(slim_oss::FaultPlan::TransientProb {
            prefix: "containers/".into(),
            prob: 1.0,
            seed: 11,
        });
        let err = s.container_store_bytes().unwrap_err();
        assert!(err.is_retryable(), "expected transient error, got {err:?}");
        oss.clear_faults();
        assert!(s.container_store_bytes().unwrap() > 0);
    }
}
