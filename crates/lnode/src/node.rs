//! The L-node: a stateless online worker (§III-B).
//!
//! An [`LNode`] owns nothing but handles to the shared storage layer and
//! similar-file index — every job fetches what it needs during execution, so
//! nodes can be created and destroyed freely ("L-node does not save any
//! state, so it can be quickly deployed"). The computing layer of
//! [`slimstore`](https://crates.io/crates/slimstore) allocates as many as the
//! workload demands.

use std::sync::Arc;

use slim_chunking::{ChunkSpec, Chunker, FastCdcChunker, FixedChunker, GearChunker, RabinChunker};
use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_telemetry::Scope;
use slim_types::{FileId, Result, SlimConfig, VersionId};

use crate::backup::{BackupOutcome, BackupPipeline};
use crate::restore::{RestoreEngine, RestoreOptions};
use crate::stats::RestoreStats;
use crate::storage::StorageLayer;

/// Which chunking algorithm an L-node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkerKind {
    /// Rabin-fingerprint CDC (the slow classic).
    Rabin,
    /// Gear-hash CDC.
    Gear,
    /// FastCDC with normalized chunking (the default).
    #[default]
    FastCdc,
    /// Fixed-size chunking (boundary-shift baseline; weakest dedup).
    Fixed,
}

/// A stateless online processing node.
pub struct LNode {
    storage: StorageLayer,
    similar: SimilarFileIndex,
    config: SlimConfig,
    chunker: Arc<dyn Chunker>,
    telemetry: Option<Scope>,
}

impl LNode {
    /// Deploy an L-node over the shared storage layer and similar-file
    /// index, with the default FastCDC chunker.
    pub fn new(
        storage: StorageLayer,
        similar: SimilarFileIndex,
        config: SlimConfig,
    ) -> Result<Self> {
        Self::with_chunker(storage, similar, config, ChunkerKind::FastCdc)
    }

    /// Deploy with an explicit chunking algorithm.
    pub fn with_chunker(
        storage: StorageLayer,
        similar: SimilarFileIndex,
        config: SlimConfig,
        kind: ChunkerKind,
    ) -> Result<Self> {
        config.validate()?;
        let spec = ChunkSpec::from_config(&config);
        let chunker: Arc<dyn Chunker> = match kind {
            ChunkerKind::Rabin => Arc::new(RabinChunker::new(spec)),
            ChunkerKind::Gear => Arc::new(GearChunker::new(spec)),
            ChunkerKind::FastCdc => Arc::new(FastCdcChunker::new(spec)),
            ChunkerKind::Fixed => Arc::new(FixedChunker::new(config.avg_chunk_size)),
        };
        Ok(LNode {
            storage,
            similar,
            config,
            chunker,
            telemetry: None,
        })
    }

    /// Attach a telemetry scope (canonically `lnode.<id>`): every job this
    /// node runs folds its phase timings into the scope's span histograms
    /// (`chunking`, `fingerprinting`, `index`, `container_io`, …) and its
    /// counters into the shared registry.
    pub fn with_telemetry(mut self, scope: Scope) -> Self {
        self.telemetry = Some(scope);
        self
    }

    /// The telemetry scope attached to this node, if any.
    pub fn telemetry(&self) -> Option<&Scope> {
        self.telemetry.as_ref()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SlimConfig {
        &self.config
    }

    /// The shared storage layer.
    pub fn storage(&self) -> &StorageLayer {
        &self.storage
    }

    /// Run a backup job for one file.
    pub fn backup_file(
        &self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BackupOutcome> {
        let outcome = BackupPipeline::new(
            &self.storage,
            &self.similar,
            self.chunker.as_ref(),
            &self.config,
        )
        .backup_file(file, version, data)?;
        if let Some(scope) = &self.telemetry {
            outcome.stats.emit(scope);
        }
        Ok(outcome)
    }

    /// Run a restore job for one file with default options.
    pub fn restore_file(
        &self,
        file: &FileId,
        version: VersionId,
        global: Option<&GlobalIndex>,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        self.restore_file_with(
            file,
            version,
            global,
            &RestoreOptions::from_config(&self.config),
        )
    }

    /// Run a restore job with explicit options.
    pub fn restore_file_with(
        &self,
        file: &FileId,
        version: VersionId,
        global: Option<&GlobalIndex>,
        options: &RestoreOptions,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let (data, stats) =
            RestoreEngine::new(&self.storage, global).restore_file(file, version, options)?;
        if let Some(scope) = &self.telemetry {
            stats.emit(scope);
        }
        Ok((data, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn make_node(kind: ChunkerKind) -> LNode {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        LNode::with_chunker(
            storage,
            SimilarFileIndex::new(),
            SlimConfig::small_for_tests(),
            kind,
        )
        .unwrap()
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    #[test]
    fn backup_restore_via_node_api() {
        for kind in [
            ChunkerKind::FastCdc,
            ChunkerKind::Rabin,
            ChunkerKind::Gear,
            ChunkerKind::Fixed,
        ] {
            let node = make_node(kind);
            let file = FileId::new("f");
            let input = data(1, 32_000);
            let out = node.backup_file(&file, VersionId(0), &input).unwrap();
            assert_eq!(out.info.logical_bytes, input.len() as u64);
            let (restored, _) = node.restore_file(&file, VersionId(0), None).unwrap();
            assert_eq!(restored, input, "{kind:?}");
        }
    }

    #[test]
    fn telemetry_scope_collects_job_phases() {
        let registry = slim_telemetry::Registry::new();
        let node =
            make_node(ChunkerKind::FastCdc).with_telemetry(registry.scope("lnode").child("0"));
        let file = FileId::new("f");
        let input = data(3, 32_000);
        node.backup_file(&file, VersionId(0), &input).unwrap();
        let (restored, _) = node.restore_file(&file, VersionId(0), None).unwrap();
        assert_eq!(restored, input);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lnode.0.backup_jobs"), 1);
        assert_eq!(snap.counter("lnode.0.logical_bytes"), input.len() as u64);
        assert_eq!(snap.counter("lnode.0.restored_bytes"), input.len() as u64);
        assert!(snap.counter("lnode.0.chunks") > 0);
        for phase in [
            "backup",
            "chunking",
            "fingerprinting",
            "index",
            "container_io",
            "restore",
        ] {
            let span = snap
                .span("lnode.0", phase)
                .unwrap_or_else(|| panic!("span {phase}"));
            assert_eq!(span.count, 1, "span {phase}");
        }
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let mut cfg = SlimConfig::small_for_tests();
        cfg.min_chunk_size = 0;
        assert!(LNode::new(storage, SimilarFileIndex::new(), cfg).is_err());
    }

    #[test]
    fn two_nodes_share_storage_state() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let similar = SimilarFileIndex::new();
        let cfg = SlimConfig::small_for_tests();
        let node_a = LNode::new(storage.clone(), similar.clone(), cfg.clone()).unwrap();
        let node_b = LNode::new(storage, similar, cfg).unwrap();
        let file = FileId::new("f");
        let input = data(2, 24_000);
        node_a.backup_file(&file, VersionId(0), &input).unwrap();
        // A different (freshly deployed) node dedups against A's version and
        // restores it — statelessness in action.
        let out = node_b.backup_file(&file, VersionId(1), &input).unwrap();
        assert!(out.stats.dedup_ratio() > 0.9);
        let (restored, _) = node_b.restore_file(&file, VersionId(0), None).unwrap();
        assert_eq!(restored, input);
    }
}
