//! Experiment harness support for the SLIMSTORE paper reproduction.
//!
//! Every table and figure of §VII has a bench target under `benches/`
//! (`harness = false`, so `cargo bench` runs them all and each prints the
//! rows/series of its paper artifact):
//!
//! | target | paper artifact |
//! |--------|----------------|
//! | `exp_table1` | Table I — dataset characteristics |
//! | `exp_fig2`   | Fig 2 — CPU/network time breakdown of CDC |
//! | `exp_fig5`   | Fig 5 — history-aware skip chunking |
//! | `exp_fig6`   | Fig 6 — history-aware chunk merging |
//! | `exp_fig7`   | Fig 7 — vs SiLO / Sparse Indexing |
//! | `exp_fig8`   | Fig 8 — restore caches, SCC, LAW prefetching |
//! | `exp_table2` | Table II — prefetch thread scaling |
//! | `exp_fig9`   | Fig 9 — space management |
//! | `exp_fig10`  | Fig 10 — vs restic: scaling + space |
//! | `micro`      | Criterion micro-benchmarks of the hot primitives |
//!
//! Experiment scale is controlled by the `SLIM_SCALE` environment variable
//! (default `1.0`); absolute numbers depend on the machine, the *shapes*
//! are the reproduction target (see EXPERIMENTS.md).

use std::time::Duration;

use slim_oss::NetworkModel;
use slim_telemetry::TelemetrySnapshot;
use slim_types::FileId;
use slim_workload::{Workload, WorkloadConfig};

/// Scale factor from `SLIM_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("SLIM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Batched-I/O fan-out cap from `SLIM_BATCH`.
///
/// Unset → `None` (the store's default fan-out). `SLIM_BATCH=0` or
/// `SLIM_BATCH=off` → `Some(1)`, forcing batched operations down the
/// sequential path — the A/B knob for regenerating the Fig 10 G-node cycle
/// numbers with and without batching. Any other integer caps the fan-out.
pub fn batch_workers() -> Option<usize> {
    let raw = std::env::var("SLIM_BATCH").ok()?;
    if raw.eq_ignore_ascii_case("off") {
        return Some(1);
    }
    raw.parse::<usize>().ok().map(|n| n.max(1))
}

/// Backup-pipeline thread budget from `SLIM_PIPELINE`.
///
/// Unset → `None` (experiments size the pipeline from their network model
/// via `NetworkModel::suggested_pipeline_threads`). `SLIM_PIPELINE=0` or
/// `SLIM_PIPELINE=off` → `Some(0)`, forcing the sequential backup path —
/// the A/B knob for the Fig 2 / Fig 6 backup-throughput lines. Any other
/// integer runs the pipelined plane with that many threads per job.
pub fn pipeline_threads() -> Option<usize> {
    let raw = std::env::var("SLIM_PIPELINE").ok()?;
    if raw.eq_ignore_ascii_case("off") {
        return Some(0);
    }
    raw.parse::<usize>().ok()
}

/// Hedged-read endpoint count from `SLIM_HEDGE`.
///
/// Unset → `None` (today's default: no hedging plane, byte-identical to
/// historical runs). `SLIM_HEDGE=0` or `SLIM_HEDGE=off` → `Some(0)`, an
/// explicit "plane wired but disabled" A/B baseline. Any other integer
/// models that many OSS endpoints with hedged reads — the knob for the
/// Fig 2 / Fig 6 tail-latency comparison.
pub fn hedge_endpoints() -> Option<usize> {
    let raw = std::env::var("SLIM_HEDGE").ok()?;
    if raw.eq_ignore_ascii_case("off") {
        return Some(0);
    }
    raw.parse::<usize>().ok()
}

/// Container-compression toggle from `SLIM_COMPRESS`.
///
/// Unset → `None` (the config's default). `SLIM_COMPRESS=0` or
/// `SLIM_COMPRESS=off` → `Some(false)`; anything else → `Some(true)` —
/// the A/B knob for the Fig 2 / Fig 6 stored-bytes and throughput lines
/// with and without the per-chunk compression plane.
pub fn compression() -> Option<bool> {
    let raw = std::env::var("SLIM_COMPRESS").ok()?;
    Some(!raw.eq_ignore_ascii_case("off") && raw != "0")
}

/// Wrap `oss` per the `SLIM_HEDGE` knob: with `n >= 2` endpoints the store
/// models them and hedged reads race the healthiest pair; otherwise the
/// bare store is returned unchanged (no wrapper, no extra indirection).
pub fn apply_hedge(oss: slim_oss::Oss) -> std::sync::Arc<dyn slim_oss::ObjectStore> {
    match hedge_endpoints() {
        Some(n) if n >= 2 => {
            oss.set_endpoints(n);
            std::sync::Arc::new(slim_oss::HedgedStore::new(
                std::sync::Arc::new(oss),
                slim_oss::HedgePolicy::for_endpoints(n),
            ))
        }
        _ => std::sync::Arc::new(oss),
    }
}

/// The network model used by throughput experiments: OSS-like latency and
/// per-channel bandwidth so that network effects (Fig 2, Fig 8, Table II)
/// are visible, scaled down so runs finish in seconds.
pub fn bench_network() -> NetworkModel {
    NetworkModel::oss_like()
}

/// A faster network for the CPU-bound experiments (Fig 5–7): the paper's
/// ECS nodes had 10+ Gbps links, so chunking/fingerprinting — not the wire —
/// dominate those figures.
pub fn bench_network_fast() -> NetworkModel {
    NetworkModel {
        request_latency: std::time::Duration::from_micros(100),
        channel_bandwidth: 1024 * 1024 * 1024,
        channels: 64,
    }
}

/// MB/s from bytes and a duration.
pub fn mbps(bytes: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    bytes as f64 / (1024.0 * 1024.0) / secs
}

/// A single-file multi-version stream derived from the S-DB generator:
/// version `v` of one synthetic database table file with a given dup ratio.
pub struct VersionedFile {
    workload: Workload,
    /// File id used when backing the stream up.
    pub file: FileId,
}

impl VersionedFile {
    /// A stream of `versions` versions, ~`bytes_per_version` each, with the
    /// given between-version duplication ratio.
    pub fn new(name: &str, bytes_per_version: usize, versions: usize, dup_ratio: f64) -> Self {
        Self::with_block_len(name, bytes_per_version, versions, dup_ratio, 8 * 1024)
    }

    /// Same, with an explicit mutation granularity (logical block length).
    /// Chunk-size sweeps use coarse blocks so large chunks still dedup.
    pub fn with_block_len(
        name: &str,
        bytes_per_version: usize,
        versions: usize,
        dup_ratio: f64,
        block_len: usize,
    ) -> Self {
        let cfg = WorkloadConfig {
            name: name.to_string(),
            files: 1,
            versions,
            blocks_per_file: (bytes_per_version / block_len).max(4),
            block_len,
            dup_ratio_min: dup_ratio,
            dup_ratio_max: dup_ratio,
            self_ref_rate: 0.20,
            hot_fraction: 0.35,
            seed: 0x51D,
        };
        let workload = Workload::new(cfg);
        let file = workload.file_id(0);
        VersionedFile { workload, file }
    }

    /// Bytes of version `v`.
    pub fn version(&self, v: usize) -> Vec<u8> {
        self.workload.file_bytes(0, v)
    }

    /// Number of versions available.
    pub fn versions(&self) -> usize {
        self.workload.config().versions
    }
}

/// Markdown-ish table printer for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Rows as JSON objects keyed by column name (emitted alongside the
    /// rendered table when `SLIM_JSON=1`, for machine consumption).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    serde_json::Value::Object(
                        self.header
                            .iter()
                            .zip(row)
                            .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Render to stdout (plus one JSON line when `SLIM_JSON=1`).
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!(" {:width$} |", cell, width = widths[i]));
            }
            println!("{out}");
        };
        line(&self.header);
        {
            let mut out = String::from("|");
            for w in &widths {
                out.push_str(&format!("{:-<width$}|", "", width = w + 2));
            }
            println!("{out}");
        }
        for row in &self.rows {
            line(row);
        }
        if json_output() {
            println!("JSON {}", self.to_json());
        }
    }
}

/// Whether machine-readable output is requested (`SLIM_JSON=1`).
pub fn json_output() -> bool {
    std::env::var("SLIM_JSON")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Emit a telemetry snapshot (or delta) as one machine-readable line when
/// `SLIM_JSON=1`: `TELEMETRY <label> <json>`. Harness scripts scrape these
/// lines the same way they scrape the `JSON` table lines.
pub fn print_telemetry(label: &str, snap: &TelemetrySnapshot) {
    if json_output() {
        println!("TELEMETRY {label} {}", snap.to_json());
    }
}

/// Total recorded seconds of the span `<scope>.span.<phase>` in a snapshot
/// (or delta), `0.0` when the span never fired. The figure harnesses build
/// their phase breakdowns from these instead of per-job stats structs.
pub fn span_secs(snap: &TelemetrySnapshot, scope: &str, phase: &str) -> f64 {
    snap.span(scope, phase)
        .map(|h| h.total_duration().as_secs_f64())
        .unwrap_or(0.0)
}

/// Format helpers.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Two-decimal format.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Percent with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Mebibytes with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioned_file_is_deterministic_and_dedupable() {
        let a = VersionedFile::new("t", 64 * 1024, 3, 0.9);
        let b = VersionedFile::new("t", 64 * 1024, 3, 0.9);
        assert_eq!(a.version(0), b.version(0));
        assert_ne!(a.version(0), a.version(1));
        assert_eq!(a.versions(), 3);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        let json = t.to_json();
        assert_eq!(json[0]["a"], "1");
        assert_eq!(json[0]["bb"], "2");
    }

    #[test]
    fn span_secs_reads_snapshot_deltas() {
        let registry = slim_telemetry::Registry::new();
        let scope = registry.scope("lnode").child("0");
        scope.record_span("chunking", Duration::from_millis(250));
        let snap = registry.snapshot();
        assert!((span_secs(&snap, "lnode.0", "chunking") - 0.25).abs() < 1e-9);
        assert_eq!(span_secs(&snap, "lnode.0", "absent"), 0.0);
        // Emitting is a no-op without SLIM_JSON=1, and must not panic.
        print_telemetry("test", &snap);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.841), "84.1%");
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(mbps(0, Duration::ZERO), 0.0);
        assert!(mbps(1024 * 1024, Duration::from_secs(1)) > 0.99);
    }
}
