//! Fig 6 — performance of history-aware chunk merging.
//!
//! Paper shapes:
//! * (a) chunk merging improves dedup throughput, most for high-duplication
//!   files (>20 % at dup ratio 0.95), and the average chunk size after
//!   merging grows with the dup ratio;
//! * (b) the dedup-ratio cost is small for high-duplication files (~0.9 % at
//!   0.95) and larger for low-duplication files.
//!
//! Setup follows §VII-B: initial chunk size 4 KB, merge threshold
//! `duplicateTimes >= 5`, measured on the versions after merging kicks in.

use slim_bench::{
    apply_hedge, bench_network_fast, compression, f1, pct, pipeline_threads, scale, Table,
    VersionedFile,
};
use slim_index::SimilarFileIndex;
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

struct Outcome {
    mbps: f64,
    dedup_ratio: f64,
    avg_chunk: f64,
}

/// Back up `versions` versions; return the last version's numbers.
fn run(stream: &VersionedFile, merging: bool, versions: usize) -> Outcome {
    // Skip chunking off: this figure isolates the effect of merging. Small
    // superchunks (8 members = ~32 KB) survive the workload's mutation
    // granularity, like the paper's database tables.
    let mut cfg = SlimConfig::default()
        .with_skip_chunking(false)
        .with_chunk_merging(merging);
    cfg.superchunk_max_members = 8;
    cfg.backup_pipeline_threads =
        pipeline_threads().unwrap_or_else(|| bench_network_fast().suggested_pipeline_threads());
    // SLIM_COMPRESS=off is the A/B baseline without container compression.
    if let Some(on) = compression() {
        cfg.compression = on;
    }
    // SLIM_HEDGE=N models N OSS endpoints with hedged reads (unset: bare).
    let storage = StorageLayer::open(apply_hedge(Oss::new(bench_network_fast())));
    let node = LNode::new(storage.clone(), SimilarFileIndex::new(), cfg).unwrap();
    let mut last = None;
    for v in 0..versions {
        let out = node
            .backup_file(&stream.file, VersionId(v as u64), &stream.version(v))
            .unwrap();
        last = Some(out);
    }
    let out = last.expect("at least one version");
    let recipe = storage
        .get_recipe(&stream.file, VersionId(versions as u64 - 1))
        .unwrap();
    Outcome {
        mbps: out.stats.throughput_mbps(),
        dedup_ratio: out.stats.dedup_ratio(),
        avg_chunk: recipe.logical_bytes() as f64 / recipe.record_count().max(1) as f64,
    }
}

fn main() {
    let bytes = (32.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 9; // merge threshold 5 → superchunks from ~v5 on
    println!(
        "\n== Fig 6: history-aware chunk merging (v{} of {versions}) ==\n",
        versions - 1
    );
    let mut table = Table::new(&[
        "dup ratio",
        "MB/s (no merge)",
        "MB/s (merge)",
        "speedup",
        "avg chunk KB (merge)",
        "ratio (no merge)",
        "ratio (merge)",
        "ratio loss",
    ]);
    for dup in [0.65, 0.75, 0.85, 0.95] {
        let stream =
            VersionedFile::with_block_len(&format!("fig6-{dup}"), bytes, versions, dup, 32 * 1024);
        let off = run(&stream, false, versions);
        let on = run(&stream, true, versions);
        table.row(vec![
            format!("{dup:.2}"),
            f1(off.mbps),
            f1(on.mbps),
            format!("{:.2}x", on.mbps / off.mbps.max(1e-9)),
            f1(on.avg_chunk / 1024.0),
            pct(off.dedup_ratio),
            pct(on.dedup_ratio),
            pct(off.dedup_ratio - on.dedup_ratio),
        ]);
    }
    table.print();
    println!();
}
