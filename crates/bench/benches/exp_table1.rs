//! Table I — the characteristics of the datasets.
//!
//! Paper values (absolute sizes are TB-scale; ours are scaled by
//! `SLIM_SCALE` — the *ratios* are the reproduction target):
//!
//! | | S-DB | R-Data |
//! |-|------|--------|
//! | Total size | 2.44 TB | 1.53 TB |
//! | versions | 25 | 13 |
//! | files | 500 | 7440 |
//! | avg duplication ratio | 0.84 | 0.92 |
//! | self-reference | 20% | 0.1% |

use slim_bench::{f2, pct, scale, Table};
use slim_workload::{DatasetStats, Workload, WorkloadConfig};

fn main() {
    let scale = scale();
    println!("\n== Table I: dataset characteristics (scale {scale}) ==\n");
    let mut table = Table::new(&[
        "dataset",
        "total size (MiB)",
        "# versions",
        "# files",
        "avg dup ratio",
        "self-reference",
        "paper dup / self-ref",
    ]);
    for (cfg, paper) in [
        (WorkloadConfig::sdb(scale), "0.84 / 20%"),
        (WorkloadConfig::rdata(scale), "0.92 / 0.1%"),
    ] {
        let workload = Workload::new(cfg);
        let stats = DatasetStats::measure(&workload, 6);
        table.row(vec![
            stats.name.clone(),
            format!("{:.1}", stats.total_bytes as f64 / (1024.0 * 1024.0)),
            stats.versions.to_string(),
            stats.files.to_string(),
            f2(stats.avg_dup_ratio),
            pct(stats.self_reference),
            paper.to_string(),
        ]);
    }
    table.print();
}
