//! Fig 5 — performance of history-aware skip chunking.
//!
//! Paper shapes:
//! * (a) dedup throughput vs chunk size: skip chunking gives Rabin ≈2× and
//!   FastCDC ≈1.5×; throughput grows with chunk size and flattens ≥32 KB;
//! * (b) dedup ratio vs chunk size: skip chunking is lossless (identical
//!   ratio to the plain CDC), and the ratio degrades as chunks grow —
//!   sharply above 16 KB;
//! * (c) throughput vs file duplication ratio: the win grows with the dup
//!   ratio (more consecutive duplicates → more successful skips);
//! * (d) CPU-time breakdown with skip chunking on: CDC drops to ~2 %.

use std::sync::Arc;

use slim_bench::{
    bench_network_fast, f1, pct, print_telemetry, scale, span_secs, Table, VersionedFile,
};
use slim_index::SimilarFileIndex;
use slim_lnode::node::ChunkerKind;
use slim_lnode::{BackupStats, LNode, StorageLayer};
use slim_oss::Oss;
use slim_telemetry::Registry;
use slim_types::{SlimConfig, VersionId};

/// Back up v0 then v1 of `stream`; return v1's stats.
fn run(stream: &VersionedFile, cfg: SlimConfig, kind: ChunkerKind) -> BackupStats {
    let storage = StorageLayer::open(Arc::new(Oss::new(bench_network_fast())));
    let node = LNode::with_chunker(storage, SimilarFileIndex::new(), cfg, kind).unwrap();
    node.backup_file(&stream.file, VersionId(0), &stream.version(0))
        .unwrap();
    node.backup_file(&stream.file, VersionId(1), &stream.version(1))
        .unwrap()
        .stats
}

fn main() {
    let bytes = (32.0 * 1024.0 * 1024.0 * scale()) as usize;
    let base_cfg = || SlimConfig::default().with_chunk_merging(false);

    // -- (a) + (b): vary chunk size --------------------------------------
    println!("\n== Fig 5(a,b): throughput and dedup ratio vs chunk size ==\n");
    let stream = VersionedFile::with_block_len("fig5ab", bytes, 2, 0.84, 64 * 1024);
    let mut table = Table::new(&[
        "chunk size",
        "algo",
        "MB/s (no skip)",
        "MB/s (skip)",
        "speedup",
        "ratio (no skip)",
        "ratio (skip)",
    ]);
    for kb in [4usize, 8, 16, 32, 64] {
        for kind in [ChunkerKind::Rabin, ChunkerKind::FastCdc] {
            let cfg = base_cfg().with_avg_chunk_size(kb * 1024);
            let off = run(&stream, cfg.clone().with_skip_chunking(false), kind);
            let on = run(&stream, cfg.with_skip_chunking(true), kind);
            table.row(vec![
                format!("{kb} KB"),
                format!("{kind:?}"),
                f1(off.throughput_mbps()),
                f1(on.throughput_mbps()),
                format!(
                    "{:.2}x",
                    on.throughput_mbps() / off.throughput_mbps().max(1e-9)
                ),
                pct(off.dedup_ratio()),
                pct(on.dedup_ratio()),
            ]);
        }
    }
    table.print();

    // -- (c): vary file duplication ratio ---------------------------------
    println!("\n== Fig 5(c): throughput vs file duplication ratio (4 KB chunks) ==\n");
    let mut table = Table::new(&[
        "dup ratio",
        "algo",
        "MB/s (no skip)",
        "MB/s (skip)",
        "speedup",
        "skip hits",
        "skip misses",
    ]);
    for dup in [0.65, 0.75, 0.85, 0.95] {
        let stream = VersionedFile::new(&format!("fig5c-{dup}"), bytes, 2, dup);
        for kind in [ChunkerKind::Rabin, ChunkerKind::FastCdc] {
            let off = run(&stream, base_cfg().with_skip_chunking(false), kind);
            let on = run(&stream, base_cfg().with_skip_chunking(true), kind);
            table.row(vec![
                format!("{dup:.2}"),
                format!("{kind:?}"),
                f1(off.throughput_mbps()),
                f1(on.throughput_mbps()),
                format!(
                    "{:.2}x",
                    on.throughput_mbps() / off.throughput_mbps().max(1e-9)
                ),
                on.skip_hits.to_string(),
                on.skip_misses.to_string(),
            ]);
        }
    }
    table.print();

    // -- (d): CPU time breakdown with skip chunking -----------------------
    // Regenerated from telemetry span deltas of the v1 backup, like Fig 2:
    // the same `lnode.0.span.*` histograms any deployment exports.
    println!("\n== Fig 5(d): CPU time breakdown with skip chunking on (v1) ==\n");
    let stream = VersionedFile::new("fig5d", bytes, 2, 0.84);
    let mut table = Table::new(&["algo", "chunking", "fingerprint", "index query", "others"]);
    for kind in [ChunkerKind::Rabin, ChunkerKind::FastCdc] {
        let registry = Registry::new();
        let storage = StorageLayer::open(Arc::new(Oss::new(bench_network_fast())));
        let node = LNode::with_chunker(
            storage,
            SimilarFileIndex::new(),
            base_cfg().with_skip_chunking(true),
            kind,
        )
        .unwrap()
        .with_telemetry(registry.scope("lnode").child("0"));
        node.backup_file(&stream.file, VersionId(0), &stream.version(0))
            .unwrap();
        let before = registry.snapshot();
        node.backup_file(&stream.file, VersionId(1), &stream.version(1))
            .unwrap();
        let delta = registry.snapshot().since(&before);
        let wall = span_secs(&delta, "lnode.0", "backup").max(1e-9);
        let network = span_secs(&delta, "lnode.0", "container_io");
        let chunking = span_secs(&delta, "lnode.0", "chunking");
        let fingerprint = span_secs(&delta, "lnode.0", "fingerprinting");
        let index = span_secs(&delta, "lnode.0", "index");
        let cpu = (wall - network).max(1e-9);
        table.row(vec![
            format!("{kind:?}"),
            pct(chunking / cpu),
            pct(fingerprint / cpu),
            pct(index / cpu),
            pct((cpu - chunking - fingerprint - index).max(0.0) / cpu),
        ]);
        print_telemetry(&format!("fig5d.{kind:?}"), &delta);
    }
    table.print();
    println!();
}
