//! Fig 2 — CPU and network time breakdown of CDC across backup versions.
//!
//! Paper shape: version 1 (the initial full backup) is network-bound —
//! almost every byte must be uploaded. From version 2 on, dedup removes most
//! uploads and CPU becomes the bottleneck, with chunking dominating: ~60 %
//! of CPU time for Rabin-based CDC, ~40 % for FastCDC; fingerprinting is the
//! second-largest consumer.
//!
//! Both history-aware optimizations are disabled here (this figure motivates
//! them).
//!
//! The per-version phase breakdown is regenerated from telemetry span
//! deltas (`lnode.0.span.{chunking,fingerprinting,index,container_io,
//! backup}`), not from per-job stats structs — the same numbers any
//! deployment exports via `SlimStore::telemetry_snapshot()`. With
//! `SLIM_JSON=1` the full cumulative snapshot is emitted per chunker as a
//! `TELEMETRY` line.

use slim_bench::{
    apply_hedge, bench_network, compression, pct, pipeline_threads, print_telemetry, scale,
    span_secs, Table, VersionedFile,
};
use slim_index::SimilarFileIndex;
use slim_lnode::node::ChunkerKind;
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_telemetry::Registry;
use slim_types::{SlimConfig, VersionId};

fn main() {
    let bytes_per_version = (48.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 5;
    println!("\n== Fig 2: CPU and network time breakdown of CDC ==\n");
    let stream = VersionedFile::new("fig2", bytes_per_version, versions, 0.84);

    for kind in [ChunkerKind::Rabin, ChunkerKind::FastCdc] {
        let mut cfg = SlimConfig::default()
            .with_skip_chunking(false)
            .with_chunk_merging(false);
        // SLIM_PIPELINE overrides; default-size from the network model
        // (more channels → more pipeline threads pay off).
        cfg.backup_pipeline_threads =
            pipeline_threads().unwrap_or_else(|| bench_network().suggested_pipeline_threads());
        // SLIM_COMPRESS=off is the A/B baseline without the per-chunk
        // container compression plane.
        if let Some(on) = compression() {
            cfg.compression = on;
        }
        let registry = Registry::new();
        let scope = registry.scope("lnode").child("0");
        // SLIM_HEDGE=N models N OSS endpoints with hedged reads; unset
        // leaves the bare store, byte-identical to historical runs.
        let storage = StorageLayer::open(apply_hedge(Oss::new(bench_network())));
        let node = LNode::with_chunker(storage, SimilarFileIndex::new(), cfg, kind)
            .unwrap()
            .with_telemetry(scope);
        let mut table = Table::new(&[
            "version",
            "chunking",
            "fingerprint",
            "index query",
            "others",
            "network share of wall",
        ]);
        let mut before = registry.snapshot();
        for v in 0..versions {
            let data = stream.version(v);
            node.backup_file(&stream.file, VersionId(v as u64), &data)
                .unwrap();
            let after = registry.snapshot();
            let delta = after.since(&before);
            before = after;
            let wall = span_secs(&delta, "lnode.0", "backup").max(1e-9);
            let network = span_secs(&delta, "lnode.0", "container_io");
            let chunking = span_secs(&delta, "lnode.0", "chunking");
            let fingerprint = span_secs(&delta, "lnode.0", "fingerprinting");
            let index = span_secs(&delta, "lnode.0", "index");
            let cpu = (wall - network).max(1e-9);
            table.row(vec![
                format!("v{v}"),
                pct(chunking / cpu),
                pct(fingerprint / cpu),
                pct(index / cpu),
                pct((cpu - chunking - fingerprint - index).max(0.0) / cpu),
                pct(network / wall),
            ]);
        }
        println!("-- {kind:?} CDC --");
        table.print();
        print_telemetry(&format!("fig2.{kind:?}"), &registry.snapshot());
        println!();
    }
}
