//! Fig 2 — CPU and network time breakdown of CDC across backup versions.
//!
//! Paper shape: version 1 (the initial full backup) is network-bound —
//! almost every byte must be uploaded. From version 2 on, dedup removes most
//! uploads and CPU becomes the bottleneck, with chunking dominating: ~60 %
//! of CPU time for Rabin-based CDC, ~40 % for FastCDC; fingerprinting is the
//! second-largest consumer.
//!
//! Both history-aware optimizations are disabled here (this figure motivates
//! them).

use std::sync::Arc;

use slim_bench::{bench_network, pct, scale, Table, VersionedFile};
use slim_index::SimilarFileIndex;
use slim_lnode::node::ChunkerKind;
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

fn main() {
    let bytes_per_version = (48.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 5;
    println!("\n== Fig 2: CPU and network time breakdown of CDC ==\n");
    let stream = VersionedFile::new("fig2", bytes_per_version, versions, 0.84);

    for kind in [ChunkerKind::Rabin, ChunkerKind::FastCdc] {
        let cfg = SlimConfig::default()
            .with_skip_chunking(false)
            .with_chunk_merging(false);
        let storage = StorageLayer::open(Arc::new(Oss::new(bench_network())));
        let node =
            LNode::with_chunker(storage, SimilarFileIndex::new(), cfg, kind).unwrap();
        let mut table = Table::new(&[
            "version",
            "chunking",
            "fingerprint",
            "index query",
            "others",
            "network share of wall",
        ]);
        for v in 0..versions {
            let data = stream.version(v);
            let out = node
                .backup_file(&stream.file, VersionId(v as u64), &data)
                .unwrap();
            let s = &out.stats;
            let cpu = s
                .wall_time
                .saturating_sub(s.network_time)
                .as_secs_f64()
                .max(1e-9);
            table.row(vec![
                format!("v{v}"),
                pct(s.chunking_time.as_secs_f64() / cpu),
                pct(s.fingerprint_time.as_secs_f64() / cpu),
                pct(s.index_time.as_secs_f64() / cpu),
                pct((cpu
                    - s.chunking_time.as_secs_f64()
                    - s.fingerprint_time.as_secs_f64()
                    - s.index_time.as_secs_f64())
                .max(0.0)
                    / cpu),
                pct(s.network_time.as_secs_f64() / s.wall_time.as_secs_f64().max(1e-9)),
            ]);
        }
        println!("-- {kind:?} CDC --");
        table.print();
        println!();
    }
}
