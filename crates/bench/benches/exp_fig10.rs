//! Fig 10 — SLIMSTORE vs restic on the R-Data workload.
//!
//! Paper shapes:
//! * (a) SLIMSTORE backup throughput scales linearly with concurrent jobs
//!   (adding L-nodes past the per-node limit); a single job beats restic by
//!   ~25 %; restic's repository lock keeps it flat regardless of job count;
//! * (b) restore throughput scales the same way (2 prefetch threads/job);
//!   restic is again flat;
//! * (c) SLIMSTORE occupies ~20 % less space than restic (adaptive chunk
//!   sizes), and global reverse dedup trims a further ~4.6 %.
//!
//! Chunk sizes are scaled with the dataset: the paper used 256 KB–2 MB
//! superchunks against restic's 1 MB chunks on TB-scale data; we keep the
//! same 4:1 restic-to-SLIMSTORE base ratio at laptop scale.

use std::sync::Arc;
use std::time::{Duration, Instant};

use slim_baselines::ResticSim;
use slim_bench::{f1, mib, pct, print_telemetry, scale, Table};
use slim_types::{FileId, VersionId};
use slim_workload::{Workload, WorkloadConfig};
use slimstore::{SlimStore, SlimStoreBuilder};

/// Jobs one L-node can carry before another node is deployed (paper: 13
/// backup jobs / 8 restore jobs per ECS node).
const BACKUP_JOBS_PER_NODE: usize = 13;
const RESTORE_JOBS_PER_NODE: usize = 8;

fn slim_store() -> SlimStore {
    let cfg = slim_types::SlimConfig::default().with_avg_chunk_size(8 * 1024);
    let mut builder = SlimStoreBuilder::in_memory()
        .with_network(slim_bench::bench_network_fast())
        .with_config(cfg);
    // SLIM_BATCH=off reruns the G-node cycle numbers without the batched
    // I/O plane (SLIM_BATCH=N caps its fan-out).
    if let Some(cap) = slim_bench::batch_workers() {
        builder = builder.with_batch_workers(cap);
    }
    builder.build().unwrap()
}

fn restic_repo() -> ResticSim {
    let oss = slim_oss::Oss::new(slim_bench::bench_network_fast());
    // 4x SLIMSTORE's base chunk size (restic's 1MB vs 256KB in the paper),
    // plus OSSFS per-operation overhead.
    ResticSim::new(Arc::new(oss), Duration::from_micros(400), 32 * 1024)
}

fn main() {
    let mut cfg = WorkloadConfig::rdata(scale());
    cfg.files = cfg.files.clamp(8, 32);
    let workload = Workload::new(cfg.clone());
    let files_v: Vec<Vec<(FileId, Vec<u8>)>> = (0..2)
        .map(|v| {
            workload
                .version_files(v)
                .map(|f| (f.file, f.data))
                .collect()
        })
        .collect();
    let v1_bytes: u64 = files_v[1].iter().map(|(_, d)| d.len() as u64).sum();

    // ---- (a): backup throughput vs concurrent jobs ----------------------
    println!("\n== Fig 10(a): backup throughput vs concurrent jobs ==\n");
    let mut table = Table::new(&["jobs", "L-nodes", "SLIMSTORE MB/s", "restic MB/s"]);
    for jobs in [1usize, 2, 4, 8, 16] {
        // Fresh deployments per point: measure v1 (the dedup path) after a
        // warm-up v0.
        let store = slim_store();
        store
            .scale_l_nodes(jobs.div_ceil(BACKUP_JOBS_PER_NODE))
            .unwrap();
        store
            .backup_version_with_jobs(files_v[0].clone(), jobs)
            .unwrap();
        let t = Instant::now();
        store
            .backup_version_with_jobs(files_v[1].clone(), jobs)
            .unwrap();
        let slim_mbps = slim_bench::mbps(v1_bytes, t.elapsed());

        let restic = Arc::new(restic_repo());
        for (f, d) in &files_v[0] {
            restic.backup_file(f, VersionId(0), d).unwrap();
        }
        let t = Instant::now();
        std::thread::scope(|s| {
            let chunks: Vec<_> = files_v[1].chunks(files_v[1].len().div_ceil(jobs)).collect();
            for chunk in chunks {
                let restic = restic.clone();
                s.spawn(move || {
                    for (f, d) in chunk {
                        restic.backup_file(f, VersionId(1), d).unwrap();
                    }
                });
            }
        });
        let restic_mbps = slim_bench::mbps(v1_bytes, t.elapsed());
        table.row(vec![
            jobs.to_string(),
            jobs.div_ceil(BACKUP_JOBS_PER_NODE).to_string(),
            f1(slim_mbps),
            f1(restic_mbps),
        ]);
    }
    table.print();

    // ---- (b): restore throughput vs concurrent jobs ---------------------
    println!("\n== Fig 10(b): restore throughput vs concurrent jobs ==\n");
    // One shared deployment with both versions backed up.
    let store = slim_store();
    store
        .backup_version_with_jobs(files_v[0].clone(), 4)
        .unwrap();
    store
        .backup_version_with_jobs(files_v[1].clone(), 4)
        .unwrap();
    let restic = Arc::new(restic_repo());
    for v in 0..2u64 {
        for (f, d) in &files_v[v as usize] {
            restic.backup_file(f, VersionId(v), d).unwrap();
        }
    }
    let mut table = Table::new(&["jobs", "L-nodes", "SLIMSTORE MB/s", "restic MB/s"]);
    for jobs in [1usize, 2, 4, 8, 16] {
        store
            .scale_l_nodes(jobs.div_ceil(RESTORE_JOBS_PER_NODE))
            .unwrap();
        let t = Instant::now();
        let restored = store.restore_version(VersionId(1), jobs).unwrap();
        let bytes: u64 = restored.iter().map(|(_, d, _)| d.len() as u64).sum();
        let slim_mbps = slim_bench::mbps(bytes, t.elapsed());

        let t = Instant::now();
        std::thread::scope(|s| {
            let chunks: Vec<_> = files_v[1].chunks(files_v[1].len().div_ceil(jobs)).collect();
            for chunk in chunks {
                let restic = restic.clone();
                s.spawn(move || {
                    for (f, _) in chunk {
                        restic.restore_file(f, VersionId(1)).unwrap();
                    }
                });
            }
        });
        let restic_mbps = slim_bench::mbps(v1_bytes, t.elapsed());
        table.row(vec![
            jobs.to_string(),
            jobs.div_ceil(RESTORE_JOBS_PER_NODE).to_string(),
            f1(slim_mbps),
            f1(restic_mbps),
        ]);
    }
    table.print();

    // ---- (c): occupied space --------------------------------------------
    println!(
        "\n== Fig 10(c): occupied space after {} versions ==\n",
        cfg.versions
    );
    let slim_l = slim_store(); // L-dedupe only
    let slim_lg = slim_store(); // with G-node cycles
    let restic = restic_repo();
    let mut gnode_time = Duration::ZERO;
    for v in 0..cfg.versions {
        let files: Vec<_> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        let r = slim_l.backup_version_with_jobs(files.clone(), 4).unwrap();
        let r2 = slim_lg.backup_version_with_jobs(files.clone(), 4).unwrap();
        assert_eq!(r.version, r2.version);
        let t = Instant::now();
        slim_lg.run_gnode_cycle(r2.version).unwrap();
        slim_lg.gnode().vacuum().unwrap();
        gnode_time += t.elapsed();
        for (f, d) in &files {
            restic.backup_file(f, VersionId(v as u64), d).unwrap();
        }
    }
    println!(
        "G-node cycle time (all versions): {:.2}s  [batched I/O fan-out: {}]",
        gnode_time.as_secs_f64(),
        slim_bench::batch_workers()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "default".into()),
    );
    let slim_l_bytes = slim_l.space_report().unwrap().container_bytes;
    let slim_lg_bytes = slim_lg.space_report().unwrap().container_bytes;
    let restic_bytes = restic.repository_bytes();
    let mut table = Table::new(&["system", "occupied MiB"]);
    table.row(vec!["restic".into(), mib(restic_bytes)]);
    table.row(vec!["SLIMSTORE (L-dedupe)".into(), mib(slim_l_bytes)]);
    table.row(vec![
        "SLIMSTORE (+reverse dedup)".into(),
        mib(slim_lg_bytes),
    ]);
    table.print();
    // Where reverse dedup's savings came from: the gnode.* counters and
    // cycle-stage spans of the G-enabled deployment (SLIM_JSON=1).
    print_telemetry("fig10c.slim_lg", &slim_lg.telemetry_snapshot());
    println!(
        "\nSLIMSTORE saves {} vs restic (paper ~20%); reverse dedup adds {} (paper 4.6%)\n",
        pct(1.0 - slim_lg_bytes as f64 / restic_bytes.max(1) as f64),
        pct(1.0 - slim_lg_bytes as f64 / slim_l_bytes.max(1) as f64),
    );
}
