//! Table II — restore throughput vs prefetching thread number.
//!
//! Paper values: 36, 38, 75, 154, 207, 208, 208 MB/s at 0, 1, 2, 4, 6, 8,
//! 10 threads — throughput scales with prefetch parallelism until prefetch
//! speed exceeds restore speed (6 threads on their testbed), then plateaus.
//! Our simulated OSS has the same structure (per-channel bandwidth, parallel
//! channels), so the same saturation emerges; the knee's exact position
//! depends on the machine.

use std::sync::Arc;

use slim_bench::{bench_network, f1, scale, Table, VersionedFile};
use slim_index::SimilarFileIndex;
use slim_lnode::restore::{RestoreEngine, RestoreOptions};
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

fn main() {
    let bytes = (48.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 8;
    let stream = VersionedFile::new("table2", bytes, versions, 0.84);
    let storage = StorageLayer::open(Arc::new(Oss::new(bench_network())));
    let node = LNode::new(
        storage.clone(),
        SimilarFileIndex::new(),
        SlimConfig::default(),
    )
    .unwrap();
    for v in 0..versions {
        node.backup_file(&stream.file, VersionId(v as u64), &stream.version(v))
            .unwrap();
    }
    let last = VersionId(versions as u64 - 1);

    println!("\n== Table II: restore throughput vs prefetching thread number ==\n");
    let mut table = Table::new(&["prefetch threads", "restore MB/s", "prefetch hits"]);
    for threads in [0usize, 1, 2, 4, 6, 8, 10] {
        let mut opts = RestoreOptions::from_config(&SlimConfig::default());
        opts.prefetch_threads = threads;
        let engine = RestoreEngine::new(&storage, None);
        let (_, stats) = engine.restore_file(&stream.file, last, &opts).unwrap();
        table.row(vec![
            threads.to_string(),
            f1(stats.throughput_mbps()),
            stats.prefetch_hits.to_string(),
        ]);
    }
    table.print();
    println!("\npaper: 36 / 38 / 75 / 154 / 207 / 208 / 208 MB/s\n");
}
