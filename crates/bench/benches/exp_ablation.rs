//! Ablation study — what each SLIMSTORE design choice buys.
//!
//! Not a paper figure: DESIGN.md calls out the load-bearing design choices
//! and this harness isolates them on one S-DB stream. Expected directions:
//!
//! * **skip chunking off** → lower backup throughput, identical space;
//! * **chunk merging off** → lower late-version throughput, slightly better
//!   space (no superchunk re-stores);
//! * **G-node off** → more space (no exact dedup, no compaction) and more
//!   containers read per restore (no SCC);
//! * **prefetch off** → restore throughput collapses to the single-channel
//!   latency-bound floor.

use std::sync::Arc;

use slim_bench::{bench_network, f1, scale, Table, VersionedFile};
use slim_gnode::GNode;
use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::restore::{RestoreEngine, RestoreOptions};
use slim_lnode::{LNode, StorageLayer};
use slim_oss::rocks::RocksConfig;
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId, VersionManifest};

struct Outcome {
    backup_mbps: f64,
    space_mib: f64,
    restore_mbps: f64,
    containers_per_100mb: f64,
}

fn run(
    stream: &VersionedFile,
    versions: usize,
    cfg: SlimConfig,
    gnode_on: bool,
    prefetch: bool,
) -> Outcome {
    let oss = Oss::new(bench_network());
    let storage = StorageLayer::open(Arc::new(oss.clone()));
    let similar = SimilarFileIndex::new();
    let node = LNode::new(storage.clone(), similar.clone(), cfg.clone()).unwrap();
    let gnode = gnode_on.then(|| {
        let global =
            GlobalIndex::open_with(Arc::new(oss.clone()), RocksConfig::default(), 1 << 20).unwrap();
        GNode::new(storage.clone(), global, similar, cfg.clone()).unwrap()
    });
    let mut mbps_acc = 0.0;
    let mut measured = 0usize;
    for v in 0..versions {
        let out = node
            .backup_file(&stream.file, VersionId(v as u64), &stream.version(v))
            .unwrap();
        if v >= 1 {
            mbps_acc += out.stats.throughput_mbps();
            measured += 1;
        }
        if let Some(g) = &gnode {
            let mut manifest = VersionManifest::new(VersionId(v as u64));
            manifest.files.push(out.info.clone());
            manifest.new_containers = out.new_containers.clone();
            storage.put_manifest(&manifest).unwrap();
            g.run_cycle(VersionId(v as u64)).unwrap();
        }
    }
    if let Some(g) = &gnode {
        g.vacuum().unwrap();
    }
    let space_mib = oss.stored_bytes_prefix("containers/") as f64 / (1024.0 * 1024.0);
    let mut opts = RestoreOptions::from_config(&cfg);
    if !prefetch {
        opts.prefetch_threads = 0;
    }
    let global = gnode.as_ref().map(|g| g.global_index());
    let engine = RestoreEngine::new(&storage, global);
    let (_, stats) = engine
        .restore_file(&stream.file, VersionId(versions as u64 - 1), &opts)
        .unwrap();
    Outcome {
        backup_mbps: mbps_acc / measured.max(1) as f64,
        space_mib,
        restore_mbps: stats.throughput_mbps(),
        containers_per_100mb: stats.containers_per_100mb(),
    }
}

fn main() {
    let bytes = (24.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 12;
    let stream = VersionedFile::new("ablation", bytes, versions, 0.84);
    println!("\n== Ablation: contribution of each design choice ({versions} versions) ==\n");
    let mut table = Table::new(&[
        "configuration",
        "backup MB/s (avg v1+)",
        "container space MiB",
        "restore MB/s (latest)",
        "containers/100MB",
    ]);
    let base = SlimConfig::default();
    let rows: Vec<(&str, SlimConfig, bool, bool)> = vec![
        ("full system", base.clone(), true, true),
        (
            "- skip chunking",
            base.clone().with_skip_chunking(false),
            true,
            true,
        ),
        (
            "- chunk merging",
            base.clone().with_chunk_merging(false),
            true,
            true,
        ),
        ("- G-node (reverse dedup + SCC)", base.clone(), false, true),
        ("- LAW prefetching", base.clone(), true, false),
    ];
    for (name, cfg, gnode_on, prefetch) in rows {
        let o = run(&stream, versions, cfg, gnode_on, prefetch);
        table.row(vec![
            name.to_string(),
            f1(o.backup_mbps),
            f1(o.space_mib),
            f1(o.restore_mbps),
            f1(o.containers_per_100mb),
        ]);
    }
    table.print();
    println!();
}
