//! Fig 8 — restore performance: caches, sparse container compaction, LAW
//! prefetching.
//!
//! Paper shapes (25 versions of S-DB backed up, then restored):
//! * (a,b) with prefetching disabled, the full-vision (FV) cache reads the
//!   fewest containers at every cache size; OPT (container-grained) wastes
//!   space on useless chunks and is worst; ALACC sits between;
//! * (c) with SCC the containers-read-per-100 MB of the *latest* version
//!   stabilizes over versions instead of growing without bound (ALACC, no
//!   SCC) — HAR+OPT also stabilizes but ~10 % worse than SCC+FV;
//! * (d) with LAW prefetching on, SCC+FV reaches ≈9.75× HAR+OPT and
//!   ≈16.35× ALACC restore throughput, and new versions restore as fast as
//!   old ones.

use std::sync::Arc;

use slim_baselines::{
    AlaccRestore, HarSystem, LruContainerRestore, OptContainerRestore, RestoreCacheSim,
};
use slim_bench::{bench_network, f1, scale, Table, VersionedFile};
use slim_chunking::{ChunkSpec, FastCdcChunker};
use slim_gnode::GNode;
use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::restore::{RestoreEngine, RestoreOptions};
use slim_lnode::{LNode, StorageLayer};
use slim_oss::rocks::RocksConfig;
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

struct Deployment {
    storage: StorageLayer,
    node: LNode,
    gnode: Option<GNode>,
}

fn deploy(with_gnode: bool) -> Deployment {
    let oss = Oss::new(bench_network());
    let storage = StorageLayer::open(Arc::new(oss.clone()));
    let similar = SimilarFileIndex::new();
    let cfg = SlimConfig::default();
    let node = LNode::new(storage.clone(), similar.clone(), cfg.clone()).unwrap();
    let gnode = with_gnode.then(|| {
        let global =
            GlobalIndex::open_with(Arc::new(oss), RocksConfig::default(), 1 << 20).unwrap();
        GNode::new(storage.clone(), global, similar, cfg).unwrap()
    });
    Deployment {
        storage,
        node,
        gnode,
    }
}

/// Back up every version; with a G-node, run its cycle after each version
/// and record the read amplification of restoring the *current* version —
/// the Fig 8(c) time series.
fn backup_all(dep: &Deployment, stream: &VersionedFile, versions: usize) -> Vec<f64> {
    let mut series = Vec::new();
    for v in 0..versions {
        let out = dep
            .node
            .backup_file(&stream.file, VersionId(v as u64), &stream.version(v))
            .unwrap();
        if let Some(gnode) = &dep.gnode {
            let mut manifest = slim_types::VersionManifest::new(VersionId(v as u64));
            manifest.files.push(out.info.clone());
            manifest.new_containers = out.new_containers.clone();
            dep.storage.put_manifest(&manifest).unwrap();
            gnode.run_cycle(VersionId(v as u64)).unwrap();
            let opts = RestoreOptions::from_config(&SlimConfig::default()).without_prefetch();
            let engine = RestoreEngine::new(&dep.storage, Some(gnode.global_index()));
            let (_, st) = engine
                .restore_file(&stream.file, VersionId(v as u64), &opts)
                .unwrap();
            series.push(st.containers_per_100mb());
        }
    }
    series
}

fn main() {
    let bytes = (24.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 15;
    let stream = VersionedFile::new("fig8", bytes, versions, 0.84);

    // Plain deployment (no G-node): used for the cache comparison and as the
    // "no SCC" arm of (c).
    let plain = deploy(false);
    backup_all(&plain, &stream, versions);
    // SCC deployment: G-node cycle after every version, measuring the
    // current version's read amplification as the history grows.
    let scc = deploy(true);
    let scc_series = backup_all(&scc, &stream, versions);
    // HAR baseline.
    let har_storage = StorageLayer::open(Arc::new(Oss::new(bench_network())));
    let cfg = SlimConfig::default();
    let mut har = HarSystem::new(
        har_storage.clone(),
        cfg.clone(),
        Box::new(FastCdcChunker::new(ChunkSpec::from_config(&cfg))),
    );
    for v in 0..versions {
        har.backup_file(&stream.file, VersionId(v as u64), &stream.version(v))
            .unwrap();
    }

    let last = VersionId(versions as u64 - 1);

    // ---- (a,b): cache comparison at several cache sizes, prefetch off ----
    println!(
        "\n== Fig 8(a,b): restore caches, prefetch disabled (version v{}) ==\n",
        last.0
    );
    let mut table = Table::new(&["cache size", "cache", "MB/s", "containers / 100MB"]);
    for cache_mb in [2usize, 8, 32] {
        let cache_bytes = cache_mb * 1024 * 1024;
        // FV (SLIMSTORE, plain deployment to isolate the cache itself).
        let opts = RestoreOptions {
            cache_mem: cache_bytes,
            cache_disk: 4 * cache_bytes,
            law_window: SlimConfig::default().law_window,
            prefetch_threads: 0,
        };
        let engine = RestoreEngine::new(&plain.storage, None);
        let (_, fv) = engine.restore_file(&stream.file, last, &opts).unwrap();
        let recipe = plain.storage.get_recipe(&stream.file, last).unwrap();
        let mut rows: Vec<(&str, slim_lnode::RestoreStats)> = vec![("FV (SLIMSTORE)", fv)];
        let mut opt = OptContainerRestore::new(cache_bytes, SlimConfig::default().law_window);
        rows.push((
            "OPT container",
            opt.restore(&plain.storage, &recipe).unwrap().1,
        ));
        let mut alacc = AlaccRestore::new(
            cache_bytes / 4,
            cache_bytes,
            SlimConfig::default().law_window,
        );
        rows.push(("ALACC", alacc.restore(&plain.storage, &recipe).unwrap().1));
        let mut lru = LruContainerRestore::new(cache_bytes);
        rows.push((
            "LRU container",
            lru.restore(&plain.storage, &recipe).unwrap().1,
        ));
        for (name, stats) in rows {
            table.row(vec![
                format!("{cache_mb} MB"),
                name.to_string(),
                f1(stats.throughput_mbps()),
                f1(stats.containers_per_100mb()),
            ]);
        }
    }
    table.print();

    // ---- (c): read amplification of the current version over time -------
    println!("\n== Fig 8(c): containers / 100MB restoring the current version ==\n");
    let big = 64 * 1024 * 1024;
    let mut table = Table::new(&["version", "SCC+FV", "ALACC (no SCC)", "HAR+OPT"]);
    for v in 0..versions {
        let vid = VersionId(v as u64);
        // Without a G-node nothing changes after a version's backup, so
        // restoring v now equals restoring it when it was current.
        let plain_recipe = plain.storage.get_recipe(&stream.file, vid).unwrap();
        let (_, alacc) = AlaccRestore::new(big / 4, big, SlimConfig::default().law_window)
            .restore(&plain.storage, &plain_recipe)
            .unwrap();
        let har_recipe = har_storage.get_recipe(&stream.file, vid).unwrap();
        let (_, opt) = OptContainerRestore::new(big, SlimConfig::default().law_window)
            .restore(&har_storage, &har_recipe)
            .unwrap();
        table.row(vec![
            format!("v{v}"),
            f1(scc_series[v]),
            f1(alacc.containers_per_100mb()),
            f1(opt.containers_per_100mb()),
        ]);
    }
    table.print();

    // ---- (d): LAW prefetching -------------------------------------------
    println!("\n== Fig 8(d): restore throughput with LAW prefetching ==\n");
    let mut table = Table::new(&["configuration", "version", "MB/s"]);
    for &(v, label) in &[(0u64, "old (v0)"), (last.0, "new (latest)")] {
        let opts = RestoreOptions::from_config(&SlimConfig::default());
        let scc_global = scc.gnode.as_ref().map(|g| g.global_index());
        let engine = RestoreEngine::new(&scc.storage, scc_global);
        let (_, fv) = engine
            .restore_file(&stream.file, VersionId(v), &opts)
            .unwrap();
        table.row(vec![
            "SCC+FV+LAW (SLIMSTORE)".into(),
            label.to_string(),
            f1(fv.throughput_mbps()),
        ]);
    }
    let har_recipe = har_storage.get_recipe(&stream.file, last).unwrap();
    let (_, opt) = OptContainerRestore::new(big, SlimConfig::default().law_window)
        .restore(&har_storage, &har_recipe)
        .unwrap();
    table.row(vec![
        "HAR+OPT".into(),
        "new (latest)".into(),
        f1(opt.throughput_mbps()),
    ]);
    let plain_recipe = plain.storage.get_recipe(&stream.file, last).unwrap();
    let (_, alacc) = AlaccRestore::new(big / 4, big, SlimConfig::default().law_window)
        .restore(&plain.storage, &plain_recipe)
        .unwrap();
    table.row(vec![
        "ALACC".into(),
        "new (latest)".into(),
        f1(alacc.throughput_mbps()),
    ]);
    table.print();
    println!();
}
