//! Fig 7 — fast online deduplication vs SiLO and Sparse Indexing.
//!
//! Paper shapes (25 versions of S-DB, 4 KB chunks, merge threshold 5):
//! * (a) SLIMSTORE's throughput leads before merging kicks in (1.32× SiLO,
//!   1.39× Sparse Indexing), dips at the version where chunk merging
//!   triggers (superchunks must be stored), then leads by 1.63×/1.72×;
//! * (b) all three achieve almost the same dedup ratio; SLIMSTORE gives up
//!   ~1.5 % to chunk merging.

use std::sync::Arc;

use slim_baselines::{SiloSystem, SparseIndexingSystem};
use slim_bench::{bench_network_fast, f1, pct, scale, Table, VersionedFile};
use slim_chunking::{ChunkSpec, FastCdcChunker};
use slim_index::SimilarFileIndex;
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

fn main() {
    let bytes = (24.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 25;
    let stream = VersionedFile::new("fig7", bytes, versions, 0.84);
    println!("\n== Fig 7: SLIMSTORE vs SiLO vs Sparse Indexing ({versions} versions) ==\n");

    let cfg = SlimConfig::default(); // skip + merging on, threshold 5
    let chunk_spec = ChunkSpec::from_config(&cfg);

    // SLIMSTORE L-node.
    let slim_storage = StorageLayer::open(Arc::new(Oss::new(bench_network_fast())));
    let slim = LNode::new(slim_storage, SimilarFileIndex::new(), cfg.clone()).unwrap();
    // SiLO.
    let silo_storage = StorageLayer::open(Arc::new(Oss::new(bench_network_fast())));
    let mut silo = SiloSystem::new(
        silo_storage,
        cfg.clone(),
        Box::new(FastCdcChunker::new(chunk_spec)),
    );
    // Sparse Indexing.
    let sparse_storage = StorageLayer::open(Arc::new(Oss::new(bench_network_fast())));
    let mut sparse = SparseIndexingSystem::new(
        sparse_storage,
        cfg.clone(),
        Box::new(FastCdcChunker::new(chunk_spec)),
    );

    let mut table = Table::new(&[
        "version",
        "SLIM MB/s",
        "SiLO MB/s",
        "Sparse MB/s",
        "vs SiLO",
        "vs Sparse",
        "SLIM ratio",
        "SiLO ratio",
        "Sparse ratio",
    ]);
    let mut cum = [[0u64; 2]; 3]; // [system][logical, stored]
    let mut speedups_pre = Vec::new();
    let mut speedups_post = Vec::new();
    for v in 0..versions {
        let data = stream.version(v);
        let slim_out = slim
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap()
            .stats;
        let silo_out = silo
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        let sparse_out = sparse
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        for (i, (logical, stored)) in [
            (slim_out.logical_bytes, slim_out.stored_bytes),
            (silo_out.logical_bytes, silo_out.stored_bytes),
            (sparse_out.logical_bytes, sparse_out.stored_bytes),
        ]
        .into_iter()
        .enumerate()
        {
            cum[i][0] += logical;
            cum[i][1] += stored;
        }
        let ratio = |i: usize| 1.0 - cum[i][1] as f64 / cum[i][0] as f64;
        let vs_silo = slim_out.throughput_mbps() / silo_out.throughput_mbps().max(1e-9);
        let vs_sparse = slim_out.throughput_mbps() / sparse_out.throughput_mbps().max(1e-9);
        if v >= 1 && v < 5 {
            speedups_pre.push((vs_silo, vs_sparse));
        }
        if v >= 7 {
            speedups_post.push((vs_silo, vs_sparse));
        }
        table.row(vec![
            format!("v{v}"),
            f1(slim_out.throughput_mbps()),
            f1(silo_out.throughput_mbps()),
            f1(sparse_out.throughput_mbps()),
            format!("{vs_silo:.2}x"),
            format!("{vs_sparse:.2}x"),
            pct(ratio(0)),
            pct(ratio(1)),
            pct(ratio(2)),
        ]);
    }
    table.print();
    let avg = |v: &[(f64, f64)], i: usize| {
        v.iter()
            .map(|p| if i == 0 { p.0 } else { p.1 })
            .sum::<f64>()
            / v.len().max(1) as f64
    };
    println!(
        "\nbefore merging (v1-v4):  {:.2}x vs SiLO, {:.2}x vs Sparse Indexing (paper: 1.32x / 1.39x)",
        avg(&speedups_pre, 0),
        avg(&speedups_pre, 1)
    );
    println!(
        "after merging  (v7-v24): {:.2}x vs SiLO, {:.2}x vs Sparse Indexing (paper: 1.63x / 1.72x)",
        avg(&speedups_post, 0),
        avg(&speedups_post, 1)
    );
    println!();
}
