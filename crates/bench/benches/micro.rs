//! Criterion micro-benchmarks of the hot primitives.
//!
//! These are the per-byte and per-operation costs the system-level
//! experiments are built from: CDC scan speed per algorithm (the Fig 2/5
//! CPU story), SHA-1 fingerprinting, boundary probing (the skip-chunking
//! fast path), bloom filters, the dedup cache, and Rocks-OSS point reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use slim_chunking::{ChunkSpec, Chunker, FastCdcChunker, FixedChunker, GearChunker, RabinChunker};
use slim_index::DedupCache;
use slim_oss::rocks::{RocksConfig, RocksOss};
use slim_oss::{ObjectStore, Oss};
use slim_types::bloom::{BloomFilter, CountingBloomFilter};
use slim_types::{ChunkRecord, ContainerId, Fingerprint, SegmentRecipe};

fn test_data(len: usize) -> Vec<u8> {
    use rand::{RngCore, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

fn bench_chunkers(c: &mut Criterion) {
    let data = test_data(4 * 1024 * 1024);
    let spec = ChunkSpec::new(1024, 4096, 16 * 1024);
    let mut group = c.benchmark_group("cdc_scan");
    group.throughput(Throughput::Bytes(data.len() as u64));
    let chunkers: Vec<(&str, Box<dyn Chunker>)> = vec![
        ("rabin", Box::new(RabinChunker::new(spec))),
        ("gear", Box::new(GearChunker::new(spec))),
        ("fastcdc", Box::new(FastCdcChunker::new(spec))),
        ("fixed", Box::new(FixedChunker::new(4096))),
    ];
    for (name, chunker) in &chunkers {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut pos = 0;
                let mut cuts = 0u64;
                while pos < data.len() {
                    pos = chunker.next_boundary(&data, pos);
                    cuts += 1;
                }
                cuts
            })
        });
    }
    group.finish();

    // The skip-chunking probe: O(window) instead of a full scan.
    let mut group = c.benchmark_group("boundary_probe");
    for (name, chunker) in &chunkers {
        group.bench_function(*name, |b| {
            let end = chunker.next_boundary(&data, 0);
            b.iter(|| chunker.is_boundary(&data, 0, end))
        });
    }
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1_fingerprint");
    for kb in [4usize, 64] {
        let data = test_data(kb * 1024);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kb}KB")),
            &data,
            |b, d| b.iter(|| slim_chunking::fingerprint(d)),
        );
    }
    group.finish();
}

fn bench_blooms(c: &mut Criterion) {
    let mut bloom = BloomFilter::with_rate(100_000, 0.01);
    let mut cbf = CountingBloomFilter::new(100_000);
    for i in 0..100_000u64 {
        bloom.insert(i);
        cbf.insert(i);
    }
    c.bench_function("bloom_may_contain", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            bloom.may_contain(i)
        })
    });
    c.bench_function("cbf_may_contain", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            cbf.may_contain(i)
        })
    });
}

fn bench_dedup_cache(c: &mut Criterion) {
    let mut cache = DedupCache::new(64);
    let mut fps = Vec::new();
    for seg in 0..64u32 {
        let records: Vec<ChunkRecord> = (0..128u32)
            .map(|i| {
                let mut bytes = [0u8; 20];
                bytes[..4].copy_from_slice(&seg.to_le_bytes());
                bytes[4..8].copy_from_slice(&i.to_le_bytes());
                let fp = Fingerprint::from_bytes(bytes);
                fps.push(fp);
                ChunkRecord::new(fp, ContainerId(seg as u64), 4096, 1)
            })
            .collect();
        cache.insert_segment(SegmentRecipe::new(records), seg);
    }
    c.bench_function("dedup_cache_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % fps.len();
            cache.lookup(&fps[i])
        })
    });
}

fn bench_rocks(c: &mut Criterion) {
    let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
    let db = RocksOss::create(oss, "bench/", RocksConfig::default());
    for i in 0..50_000u64 {
        db.put(&i.to_be_bytes(), &[0u8; 16]).unwrap();
    }
    db.flush().unwrap();
    c.bench_function("rocks_get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 50_000;
            db.get(&i.to_be_bytes()).unwrap()
        })
    });
    c.bench_function("rocks_get_miss", |b| {
        let mut i = 100_000u64;
        b.iter(|| {
            i += 1;
            db.get(&i.to_be_bytes()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chunkers, bench_fingerprint, bench_blooms, bench_dedup_cache, bench_rocks
}
criterion_main!(benches);
