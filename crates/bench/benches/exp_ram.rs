//! Supplementary: resident index RAM across dedup systems.
//!
//! Not a paper figure, but the tradeoff the paper's related-work section
//! frames (DeFrame, SiLO, Sparse Indexing all exist to shrink the resident
//! fingerprint index). Expected ordering after the same backup history:
//!
//! * HAR / Capping — exact index: one resident entry **per unique chunk**;
//! * Sparse Indexing — one entry per *hook* (sampled fingerprint);
//! * SiLO — one entry per *segment* (representative fingerprint);
//! * SLIMSTORE — no resident index at all: L-nodes are stateless (a
//!   per-job dedup cache bounded at 64 segments), the exact index lives on
//!   OSS and is only consulted offline.

use std::sync::Arc;

use slim_baselines::{CappingSystem, HarSystem, LbwSystem, SiloSystem, SparseIndexingSystem};
use slim_bench::{scale, Table, VersionedFile};
use slim_chunking::{ChunkSpec, FastCdcChunker};
use slim_index::SimilarFileIndex;
use slim_lnode::{LNode, StorageLayer};
use slim_oss::Oss;
use slim_types::{SlimConfig, VersionId};

/// Rough per-entry costs (key + value + map overhead), for a bytes column.
const EXACT_ENTRY_BYTES: usize = 20 + 16 + 48;
const HOOK_ENTRY_BYTES: usize = 20 + 8 * 8 + 48;
const SHTABLE_ENTRY_BYTES: usize = 20 + 8 + 48;

fn main() {
    let bytes = (24.0 * 1024.0 * 1024.0 * scale()) as usize;
    let versions = 10;
    let stream = VersionedFile::new("ram", bytes, versions, 0.84);
    let cfg = SlimConfig::default();
    let chunker = || Box::new(FastCdcChunker::new(ChunkSpec::from_config(&cfg)));

    let storage = || StorageLayer::open(Arc::new(Oss::in_memory()));
    let mut har = HarSystem::new(storage(), cfg.clone(), chunker());
    let mut capping = CappingSystem::new(storage(), cfg.clone(), chunker(), 4);
    let mut lbw = LbwSystem::new(storage(), cfg.clone(), chunker(), 64, 8);
    let mut silo = SiloSystem::new(storage(), cfg.clone(), chunker());
    let mut sparse = SparseIndexingSystem::new(storage(), cfg.clone(), chunker());
    let slim = LNode::new(storage(), SimilarFileIndex::new(), cfg.clone()).unwrap();

    let mut total_chunks = 0u64;
    for v in 0..versions {
        let data = stream.version(v);
        har.backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        capping
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        lbw.backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        silo.backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        sparse
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        let out = slim
            .backup_file(&stream.file, VersionId(v as u64), &data)
            .unwrap();
        total_chunks += out.stats.chunks;
    }

    println!("\n== Supplementary: resident index RAM after {versions} versions ({total_chunks} chunk records processed) ==\n");
    let mut table = Table::new(&[
        "system",
        "resident entries",
        "approx KiB",
        "entry granularity",
    ]);
    let row = |name: &str, entries: usize, per: usize, gran: &str| {
        vec![
            name.to_string(),
            entries.to_string(),
            format!("{:.1}", (entries * per) as f64 / 1024.0),
            gran.to_string(),
        ]
    };
    table.row(row(
        "HAR (exact index)",
        har.index_entries(),
        EXACT_ENTRY_BYTES,
        "per unique chunk",
    ));
    table.row(row(
        "Capping (exact index)",
        capping.index_entries(),
        EXACT_ENTRY_BYTES,
        "per unique chunk",
    ));
    table.row(row(
        "LBW (exact index)",
        lbw.index_entries(),
        EXACT_ENTRY_BYTES,
        "per unique chunk",
    ));
    table.row(row(
        "Sparse Indexing",
        sparse.index_entries(),
        HOOK_ENTRY_BYTES,
        "per hook (fp mod R == 0)",
    ));
    table.row(row(
        "SiLO (SHTable)",
        silo.shtable_entries(),
        SHTABLE_ENTRY_BYTES,
        "per segment representative",
    ));
    table.row(row(
        "SLIMSTORE L-node",
        0,
        0,
        "stateless (per-job cache only)",
    ));
    table.print();
    println!();
}
