//! Fig 9 — space cost under G-node management.
//!
//! Paper shapes (25 versions of S-DB):
//! * (a) L-node dedup alone shrinks 2.44 TB to 516.6 GB (≈4.8×); global
//!   reverse dedup (G-dedupe) trims a further ~2.4 %; with a 10-version
//!   retention window the space curve flattens after version 10;
//! * (b) the space occupied by version 0's containers *decreases* over time
//!   (no collection): SCC and reverse dedup keep moving shared data forward
//!   into newer containers.

use slim_bench::{f1, pct, scale, Table};
use slim_oss::rocks::RocksConfig;
use slim_types::VersionId;
use slim_workload::{Workload, WorkloadConfig};
use slimstore::SlimStoreBuilder;

fn store() -> slimstore::SlimStore {
    SlimStoreBuilder::in_memory()
        .with_rocks_config(RocksConfig::default())
        .build()
        .unwrap()
}

fn main() {
    let mut cfg = WorkloadConfig::sdb(scale());
    cfg.files = cfg.files.min(4);
    cfg.versions = 20;
    let workload = Workload::new(cfg.clone());

    // Three deployments: L-dedupe only; L+G; L+G with a 10-version window.
    let l_only = store();
    let lg = store();
    let lg_retain = store();

    println!("\n== Fig 9(a): cumulative space (MiB) ==\n");
    let mut table = Table::new(&[
        "version",
        "no dedup",
        "L-dedupe",
        "L+G-dedupe",
        "L+G, keep last 10",
    ]);
    let mut logical_total = 0u64;
    let mut v0_series: Vec<u64> = Vec::new();
    for v in 0..cfg.versions {
        let files: Vec<_> = workload
            .version_files(v)
            .map(|f| (f.file, f.data))
            .collect();
        logical_total += files.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
        for (st, gnode, retain) in [
            (&l_only, false, false),
            (&lg, true, false),
            (&lg_retain, true, true),
        ] {
            let report = st.backup_version(files.clone()).unwrap();
            if gnode {
                st.run_gnode_cycle(report.version).unwrap();
                st.gnode().vacuum().unwrap();
            }
            if retain {
                st.retain_last(10).unwrap();
            }
        }
        v0_series.push(lg.gnode().version_occupied_bytes(VersionId(0)).unwrap());
        table.row(vec![
            format!("v{v}"),
            f1(logical_total as f64 / (1024.0 * 1024.0)),
            f1(l_only.space_report().unwrap().container_bytes as f64 / (1024.0 * 1024.0)),
            f1(lg.space_report().unwrap().container_bytes as f64 / (1024.0 * 1024.0)),
            f1(lg_retain.space_report().unwrap().container_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    table.print();
    let l_bytes = l_only.space_report().unwrap().container_bytes as f64;
    let lg_bytes = lg.space_report().unwrap().container_bytes as f64;
    println!(
        "\nL-dedupe reduction: {:.2}x (paper 4.8x); G-dedupe extra: {} (paper 2.4%)\n",
        logical_total as f64 / l_bytes,
        pct((l_bytes - lg_bytes) / l_bytes),
    );

    // ---- (b): space occupied by version 0 over time ----------------------
    println!("== Fig 9(b): live bytes in version 0's containers over time (MiB) ==\n");
    let mut table = Table::new(&["as of version", "v0 occupied (MiB)"]);
    for (v, bytes) in v0_series.iter().enumerate() {
        table.row(vec![format!("v{v}"), f1(*bytes as f64 / (1024.0 * 1024.0))]);
    }
    table.print();
    let first = v0_series.first().copied().unwrap_or(0);
    let last = v0_series.last().copied().unwrap_or(0);
    println!(
        "\nv0 occupied space: {} -> {} MiB ({} reduction)\n",
        f1(first as f64 / (1024.0 * 1024.0)),
        f1(last as f64 / (1024.0 * 1024.0)),
        pct(1.0 - last as f64 / first.max(1) as f64),
    );
}
