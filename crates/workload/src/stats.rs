//! Dataset statistics — the Table I reproduction.

use crate::generator::Workload;

/// The characteristics row of one dataset (Table I of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total bytes across all versions.
    pub total_bytes: u64,
    /// Number of versions.
    pub versions: usize,
    /// Number of files.
    pub files: usize,
    /// Average between-version duplication ratio.
    pub avg_dup_ratio: f64,
    /// Average within-version self-reference fraction.
    pub self_reference: f64,
}

impl DatasetStats {
    /// Measure a workload. `sample_files` bounds how many files are measured
    /// for the ratio statistics (content generation is the expensive part);
    /// sizes are exact.
    pub fn measure(workload: &Workload, sample_files: usize) -> DatasetStats {
        let cfg = workload.config();
        let mut total_bytes: u64 = 0;
        for v in 0..cfg.versions {
            for f in 0..cfg.files {
                total_bytes += workload.file_bytes(f, v).len() as u64;
            }
        }
        let step = (cfg.files / sample_files.max(1)).max(1);
        let sampled: Vec<usize> = (0..cfg.files).step_by(step).collect();
        let mut dup_sum = 0.0;
        let mut dup_n = 0usize;
        for &f in &sampled {
            for v in 1..cfg.versions {
                dup_sum += workload.measured_dup_ratio(f, v);
                dup_n += 1;
            }
        }
        let mut self_sum = 0.0;
        for &f in &sampled {
            self_sum += workload.measured_self_reference(f, 0);
        }
        DatasetStats {
            name: cfg.name.clone(),
            total_bytes,
            versions: cfg.versions,
            files: cfg.files,
            avg_dup_ratio: if dup_n == 0 {
                0.0
            } else {
                dup_sum / dup_n as f64
            },
            self_reference: self_sum / sampled.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;

    #[test]
    fn tiny_dataset_statistics_match_config() {
        let cfg = WorkloadConfig::tiny_for_tests();
        let w = Workload::new(cfg.clone());
        let stats = DatasetStats::measure(&w, 3);
        assert_eq!(stats.versions, cfg.versions);
        assert_eq!(stats.files, cfg.files);
        assert!(stats.total_bytes > 0);
        let target_mid = (cfg.dup_ratio_min + cfg.dup_ratio_max) / 2.0;
        assert!(
            (stats.avg_dup_ratio - target_mid).abs() < 0.2,
            "avg dup ratio {} far from configured mid {}",
            stats.avg_dup_ratio,
            target_mid
        );
        assert!(stats.self_reference > 0.0);
    }
}
