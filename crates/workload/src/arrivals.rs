//! Seeded open-loop arrival processes for frontend/QoS experiments.
//!
//! A closed-loop driver (issue, wait, issue again) can never overload a
//! system — its arrival rate falls to match the service rate, which is
//! exactly the behaviour admission control exists to replace. QoS
//! experiments therefore need an *open-loop* process: arrival times drawn
//! independently of completions, so when the offered rate exceeds the
//! service rate the backlog grows and the admission plane must shed.
//!
//! [`PoissonArrivals`] generates exponentially distributed inter-arrival
//! gaps (`gap = -ln(1 - u) / rate`), i.e. a Poisson process — the
//! standard memoryless model of independent clients. It is an iterator
//! over absolute virtual timestamps, deterministic in its seed, and
//! carries no clock of its own: experiments replay the timestamps against
//! a real or manual clock as they see fit.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded open-loop Poisson arrival process: an infinite iterator of
/// absolute arrival times (offsets from the experiment's origin), strictly
/// non-decreasing, with exponential inter-arrival gaps of mean
/// `1 / rate_per_sec`.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    next: Duration,
    rng: StdRng,
}

impl PoissonArrivals {
    /// A process offering `rate_per_sec` arrivals per second on average.
    /// The first arrival is at the origin plus one exponential gap.
    ///
    /// # Panics
    /// If `rate_per_sec` is not finite and positive — an open-loop driver
    /// with no rate is a configuration bug, not a runtime condition.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be finite and > 0, got {rate_per_sec}"
        );
        PoissonArrivals {
            rate_per_sec,
            next: Duration::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured mean offered rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The arrival timestamps within `[0, horizon)`, collected. A
    /// convenience for experiments that pre-plan a fixed window.
    pub fn take_until(mut self, horizon: Duration) -> Vec<Duration> {
        let mut arrivals = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                return arrivals;
            }
            arrivals.push(t);
        }
    }

    fn next_arrival(&mut self) -> Duration {
        // Inverse-CDF sampling of Exp(rate): gap = -ln(1 - u) / rate with
        // u uniform in [0, 1). `1 - u` is never zero, so ln is finite.
        let u: f64 = self.rng.gen();
        let gap = -(1.0 - u).ln() / self.rate_per_sec;
        self.next += Duration::from_secs_f64(gap);
        self.next
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<Duration> = PoissonArrivals::new(100.0, 7).take(50).collect();
        let b: Vec<Duration> = PoissonArrivals::new(100.0, 7).take(50).collect();
        let c: Vec<Duration> = PoissonArrivals::new(100.0, 8).take(50).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let arrivals: Vec<Duration> = PoissonArrivals::new(1000.0, 42).take(500).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_rate_matches_configuration() {
        // 2000 arrivals at 50/s should span ~40s; the sample mean of an
        // exponential concentrates tightly at n = 2000 (std err ~2.2%).
        let n = 2000;
        let last = PoissonArrivals::new(50.0, 1).take(n).last().unwrap();
        let observed = n as f64 / last.as_secs_f64();
        assert!(
            (observed - 50.0).abs() < 5.0,
            "observed rate {observed}/s, configured 50/s"
        );
    }

    #[test]
    fn take_until_respects_horizon() {
        let horizon = Duration::from_secs(2);
        let arrivals = PoissonArrivals::new(100.0, 3).take_until(horizon);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|t| *t < horizon));
        // ~200 expected; allow wide slack, this only guards gross bugs.
        assert!(arrivals.len() > 120 && arrivals.len() < 300);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be finite")]
    fn zero_rate_is_a_configuration_bug() {
        let _ = PoissonArrivals::new(0.0, 1);
    }
}
