//! Synthetic multi-version backup workloads.
//!
//! Reproduces the *statistics* of the two datasets in Table I of the
//! SLIMSTORE paper at a configurable scale:
//!
//! | dataset | size | versions | files | avg dup ratio | self-reference |
//! |---------|------|----------|-------|---------------|----------------|
//! | S-DB    | 2.44 TB | 25 | 500 | 0.84 (0.65–0.95 per file) | 20 % |
//! | R-Data  | 1.53 TB | 13 | 7440 | 0.92 | 0.1 % |
//!
//! S-DB simulates database table files evolved by insert/update/delete
//! operations; R-Data models a real enterprise backup (many files, high
//! duplication, almost no self-reference). Since the real traces are
//! proprietary / too large, this generator produces seeded, fully
//! deterministic content whose *between-version duplication ratio*,
//! *mutation locality* (in-place updates plus shifting inserts/deletes,
//! which exercise CDC boundary-shift resistance) and *self-reference rate*
//! match the reported numbers. Size is a scale parameter.
//!
//! Determinism contract: the bytes of `(file, version)` depend only on the
//! workload config (including its seed) — any two calls, in any process,
//! produce identical bytes. Experiments are therefore reproducible and files
//! can be regenerated lazily instead of held in memory.

pub mod arrivals;
pub mod generator;
pub mod stats;

pub use arrivals::PoissonArrivals;
pub use generator::{FileVersion, Workload, WorkloadConfig};
pub use stats::DatasetStats;
