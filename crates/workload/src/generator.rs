//! The multi-version file generator.
//!
//! Every file is a sequence of *logical blocks*; a block's bytes are a pure
//! function of its `(seed, len)`. A new version mutates the block list:
//!
//! * **update** — replace a block's seed (content changes in place);
//! * **insert** — splice in a brand-new block (shifts everything after it —
//!   the boundary-shift case fixed-size chunking cannot handle);
//! * **delete** — remove a block (also shifts).
//!
//! The number of mutated bytes per version is `(1 - dup_ratio) ×
//! file_size`, so the *duplication ratio between adjacent versions* is the
//! `dup_ratio` knob. Self-reference is injected at generation time: a block
//! reuses an earlier block's seed with probability `self_ref_rate`, creating
//! identical chunk runs *within* one version stream (§V-A's self-reference
//! fragments).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use slim_types::bloom::mix64;
use slim_types::FileId;

/// Configuration of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Dataset name (for reports).
    pub name: String,
    /// Number of files.
    pub files: usize,
    /// Number of backup versions (version 0 is the initial full backup).
    pub versions: usize,
    /// Logical blocks per file at version 0.
    pub blocks_per_file: usize,
    /// Mean block length in bytes (individual blocks vary ±50 %).
    pub block_len: usize,
    /// Per-file duplication ratio range; file `i` gets a ratio interpolated
    /// across `[min, max]` (the paper's S-DB tables span 0.65–0.95).
    pub dup_ratio_min: f64,
    /// Upper bound of the per-file duplication ratio range.
    pub dup_ratio_max: f64,
    /// Probability that a block duplicates an earlier block of the same file.
    pub self_ref_rate: f64,
    /// Fraction of the file that is *hot*: every mutation lands inside the
    /// leading `hot_fraction` of the block list, so the cold remainder stays
    /// byte-stable across versions — the update pattern of real database
    /// files, where old pages essentially never change. `1.0` mutates
    /// uniformly.
    pub hot_fraction: f64,
    /// Master seed; all content is a pure function of this.
    pub seed: u64,
}

impl WorkloadConfig {
    /// S-DB-shaped dataset (Table I): per-file dup ratio 0.65–0.95
    /// (average 0.84 with uniform spread... the paper's average), 25
    /// versions, 20 % self-reference. `scale` multiplies file count and
    /// per-file size; `scale = 1.0` is a laptop-sized ~64 MB/version.
    pub fn sdb(scale: f64) -> Self {
        WorkloadConfig {
            name: "S-DB".into(),
            files: ((10.0 * scale).round() as usize).max(2),
            versions: 25,
            blocks_per_file: 800,
            block_len: 8 * 1024,
            dup_ratio_min: 0.65,
            dup_ratio_max: 0.95,
            self_ref_rate: 0.20,
            hot_fraction: 0.35,
            seed: 0x5DB0,
        }
    }

    /// R-Data-shaped dataset (Table I): many smaller files, dup ratio 0.92,
    /// 13 versions, negligible self-reference.
    pub fn rdata(scale: f64) -> Self {
        WorkloadConfig {
            name: "R-Data".into(),
            files: ((74.0 * scale).round() as usize).max(4),
            versions: 13,
            blocks_per_file: 96,
            block_len: 8 * 1024,
            dup_ratio_min: 0.92,
            dup_ratio_max: 0.92,
            self_ref_rate: 0.001,
            hot_fraction: 0.35,
            seed: 0x4DA7A,
        }
    }

    /// A tiny deterministic dataset for unit/integration tests.
    pub fn tiny_for_tests() -> Self {
        WorkloadConfig {
            name: "tiny".into(),
            files: 3,
            versions: 5,
            blocks_per_file: 24,
            block_len: 512,
            dup_ratio_min: 0.70,
            dup_ratio_max: 0.95,
            self_ref_rate: 0.15,
            hot_fraction: 1.0,
            seed: 42,
        }
    }

    /// Override the dup-ratio range to a single value.
    pub fn with_dup_ratio(mut self, ratio: f64) -> Self {
        self.dup_ratio_min = ratio;
        self.dup_ratio_max = ratio;
        self
    }
}

/// One logical block of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockRef {
    seed: u64,
    len: u32,
}

impl BlockRef {
    fn materialize(&self, out: &mut Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let start = out.len();
        out.resize(start + self.len as usize, 0);
        rng.fill_bytes(&mut out[start..]);
    }
}

/// The bytes of one file at one version, plus provenance.
#[derive(Debug, Clone)]
pub struct FileVersion {
    /// The file's id (path).
    pub file: FileId,
    /// Version number.
    pub version: usize,
    /// File contents.
    pub data: Vec<u8>,
}

/// A deterministic multi-version workload.
///
/// ```
/// use slim_workload::{Workload, WorkloadConfig};
/// let w = Workload::new(WorkloadConfig::tiny_for_tests());
/// // Fully deterministic: same config, same bytes.
/// assert_eq!(w.file_bytes(0, 1), Workload::new(WorkloadConfig::tiny_for_tests()).file_bytes(0, 1));
/// // Adjacent versions share most content (the dedup opportunity).
/// assert!(w.measured_dup_ratio(0, 1) > 0.5);
/// ```
pub struct Workload {
    config: WorkloadConfig,
}

impl Workload {
    /// Build a workload from its config.
    pub fn new(config: WorkloadConfig) -> Self {
        Workload { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Ids of all files, in stable order.
    pub fn file_ids(&self) -> Vec<FileId> {
        (0..self.config.files).map(|i| self.file_id(i)).collect()
    }

    /// Id of file `idx`.
    pub fn file_id(&self, idx: usize) -> FileId {
        FileId::new(format!("{}/file_{idx:04}", self.config.name.to_lowercase()))
    }

    /// Duplication ratio assigned to file `idx` (interpolated across the
    /// configured range).
    pub fn file_dup_ratio(&self, idx: usize) -> f64 {
        if self.config.files <= 1 {
            return (self.config.dup_ratio_min + self.config.dup_ratio_max) / 2.0;
        }
        let t = idx as f64 / (self.config.files - 1) as f64;
        self.config.dup_ratio_min + t * (self.config.dup_ratio_max - self.config.dup_ratio_min)
    }

    fn file_seed(&self, idx: usize) -> u64 {
        mix64(self.config.seed ^ mix64(idx as u64 + 1))
    }

    /// The block list of file `idx` at `version`, derived by replaying the
    /// mutation history from version 0.
    fn blocks_at(&self, idx: usize, version: usize) -> Vec<BlockRef> {
        let fseed = self.file_seed(idx);
        let mut rng = StdRng::seed_from_u64(fseed);
        let mut blocks: Vec<BlockRef> = Vec::with_capacity(self.config.blocks_per_file);
        let mut next_block_seq: u64 = 0;
        let new_block = |rng: &mut StdRng, blocks: &[BlockRef], seq: &mut u64| -> BlockRef {
            // Self-reference: reuse an earlier block's seed.
            if !blocks.is_empty() && rng.gen_bool(self.config.self_ref_rate) {
                let src = blocks[rng.gen_range(0..blocks.len())];
                return src;
            }
            let seed = mix64(fseed ^ mix64(*seq));
            *seq += 1;
            let spread = self.config.block_len / 2;
            let len =
                (self.config.block_len - spread + (seed as usize % (2 * spread).max(1))) as u32;
            BlockRef { seed, len }
        };
        for _ in 0..self.config.blocks_per_file {
            let b = new_block(&mut rng, &blocks, &mut next_block_seq);
            blocks.push(b);
        }
        let dup_ratio = self.file_dup_ratio(idx);
        for v in 1..=version {
            let mut vrng = StdRng::seed_from_u64(mix64(fseed ^ mix64(v as u64) ^ 0xBEEF));
            let total_bytes: u64 = blocks.iter().map(|b| b.len as u64).sum();
            let change_bytes = ((1.0 - dup_ratio) * total_bytes as f64) as u64;
            let mut changed: u64 = 0;
            // Every mutation lands inside the hot prefix; the cold tail is
            // byte-stable across versions.
            let hot = self.config.hot_fraction.clamp(0.0, 1.0);
            let skewed = |rng: &mut StdRng, len: usize| -> usize {
                let hot_len = ((len as f64) * hot).ceil().max(1.0) as usize;
                rng.gen_range(0..hot_len.min(len.max(1)))
            };
            while changed < change_bytes && !blocks.is_empty() {
                let op = vrng.gen_range(0..10);
                match op {
                    0 => {
                        // insert: new content, shifts the tail
                        let pos = skewed(&mut vrng, blocks.len() + 1).min(blocks.len());
                        let b = new_block(&mut vrng, &blocks, &mut next_block_seq);
                        changed += b.len as u64;
                        blocks.insert(pos, b);
                    }
                    1 => {
                        // delete: shifts the tail
                        let pos = skewed(&mut vrng, blocks.len());
                        let b = blocks.remove(pos);
                        changed += b.len as u64;
                    }
                    _ => {
                        // update in place
                        let pos = skewed(&mut vrng, blocks.len());
                        let b = new_block(&mut vrng, &blocks, &mut next_block_seq);
                        changed += b.len as u64;
                        blocks[pos] = b;
                    }
                }
            }
        }
        blocks
    }

    /// Bytes of file `idx` at `version`.
    pub fn file_bytes(&self, idx: usize, version: usize) -> Vec<u8> {
        assert!(idx < self.config.files, "file index out of range");
        assert!(version < self.config.versions, "version out of range");
        let blocks = self.blocks_at(idx, version);
        let total: usize = blocks.iter().map(|b| b.len as usize).sum();
        let mut out = Vec::with_capacity(total);
        for b in &blocks {
            b.materialize(&mut out);
        }
        out
    }

    /// All files of one version (generated lazily, one at a time).
    pub fn version_files(&self, version: usize) -> impl Iterator<Item = FileVersion> + '_ {
        (0..self.config.files).map(move |idx| FileVersion {
            file: self.file_id(idx),
            version,
            data: self.file_bytes(idx, version),
        })
    }

    /// Block-level duplication ratio between adjacent versions of a file:
    /// (bytes of blocks present in both) / (bytes of the newer version).
    pub fn measured_dup_ratio(&self, idx: usize, version: usize) -> f64 {
        assert!(version >= 1);
        use std::collections::HashMap;
        let old = self.blocks_at(idx, version - 1);
        let new = self.blocks_at(idx, version);
        let mut old_counts: HashMap<(u64, u32), usize> = HashMap::new();
        for b in &old {
            *old_counts.entry((b.seed, b.len)).or_default() += 1;
        }
        let total: u64 = new.iter().map(|b| b.len as u64).sum();
        let mut dup: u64 = 0;
        for b in &new {
            if let Some(c) = old_counts.get_mut(&(b.seed, b.len)) {
                if *c > 0 {
                    *c -= 1;
                    dup += b.len as u64;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        dup as f64 / total as f64
    }

    /// Fraction of a file's bytes at `version` that duplicate *earlier*
    /// bytes of the same file (the self-reference metric of Table I).
    pub fn measured_self_reference(&self, idx: usize, version: usize) -> f64 {
        use std::collections::HashSet;
        let blocks = self.blocks_at(idx, version);
        let mut seen: HashSet<(u64, u32)> = HashSet::new();
        let total: u64 = blocks.iter().map(|b| b.len as u64).sum();
        let mut self_ref: u64 = 0;
        for b in &blocks {
            if !seen.insert((b.seed, b.len)) {
                self_ref += b.len as u64;
            }
        }
        if total == 0 {
            return 0.0;
        }
        self_ref as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w1 = Workload::new(WorkloadConfig::tiny_for_tests());
        let w2 = Workload::new(WorkloadConfig::tiny_for_tests());
        for v in 0..3 {
            for f in 0..3 {
                assert_eq!(w1.file_bytes(f, v), w2.file_bytes(f, v), "file {f} v{v}");
            }
        }
    }

    #[test]
    fn versions_differ_but_share_content() {
        let w = Workload::new(WorkloadConfig::tiny_for_tests());
        let v0 = w.file_bytes(0, 0);
        let v1 = w.file_bytes(0, 1);
        assert_ne!(v0, v1, "versions must differ");
        // Block-level dup ratio should be near the configured value.
        let ratio = w.measured_dup_ratio(0, 1);
        let target = w.file_dup_ratio(0);
        assert!(
            (ratio - target).abs() < 0.15,
            "measured {ratio} vs target {target}"
        );
    }

    #[test]
    fn dup_ratio_interpolates_across_files() {
        let cfg = WorkloadConfig::sdb(0.3);
        let w = Workload::new(cfg.clone());
        assert!((w.file_dup_ratio(0) - cfg.dup_ratio_min).abs() < 1e-9);
        assert!((w.file_dup_ratio(cfg.files - 1) - cfg.dup_ratio_max).abs() < 1e-9);
        let mid = w.file_dup_ratio(cfg.files / 2);
        assert!(mid > cfg.dup_ratio_min && mid < cfg.dup_ratio_max);
    }

    #[test]
    fn self_reference_rate_tracks_config() {
        let mut cfg = WorkloadConfig::tiny_for_tests();
        cfg.blocks_per_file = 400;
        cfg.self_ref_rate = 0.20;
        let w = Workload::new(cfg);
        let r = w.measured_self_reference(0, 0);
        assert!(
            (r - 0.20).abs() < 0.08,
            "self-reference {r} too far from 0.20"
        );
        let mut cfg0 = WorkloadConfig::tiny_for_tests();
        cfg0.blocks_per_file = 400;
        cfg0.self_ref_rate = 0.0;
        let w0 = Workload::new(cfg0);
        assert_eq!(w0.measured_self_reference(0, 0), 0.0);
    }

    #[test]
    fn file_sizes_are_roughly_stable_across_versions() {
        let w = Workload::new(WorkloadConfig::tiny_for_tests());
        let s0 = w.file_bytes(1, 0).len() as f64;
        let s4 = w.file_bytes(1, 4).len() as f64;
        assert!(
            (s4 / s0 - 1.0).abs() < 0.5,
            "file size drifted too much: {s0} -> {s4}"
        );
    }

    #[test]
    fn version_files_iterates_all() {
        let w = Workload::new(WorkloadConfig::tiny_for_tests());
        let files: Vec<_> = w.version_files(0).collect();
        assert_eq!(files.len(), 3);
        assert_eq!(files[0].file, w.file_id(0));
        assert_eq!(files[0].version, 0);
        assert!(!files[0].data.is_empty());
        let ids = w.file_ids();
        assert_eq!(ids.len(), 3);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    #[should_panic(expected = "version out of range")]
    fn version_bounds_checked() {
        let w = Workload::new(WorkloadConfig::tiny_for_tests());
        w.file_bytes(0, 99);
    }

    #[test]
    fn mutations_include_shifts() {
        // After several versions the file must contain at least one
        // insert/delete (size change), not just in-place updates.
        let w = Workload::new(WorkloadConfig::tiny_for_tests());
        let sizes: Vec<usize> = (0..5).map(|v| w.file_bytes(2, v).len()).collect();
        assert!(
            sizes.windows(2).any(|p| p[0] != p[1]),
            "no shifting mutation ever happened: {sizes:?}"
        );
    }

    #[test]
    fn presets_have_paper_statistics() {
        let sdb = WorkloadConfig::sdb(1.0);
        assert_eq!(sdb.versions, 25);
        assert!((sdb.dup_ratio_min - 0.65).abs() < 1e-9);
        assert!((sdb.dup_ratio_max - 0.95).abs() < 1e-9);
        assert!((sdb.self_ref_rate - 0.20).abs() < 1e-9);
        let rdata = WorkloadConfig::rdata(1.0);
        assert_eq!(rdata.versions, 13);
        assert!((rdata.dup_ratio_min - 0.92).abs() < 1e-9);
        assert!(rdata.files > sdb.files, "R-Data has many more files");
    }
}
