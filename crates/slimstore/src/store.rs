//! The user-facing SLIMSTORE system.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use slim_gnode::{GNode, GNodeCycleStats, IntegrityReport, OrphanScrubStats, RecoveryReport};
use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::node::ChunkerKind;
use slim_lnode::restore::RestoreOptions;
use slim_lnode::{BackupStats, RestoreStats, StorageLayer};
use slim_oss::rocks::RocksConfig;
use slim_oss::{MetricsSnapshot, NetworkModel, ObjectStore, Oss};
use slim_telemetry::{Registry, TelemetrySnapshot};
use slim_types::{FileId, Result, SlimConfig, SlimError, VersionId, VersionManifest};

use crate::compute::{ComputeLayer, JobScheduler};
use crate::space::SpaceReport;

/// Builder for a [`SlimStore`] deployment.
pub struct SlimStoreBuilder {
    oss: Option<Arc<dyn ObjectStore>>,
    network: NetworkModel,
    config: SlimConfig,
    l_nodes: usize,
    chunker: ChunkerKind,
    rocks: RocksConfig,
    batch_workers: Option<usize>,
}

impl SlimStoreBuilder {
    /// Start from an in-memory, zero-latency OSS (tests, examples).
    pub fn in_memory() -> Self {
        SlimStoreBuilder {
            oss: None,
            network: NetworkModel::instant(),
            config: SlimConfig::default(),
            l_nodes: 1,
            chunker: ChunkerKind::FastCdc,
            rocks: RocksConfig::default(),
            batch_workers: None,
        }
    }

    /// Use an OSS-like network model (latency + bounded channel bandwidth).
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Attach an existing object store (reopening a deployment).
    pub fn with_object_store(mut self, oss: Arc<dyn ObjectStore>) -> Self {
        self.oss = Some(oss);
        self
    }

    /// Scope the deployment to a tenant namespace within the attached (or
    /// default) object store: two deployments with different tenant names
    /// share the bucket but nothing else — the paper's per-user service
    /// model (§III-B).
    pub fn with_tenant(mut self, name: &str) -> Result<Self> {
        let base: Arc<dyn ObjectStore> = match self.oss.take() {
            Some(oss) => oss,
            None => Arc::new(Oss::new(self.network.clone())),
        };
        self.oss = Some(Arc::new(slim_oss::NamespacedStore::new(base, name)?));
        Ok(self)
    }

    /// System configuration.
    pub fn with_config(mut self, config: SlimConfig) -> Self {
        self.config = config;
        self
    }

    /// Initial L-node count.
    pub fn with_l_nodes(mut self, n: usize) -> Self {
        self.l_nodes = n;
        self
    }

    /// CDC algorithm for the L-nodes.
    pub fn with_chunker(mut self, kind: ChunkerKind) -> Self {
        self.chunker = kind;
        self
    }

    /// Rocks-OSS tuning for the global index.
    pub fn with_rocks_config(mut self, rocks: RocksConfig) -> Self {
        self.rocks = rocks;
        self
    }

    /// Cap the worker fan-out of batched OSS operations on the internally
    /// built simulated store (`1` disables batching — the A/B knob for the
    /// Fig 10 G-node cycle numbers). Ignored when an external object store
    /// is attached via [`SlimStoreBuilder::with_object_store`].
    pub fn with_batch_workers(mut self, cap: usize) -> Self {
        self.batch_workers = Some(cap);
        self
    }

    /// Assemble the deployment.
    pub fn build(self) -> Result<SlimStore> {
        self.config.validate()?;
        let registry = Registry::new();
        let enabled = self.config.telemetry;
        let oss: Arc<dyn ObjectStore> = match self.oss {
            Some(oss) => oss,
            None => {
                let oss = if enabled {
                    Oss::with_telemetry(self.network, &registry.scope("oss"))
                } else {
                    Oss::new(self.network)
                };
                if let Some(cap) = self.batch_workers {
                    oss.set_batch_workers(cap);
                }
                oss.set_endpoints(self.config.oss_endpoints);
                let oss: Arc<dyn ObjectStore> = Arc::new(oss);
                // Gray-failure resilience plane (internally built stores
                // only, like `with_batch_workers`: an attached external
                // store keeps whatever wrapping its owner chose). The plane
                // stays inert until the pooled read-latency quantile clears
                // its activation floor, so fast test stores see exactly one
                // inner call per operation.
                if self.config.hedged_reads && self.config.oss_endpoints > 1 {
                    let policy = slim_oss::HedgePolicy::for_endpoints(self.config.oss_endpoints);
                    if enabled {
                        Arc::new(slim_oss::HedgedStore::with_telemetry(
                            oss,
                            policy,
                            &registry.scope("oss"),
                        ))
                    } else {
                        Arc::new(slim_oss::HedgedStore::new(oss, policy))
                    }
                } else {
                    oss
                }
            }
        };
        // Self-healing redundancy plane (whether the store was built here or
        // attached by the caller): a protected container read that fails its
        // CRC or went missing reconstructs from replica/parity copies, is
        // served byte-identical, and read-repairs the primary in place.
        let oss: Arc<dyn ObjectStore> = if self.config.redundancy {
            if enabled {
                Arc::new(slim_oss::RedundantStore::with_telemetry(
                    oss,
                    &registry.scope("oss"),
                ))
            } else {
                Arc::new(slim_oss::RedundantStore::new(oss))
            }
        } else {
            oss
        };
        // Outermost: transparent retries, so a retried attempt re-enters the
        // whole stack (hedging, redundancy) below it. Each builder-wired
        // wrapper salts its jitter stream, so several deployments in one
        // process never back off in lockstep.
        let oss: Arc<dyn ObjectStore> = if self.config.retry_attempts > 0 {
            let policy = slim_oss::RetryPolicy {
                max_attempts: self.config.retry_attempts,
                ..slim_oss::RetryPolicy::default()
            }
            .salted(slim_oss::next_jitter_salt());
            if enabled {
                Arc::new(slim_oss::RetryingStore::with_telemetry(
                    oss,
                    policy,
                    &registry.scope("retry"),
                ))
            } else {
                Arc::new(slim_oss::RetryingStore::new(oss, policy))
            }
        } else {
            oss
        };
        let storage = StorageLayer::open(oss.clone());
        let similar = SimilarFileIndex::load(oss.as_ref())?;
        let global = GlobalIndex::open_with(oss.clone(), self.rocks, 1 << 20)?;
        let compute = ComputeLayer::with_telemetry(
            storage.clone(),
            similar.clone(),
            self.config.clone(),
            self.chunker,
            self.l_nodes,
            enabled.then(|| registry.scope("lnode")),
        )?;
        let mut gnode = GNode::new(
            storage.clone(),
            global,
            similar.clone(),
            self.config.clone(),
        )?;
        if enabled {
            gnode = gnode.with_telemetry(registry.scope("gnode"));
        }
        // A maintenance pass killed mid-flight leaves intents in the G-node
        // journal; replay them before serving any request so the index and
        // container set are consistent from the first operation.
        gnode.recover()?;
        let next_version = storage.list_versions().last().map(|v| v.0 + 1).unwrap_or(0);
        Ok(SlimStore {
            oss,
            storage,
            similar,
            config: self.config,
            compute: RwLock::new(compute),
            gnode,
            registry,
            next_version: AtomicU64::new(next_version),
        })
    }
}

/// Outcome of one [`SlimStore::retain_last`] retention sweep.
#[derive(Debug, Clone, Default)]
pub struct RetentionReport {
    /// Versions deleted by the FIFO sweep, oldest first.
    pub versions_collected: Vec<VersionId>,
    /// Garbage containers deleted across all collected versions.
    pub containers_deleted: u64,
    /// Recipe objects deleted across all collected versions.
    pub recipes_deleted: u64,
    /// Bytes of container data/metadata reclaimed by the sweep itself.
    pub bytes_reclaimed: u64,
    /// Outcome of the immediate redundancy re-tier that followed the sweep
    /// (replicas/parity groups that only covered collected containers are
    /// dropped right away instead of waiting for the next G-node cycle).
    /// `None` when the deployment runs without a redundancy plane or when
    /// the sweep collected nothing.
    pub redundancy: Option<slim_gnode::RedundancyStats>,
}

impl RetentionReport {
    /// Redundancy objects (replicas / parity-group members) dropped because
    /// the containers they protected were collected.
    pub fn redundancy_objects_dropped(&self) -> u64 {
        self.redundancy.as_ref().map_or(0, |r| r.objects_dropped)
    }
}

/// Report of one whole-version backup.
#[derive(Debug, Clone)]
pub struct VersionBackupReport {
    /// The version that was created.
    pub version: VersionId,
    /// Aggregated statistics across all file jobs.
    pub stats: BackupStats,
    /// Number of files captured.
    pub files: usize,
    /// OSS traffic this backup generated (snapshot delta), if the attached
    /// store keeps counters. Includes retry/giveup counts when the store is
    /// wrapped in a [`slim_oss::RetryingStore`]. This is a thin view over
    /// the `oss.*` / `retry.*` counters of [`telemetry`](Self::telemetry).
    pub oss_metrics: Option<MetricsSnapshot>,
    /// Everything the fleet recorded during this backup: the delta of
    /// [`SlimStore::telemetry_snapshot`] taken before and after the
    /// version commit, including per-node span histograms.
    pub telemetry: TelemetrySnapshot,
}

/// A SLIMSTORE deployment: storage layer + computing layer.
pub struct SlimStore {
    oss: Arc<dyn ObjectStore>,
    storage: StorageLayer,
    similar: SimilarFileIndex,
    config: SlimConfig,
    compute: RwLock<ComputeLayer>,
    gnode: GNode,
    registry: Registry,
    next_version: AtomicU64,
}

impl SlimStore {
    /// Builder entry point.
    pub fn builder() -> SlimStoreBuilder {
        SlimStoreBuilder::in_memory()
    }

    /// The underlying object store.
    pub fn oss(&self) -> &Arc<dyn ObjectStore> {
        &self.oss
    }

    /// The storage layer handle.
    pub fn storage(&self) -> &StorageLayer {
        &self.storage
    }

    /// The system configuration.
    pub fn config(&self) -> &SlimConfig {
        &self.config
    }

    /// The offline space manager.
    pub fn gnode(&self) -> &GNode {
        &self.gnode
    }

    /// The shared metric registry every component scope records into.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of every metric the deployment has recorded:
    /// `oss.*` traffic counters, `retry.*` fault accounting, per-node
    /// `lnode.<i>.*` job counters and phase span histograms, `gnode.*`
    /// cycle stages, and the instantaneous `rocks.*` LSM gauges.
    ///
    /// When the attached object store was supplied by the caller (so its
    /// counters are not registry-backed), its [`MetricsSnapshot`] is
    /// overlaid under the same canonical `oss.*` / `retry.*` names, so the
    /// snapshot shape is identical either way.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.registry.snapshot();
        if !snap.counters.contains_key("oss.get_requests") {
            if let Some(metrics) = self.oss.metrics_snapshot() {
                metrics.overlay_into(&mut snap);
            }
        }
        let global = self.gnode.global_index();
        snap.gauges
            .insert("rocks.tables".into(), global.table_count() as i64);
        snap.gauges.insert(
            "rocks.memtable_bytes".into(),
            global.memtable_bytes() as i64,
        );
        snap
    }

    /// What happened between two [`telemetry_snapshot`]s: counters and
    /// histograms subtract, gauges keep the later value. This is the same
    /// delta embedded per backup in [`VersionBackupReport::telemetry`].
    ///
    /// [`telemetry_snapshot`]: Self::telemetry_snapshot
    pub fn snapshot_delta(
        later: &TelemetrySnapshot,
        earlier: &TelemetrySnapshot,
    ) -> TelemetrySnapshot {
        later.since(earlier)
    }

    /// Elastically scale the L-node pool.
    pub fn scale_l_nodes(&self, n: usize) -> Result<()> {
        self.compute.write().scale_to(n)
    }

    /// Current L-node count.
    pub fn l_node_count(&self) -> usize {
        self.compute.read().node_count()
    }

    /// Back up one new version of the given files (single job).
    pub fn backup_version(&self, files: Vec<(FileId, Vec<u8>)>) -> Result<VersionBackupReport> {
        self.backup_version_with_jobs(files, 1)
    }

    /// Back up one new version with `jobs` concurrent file jobs spread over
    /// the L-node pool.
    ///
    /// # Commit protocol
    ///
    /// Objects reach OSS in a fixed order: container data, container
    /// metadata, recipes, recipe indexes — and, only after every file job
    /// finished, the version manifest. The manifest PUT is the single commit
    /// point: a version exists iff its manifest exists, so a job killed at
    /// any earlier operation leaves previously committed versions untouched
    /// and only writes *orphans* — keys unreachable from any manifest. The
    /// version id is still consumed (retrying allocates a fresh one), and
    /// [`SlimStore::scrub_orphans`] reclaims everything the dead job wrote.
    ///
    /// The similar-file index save after the manifest PUT is best-effort:
    /// it is a derived performance hint, rebuilt lazily and re-saved by the
    /// next successful backup, so its failure must not fail an already
    /// committed version.
    pub fn backup_version_with_jobs(
        &self,
        files: Vec<(FileId, Vec<u8>)>,
        jobs: usize,
    ) -> Result<VersionBackupReport> {
        let before = self.telemetry_snapshot();
        let version = VersionId(self.next_version.fetch_add(1, Ordering::SeqCst));
        let scheduler = JobScheduler::new(jobs);
        let file_count = files.len();
        let outcomes = {
            let compute = self.compute.read();
            scheduler.backup(&compute, version, files)?
        };
        let mut manifest = VersionManifest::new(version);
        let mut stats = BackupStats::default();
        for outcome in outcomes {
            stats.merge(&outcome.stats);
            manifest.files.push(outcome.info);
            manifest.new_containers.extend(outcome.new_containers);
        }
        // Commit point: the version becomes durable (and visible) here.
        self.storage.put_manifest(&manifest)?;
        // Post-commit, best-effort: the similar index is a rebuildable hint.
        let _ = self.similar.save(self.oss.as_ref());
        let telemetry = Self::snapshot_delta(&self.telemetry_snapshot(), &before);
        let oss_metrics = MetricsSnapshot::from_telemetry(&telemetry);
        Ok(VersionBackupReport {
            version,
            stats,
            files: file_count,
            oss_metrics,
            telemetry,
        })
    }

    /// Restore one file at one version.
    pub fn restore_file(
        &self,
        file: &FileId,
        version: VersionId,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        self.restore_file_with(file, version, &RestoreOptions::from_config(&self.config))
    }

    /// Stream one file at one version into a writer (constant output
    /// memory; the restore cache is the only buffer).
    pub fn restore_file_to(
        &self,
        file: &FileId,
        version: VersionId,
        sink: &mut dyn std::io::Write,
    ) -> Result<RestoreStats> {
        let compute = self.compute.read();
        let node = compute.node_for(0);
        slim_lnode::restore::RestoreEngine::new(node.storage(), Some(self.gnode.global_index()))
            .restore_file_to(
                file,
                version,
                &RestoreOptions::from_config(&self.config),
                sink,
            )
    }

    /// Restore one file with explicit options.
    pub fn restore_file_with(
        &self,
        file: &FileId,
        version: VersionId,
        options: &RestoreOptions,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let compute = self.compute.read();
        compute.node_for(0).restore_file_with(
            file,
            version,
            Some(self.gnode.global_index()),
            options,
        )
    }

    /// Restore every file of a version, `jobs` at a time.
    pub fn restore_version(
        &self,
        version: VersionId,
        jobs: usize,
    ) -> Result<Vec<(FileId, Vec<u8>, RestoreStats)>> {
        let manifest = self.storage.get_manifest(version)?;
        let files: Vec<FileId> = manifest.files.iter().map(|f| f.file.clone()).collect();
        let scheduler = JobScheduler::new(jobs);
        let compute = self.compute.read();
        scheduler.restore(
            &compute,
            version,
            files,
            Some(self.gnode.global_index()),
            &RestoreOptions::from_config(&self.config),
        )
    }

    /// Run the G-node's offline cycle for a version (reverse dedup, SCC,
    /// garbage marking).
    pub fn run_gnode_cycle(&self, version: VersionId) -> Result<GNodeCycleStats> {
        self.gnode.run_cycle(version)
    }

    /// Delete versions until only the newest `keep` remain (FIFO sweep).
    ///
    /// After the sweep, when a redundancy plane is configured, the G-node's
    /// re-tier pass runs immediately: replicas and parity groups that only
    /// protected now-collected containers are stale the moment the sweep
    /// finishes, and leaving them until the next maintenance cycle would
    /// bill the tenant for protection of data that no longer exists.
    pub fn retain_last(&self, keep: usize) -> Result<RetentionReport> {
        let versions = self.storage.list_versions();
        let mut report = RetentionReport::default();
        if versions.len() <= keep {
            return Ok(report);
        }
        for &v in &versions[..versions.len() - keep] {
            let stats = self.gnode.collect_version(v)?;
            report.versions_collected.push(v);
            report.containers_deleted += stats.containers_deleted;
            report.recipes_deleted += stats.recipes_deleted;
            report.bytes_reclaimed += stats.bytes_reclaimed;
        }
        self.similar.save(self.oss.as_ref())?;
        if self.config.redundancy {
            report.redundancy = Some(self.gnode.update_redundancy()?);
        }
        Ok(report)
    }

    /// All stored versions, ascending.
    pub fn versions(&self) -> Vec<VersionId> {
        self.storage.list_versions()
    }

    /// Files captured in a version.
    pub fn files_of(&self, version: VersionId) -> Result<Vec<FileId>> {
        Ok(self
            .storage
            .get_manifest(version)?
            .files
            .iter()
            .map(|f| f.file.clone())
            .collect())
    }

    /// Current space breakdown on OSS. Sizing-probe failures are propagated
    /// rather than under-counted.
    pub fn space_report(&self) -> Result<SpaceReport> {
        SpaceReport::measure(self.oss.as_ref())
    }

    /// Reclaim orphaned container/recipe objects left by backup jobs that
    /// died before their commit point (the version-manifest PUT). Safe to
    /// run any time no backup job is in flight; idempotent — a second pass
    /// reclaims nothing.
    pub fn scrub_orphans(&self) -> Result<OrphanScrubStats> {
        self.gnode.scrub_orphans()
    }

    /// Replay any outstanding G-node maintenance intents (also done
    /// automatically by [`SlimStoreBuilder::build`]). Idempotent; a clean
    /// deployment returns a report with every count zero.
    pub fn recover(&self) -> Result<RecoveryReport> {
        self.gnode.recover()
    }

    /// Payload-level integrity sweep: verify the CRC framing of every
    /// container data/meta object, quarantine corrupted ones, and drop
    /// global-index references to them so reads fail loudly
    /// ([`SlimError::ChunkUnresolvable`]) instead of returning bad bytes.
    pub fn verify_checksums(&self) -> Result<IntegrityReport> {
        self.gnode.verify_checksums()
    }

    /// Self-healing sweep (`slim scrub --repair`): [`verify_checksums`]
    /// followed by reconstruction of every repairable quarantined container
    /// from the redundancy plane, re-pointing the global index at the
    /// revived copies.
    ///
    /// [`verify_checksums`]: Self::verify_checksums
    pub fn repair(&self) -> Result<(IntegrityReport, slim_gnode::RepairReport)> {
        self.gnode.repair()
    }

    /// Split the currently quarantined containers into `(repairable, lost)`
    /// counts by probing the redundancy plane for reconstruction sources.
    pub fn classify_quarantine(&self) -> Result<(u64, u64)> {
        self.gnode.classify_quarantine()
    }

    /// Delete quarantined objects whose primaries are whole again (i.e.
    /// after a successful repair); `force` discards every quarantined
    /// object, including unrepairable forensic copies.
    pub fn purge_quarantine(&self, force: bool) -> Result<slim_gnode::PurgeReport> {
        self.gnode.purge_quarantine(force)
    }

    /// Integrity scrub: check that every record of every retained version
    /// is resolvable — live in its stated container, or reachable through
    /// the global index. Returns the number of records checked.
    ///
    /// This is a metadata-level pass (no payload hashing): it reads
    /// container metadata, not data objects, so it is cheap enough to run
    /// routinely. Unresolvable records surface as
    /// [`SlimError::ChunkUnresolvable`].
    pub fn scrub(&self) -> Result<u64> {
        let mut checked = 0u64;
        // Containers repeat across records; fetch each metadata object once.
        let mut metas: std::collections::HashMap<
            slim_types::ContainerId,
            Option<slim_types::ContainerMeta>,
        > = std::collections::HashMap::new();
        for version in self.versions() {
            for file in self.files_of(version)? {
                let recipe = self.storage.get_recipe(&file, version)?;
                for rec in recipe.records() {
                    checked += 1;
                    let mut live_in = |c: slim_types::ContainerId| -> bool {
                        metas
                            .entry(c)
                            .or_insert_with(|| self.storage.get_container_meta(c).ok())
                            .as_ref()
                            .is_some_and(|m| m.find_live(&rec.fp).is_some())
                    };
                    if live_in(rec.container_id) {
                        continue;
                    }
                    let relocated = self
                        .gnode
                        .global_index()
                        .get(&rec.fp)?
                        .is_some_and(&mut live_in);
                    if !relocated {
                        return Err(SlimError::ChunkUnresolvable {
                            fp: rec.fp.to_hex(),
                            detail: format!(
                                "record of {file} at {version} resolves nowhere (stated {})",
                                rec.container_id
                            ),
                        });
                    }
                }
            }
        }
        Ok(checked)
    }

    /// Verify a version restores to the given expected contents (testing /
    /// scrubbing helper).
    pub fn verify_version(&self, version: VersionId, expected: &[(FileId, Vec<u8>)]) -> Result<()> {
        for (file, bytes) in expected {
            let (restored, _) = self.restore_file(file, version)?;
            if &restored != bytes {
                return Err(SlimError::corrupt(
                    "verify",
                    format!("file {file} at {version} does not match"),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn store() -> SlimStore {
        SlimStoreBuilder::in_memory()
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_multi_version_lifecycle() {
        let store = store();
        let a = FileId::new("db/a");
        let b = FileId::new("db/b");
        let mut da = data(1, 30_000);
        let db = data(2, 20_000);
        let mut history = Vec::new();
        for v in 0..4 {
            let report = store
                .backup_version_with_jobs(vec![(a.clone(), da.clone()), (b.clone(), db.clone())], 2)
                .unwrap();
            assert_eq!(report.version, VersionId(v));
            assert_eq!(report.files, 2);
            store.run_gnode_cycle(report.version).unwrap();
            history.push((da.clone(), db.clone()));
            da[5_000..5_500].copy_from_slice(&data(100 + v, 500));
        }
        for (v, (ea, eb)) in history.iter().enumerate() {
            store
                .verify_version(
                    VersionId(v as u64),
                    &[(a.clone(), ea.clone()), (b.clone(), eb.clone())],
                )
                .unwrap();
        }
        assert_eq!(store.versions().len(), 4);
        assert_eq!(store.files_of(VersionId(0)).unwrap().len(), 2);
    }

    #[test]
    fn later_versions_dedup() {
        let store = store();
        let f = FileId::new("f");
        let input = data(3, 40_000);
        let r0 = store
            .backup_version(vec![(f.clone(), input.clone())])
            .unwrap();
        assert!(r0.stats.dedup_ratio() < 0.1);
        let r1 = store
            .backup_version(vec![(f.clone(), input.clone())])
            .unwrap();
        assert!(
            r1.stats.dedup_ratio() > 0.9,
            "ratio {}",
            r1.stats.dedup_ratio()
        );
    }

    #[test]
    fn retention_window() {
        let store = store();
        let f = FileId::new("f");
        for v in 0..5u64 {
            store
                .backup_version(vec![(f.clone(), data(10 + v, 20_000))])
                .unwrap();
            store.run_gnode_cycle(VersionId(v)).unwrap();
        }
        let report = store.retain_last(2).unwrap();
        assert_eq!(
            report.versions_collected,
            vec![VersionId(0), VersionId(1), VersionId(2)]
        );
        assert!(report.bytes_reclaimed > 0);
        // The deployment runs with the default redundancy plane, so the
        // sweep re-tiers immediately: protection covering only collected
        // containers is dropped now, not at the next cycle.
        let redundancy = report.redundancy.expect("redundancy on by default");
        assert!(redundancy.objects_dropped > 0, "{redundancy:?}");
        assert_eq!(store.versions(), vec![VersionId(3), VersionId(4)]);
        // A second sweep finds nothing to collect and skips the re-tier.
        let report = store.retain_last(2).unwrap();
        assert!(report.versions_collected.is_empty());
        assert!(report.redundancy.is_none());
        let (bytes, _) = store.restore_file(&f, VersionId(4)).unwrap();
        assert_eq!(bytes, data(14, 20_000));
        assert!(store.restore_file(&f, VersionId(0)).is_err());
    }

    #[test]
    fn reopen_from_same_object_store() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let f = FileId::new("f");
        let input = data(5, 25_000);
        {
            let store = SlimStoreBuilder::in_memory()
                .with_object_store(oss.clone())
                .with_config(SlimConfig::small_for_tests())
                .with_rocks_config(RocksConfig::small_for_tests())
                .build()
                .unwrap();
            store
                .backup_version(vec![(f.clone(), input.clone())])
                .unwrap();
            store.run_gnode_cycle(VersionId(0)).unwrap();
        }
        // A fresh deployment over the same bucket sees everything.
        let store = SlimStoreBuilder::in_memory()
            .with_object_store(oss)
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap();
        let (bytes, _) = store.restore_file(&f, VersionId(0)).unwrap();
        assert_eq!(bytes, input);
        // And continues version numbering.
        let report = store.backup_version(vec![(f.clone(), input)]).unwrap();
        assert_eq!(report.version, VersionId(1));
        assert!(report.stats.dedup_ratio() > 0.9, "similar index reloaded");
    }

    #[test]
    fn scaling_is_dynamic() {
        let store = store();
        assert_eq!(store.l_node_count(), 1);
        store.scale_l_nodes(6).unwrap();
        assert_eq!(store.l_node_count(), 6);
    }

    #[test]
    fn space_report_totals() {
        let store = store();
        let f = FileId::new("f");
        store
            .backup_version(vec![(f.clone(), data(6, 30_000))])
            .unwrap();
        let report = store.space_report().unwrap();
        assert!(report.container_bytes > 25_000);
        assert!(report.recipe_bytes > 0);
        assert!(report.total() >= report.container_bytes + report.recipe_bytes);
    }

    #[test]
    fn telemetry_covers_pipeline_and_delta_matches_report() {
        let store = store();
        let f = FileId::new("f");
        let before = store.telemetry_snapshot();
        let report = store
            .backup_version(vec![(f.clone(), data(9, 30_000))])
            .unwrap();
        let after = store.telemetry_snapshot();
        // The externally computed delta equals the per-backup delta the
        // report embeds (single delta implementation, acceptance criterion).
        let delta = SlimStore::snapshot_delta(&after, &before);
        assert_eq!(delta, report.telemetry);
        // The thin OSS view is derived from the same delta.
        let view = report.oss_metrics.expect("default store keeps counters");
        assert_eq!(
            view.put_requests,
            report.telemetry.counter("oss.put_requests")
        );
        assert!(view.put_requests > 0);
        // Backup phases all recorded spans.
        for phase in [
            "backup",
            "chunking",
            "fingerprinting",
            "index",
            "container_io",
        ] {
            let span = report
                .telemetry
                .span("lnode.0", phase)
                .unwrap_or_else(|| panic!("span {phase}"));
            assert_eq!(span.count, 1, "span {phase}");
        }
        store.restore_file(&f, report.version).unwrap();
        store.run_gnode_cycle(report.version).unwrap();
        let snap = store.telemetry_snapshot();
        assert!(snap.span("lnode.0", "restore").is_some());
        for phase in ["cycle", "reverse_dedup", "scc", "mark"] {
            let span = snap
                .span("gnode", phase)
                .unwrap_or_else(|| panic!("span {phase}"));
            assert!(span.count >= 1, "span {phase}");
        }
        assert!(snap.counter("gnode.cycles") >= 1);
        assert!(snap.gauges.contains_key("rocks.tables"));
        // JSON round trip preserves the full snapshot.
        let parsed = slim_telemetry::TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn telemetry_disabled_still_reports_oss_metrics() {
        let mut cfg = SlimConfig::small_for_tests();
        cfg.telemetry = false;
        let store = SlimStoreBuilder::in_memory()
            .with_config(cfg)
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap();
        let f = FileId::new("f");
        let report = store
            .backup_version(vec![(f.clone(), data(11, 20_000))])
            .unwrap();
        // No spans were recorded, but the OSS counter overlay still yields
        // the per-backup traffic view.
        assert!(report.telemetry.span("lnode.0", "backup").is_none());
        assert!(report.oss_metrics.expect("overlay").put_requests > 0);
    }

    #[test]
    fn corrupt_container_read_self_heals_during_restore() {
        let raw = Arc::new(Oss::in_memory());
        let store = SlimStoreBuilder::in_memory()
            .with_object_store(raw.clone())
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
            .build()
            .unwrap();
        let f = FileId::new("f");
        let input = data(21, 60_000);
        store
            .backup_version(vec![(f.clone(), input.clone())])
            .unwrap();
        store.run_gnode_cycle(VersionId(0)).unwrap(); // builds the plane
                                                      // Rot one container's data object behind the deployment's back
                                                      // (single-fault model: one damaged member per redundancy group).
        let victim = raw
            .list(slim_types::layout::CONTAINER_PREFIX)
            .into_iter()
            .find(|k| k.ends_with("/data"))
            .expect("backup created containers");
        let mut buf = raw.get(&victim).unwrap().to_vec();
        buf[0] ^= 0x5A;
        raw.put(&victim, bytes::Bytes::from(buf)).unwrap();

        let (bytes, _) = store.restore_file(&f, VersionId(0)).unwrap();
        assert_eq!(bytes, input, "read path healed the damaged container");
        let snap = store.telemetry_snapshot();
        assert!(snap.counter("oss.redundancy.reconstructions") > 0);
        assert_eq!(snap.counter("oss.redundancy.repair_failures"), 0);
        assert_eq!(snap.counter("oss.redundancy.unrepairable_reads"), 0);
        // Read-repair rewrote the primary: a raw read is clean again.
        slim_types::crc::verified_payload_len(&raw.get(&victim).unwrap(), "healed data").unwrap();
        // And the offline sweep agrees the store is clean.
        let report = store.verify_checksums().unwrap();
        assert_eq!(report.containers_quarantined, 0, "{report:?}");
    }

    #[test]
    fn verify_detects_mismatch() {
        let store = store();
        let f = FileId::new("f");
        store
            .backup_version(vec![(f.clone(), data(7, 10_000))])
            .unwrap();
        let err = store
            .verify_version(VersionId(0), &[(f, data(8, 10_000))])
            .unwrap_err();
        assert!(matches!(err, SlimError::Corrupt { .. }));
    }
}
