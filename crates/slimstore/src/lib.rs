//! # SLIMSTORE — a cloud-based deduplication system for multi-version backups
//!
//! The system facade tying the paper's architecture together (§III):
//!
//! * a **storage layer** on (simulated) OSS — container store, recipe store,
//!   similar-file index, global fingerprint index on Rocks-OSS;
//! * a **computing layer** of stateless [`slim_lnode::LNode`]s for fast
//!   online deduplication and restore, scheduled in parallel across backup
//!   jobs, plus one [`slim_gnode::GNode`] for offline space management
//!   (reverse deduplication, sparse container compaction, version
//!   collection).
//!
//! ```
//! use slimstore::{SlimStore, SlimStoreBuilder};
//! use slim_types::FileId;
//!
//! let store = SlimStoreBuilder::in_memory().build().unwrap();
//! let file = FileId::new("db/users.ibd");
//! let v0 = store.backup_version(vec![(file.clone(), b"hello world backup".to_vec())]).unwrap();
//! store.run_gnode_cycle(v0.version).unwrap();
//! let (bytes, _stats) = store.restore_file(&file, v0.version).unwrap();
//! assert_eq!(bytes, b"hello world backup");
//! ```

pub mod compute;
pub mod space;
pub mod store;
pub mod tenants;

pub use compute::{ComputeLayer, JobScheduler};
pub use space::SpaceReport;
pub use store::{RetentionReport, SlimStore, SlimStoreBuilder, VersionBackupReport};
pub use tenants::TenantStoreManager;
