//! Space accounting — the "occupied space" metrics of Fig 9 / Fig 10(c).

use slim_oss::ObjectStore;
use slim_types::{crc, layout, ContainerMeta, Result};

/// Byte-level breakdown of what the deployment stores on OSS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// Container payload + metadata bytes.
    pub container_bytes: u64,
    /// Raw (uncompressed) bytes the live container payload decompresses
    /// to — the logical size the dedup plane accounts in.
    pub container_logical_bytes: u64,
    /// Stored bytes of live container payload (compressed where the
    /// compression plane found it profitable).
    pub container_stored_payload_bytes: u64,
    /// Recipe + recipe-index bytes.
    pub recipe_bytes: u64,
    /// Global-index (Rocks-OSS) bytes.
    pub global_index_bytes: u64,
    /// Redundancy-plane bytes (replicas, parity blocks, group manifests) —
    /// the protection overhead the redundancy knobs trade against dedup's
    /// space savings.
    pub redundancy_bytes: u64,
    /// Quarantined objects retained for repair or forensics; reclaimable
    /// via `slim scrub --purge` once their primaries are whole again.
    pub quarantine_bytes: u64,
    /// Version manifests, similar-index snapshot, everything else.
    pub other_bytes: u64,
}

impl SpaceReport {
    /// Measure the current state of the object store.
    ///
    /// Sizing probes run as one batched `len_many` sweep per prefix; any
    /// probe failure (e.g. a transient fault) is propagated rather than
    /// silently counted as zero bytes, which would corrupt the
    /// space-saving curves without a visible failure.
    pub fn measure(oss: &dyn ObjectStore) -> Result<SpaceReport> {
        let sum = |prefix: &str| -> Result<u64> {
            let keys = oss.list(prefix);
            let mut total = 0u64;
            for result in oss.len_many(&keys) {
                total += result?.unwrap_or(0);
            }
            Ok(total)
        };
        let container_bytes = sum(layout::CONTAINER_PREFIX)?;
        let recipe_bytes = sum(layout::RECIPE_PREFIX)? + sum(layout::RECIPE_INDEX_PREFIX)?;
        let global_index_bytes = sum(layout::GLOBAL_INDEX_PREFIX)?;
        let redundancy_bytes = sum(layout::REDUNDANCY_PREFIX)?;
        let quarantine_bytes = sum(layout::QUARANTINE_PREFIX)?;
        let total: u64 = sum("")?;

        // Logical-vs-stored payload accounting: decode every container meta
        // and compare what the live chunks occupy with what they decompress
        // to. Decode failures propagate — a meta this sweep cannot read is a
        // scrub problem, not a zero.
        let meta_keys: Vec<String> = oss
            .list(layout::CONTAINER_PREFIX)
            .into_iter()
            .filter(|k| k.ends_with("/meta"))
            .collect();
        let mut container_logical_bytes = 0u64;
        let mut container_stored_payload_bytes = 0u64;
        for result in oss.get_many(&meta_keys) {
            let buf = result?;
            let meta = ContainerMeta::decode(&crc::unseal(&buf, "container meta")?)?;
            container_logical_bytes += meta.live_raw_bytes();
            container_stored_payload_bytes += meta.live_bytes();
        }

        // Saturating, not raw subtraction: the sweeps above are not atomic,
        // so a concurrent writer can legitimately make the prefix sums
        // exceed the later whole-store sum. Debug builds still flag it —
        // on a quiescent store the identity must hold exactly.
        let accounted = container_bytes
            + recipe_bytes
            + global_index_bytes
            + redundancy_bytes
            + quarantine_bytes;
        debug_assert!(
            total >= accounted,
            "space sweep accounted {accounted} bytes under prefixes but only {total} in total"
        );
        Ok(SpaceReport {
            container_bytes,
            container_logical_bytes,
            container_stored_payload_bytes,
            recipe_bytes,
            global_index_bytes,
            redundancy_bytes,
            quarantine_bytes,
            other_bytes: total.saturating_sub(accounted),
        })
    }

    /// Total bytes stored.
    pub fn total(&self) -> u64 {
        self.container_bytes
            + self.recipe_bytes
            + self.global_index_bytes
            + self.redundancy_bytes
            + self.quarantine_bytes
            + self.other_bytes
    }

    /// Stored-to-logical ratio of live container payload: 1.0 means no
    /// compression benefit, smaller is better. 1.0 on an empty store.
    pub fn compression_ratio(&self) -> f64 {
        if self.container_logical_bytes == 0 {
            return 1.0;
        }
        self.container_stored_payload_bytes as f64 / self.container_logical_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use slim_oss::Oss;

    #[test]
    fn measure_partitions_by_prefix() {
        let oss = Oss::in_memory();
        oss.put("containers/000000000001/data", Bytes::from(vec![0; 100]))
            .unwrap();
        oss.put("recipes/f/00000000", Bytes::from(vec![0; 30]))
            .unwrap();
        oss.put("recipe-index/f/00000000", Bytes::from(vec![0; 10]))
            .unwrap();
        oss.put("global-index/MANIFEST", Bytes::from(vec![0; 20]))
            .unwrap();
        oss.put("versions/00000000", Bytes::from(vec![0; 5]))
            .unwrap();
        oss.put(
            "redundancy/replica/containers/000000000001/data",
            Bytes::from(vec![0; 100]),
        )
        .unwrap();
        oss.put("redundancy/groups/000000000000", Bytes::from(vec![0; 15]))
            .unwrap();
        oss.put(
            "quarantine/containers/000000000002/data",
            Bytes::from(vec![0; 50]),
        )
        .unwrap();
        let report = SpaceReport::measure(&oss).unwrap();
        assert_eq!(report.container_bytes, 100);
        assert_eq!(report.recipe_bytes, 40);
        assert_eq!(report.global_index_bytes, 20);
        assert_eq!(report.redundancy_bytes, 115);
        assert_eq!(report.quarantine_bytes, 50);
        assert_eq!(report.other_bytes, 5);
        assert_eq!(report.total(), 330);
        assert_eq!(report.container_logical_bytes, 0, "no meta objects");
        assert_eq!(report.compression_ratio(), 1.0);
    }

    #[test]
    fn measure_accounts_logical_vs_stored_payload() {
        use slim_types::{ContainerBuilder, ContainerId, Fingerprint};
        let oss = Oss::in_memory();
        let payload: Vec<u8> = b"slimstore ".iter().copied().cycle().take(8192).collect();
        let mut b = ContainerBuilder::new(ContainerId(1), 1 << 20).with_compression(true);
        b.push(Fingerprint::from_slice(&[1u8; 20]).unwrap(), &payload);
        let (data, meta) = b.seal();
        oss.put(
            &layout::container_data(ContainerId(1)),
            slim_types::crc::seal(&data),
        )
        .unwrap();
        oss.put(
            &layout::container_meta(ContainerId(1)),
            slim_types::crc::seal(&meta.encode()),
        )
        .unwrap();
        let report = SpaceReport::measure(&oss).unwrap();
        assert_eq!(report.container_logical_bytes, 8192);
        assert_eq!(report.container_stored_payload_bytes, data.len() as u64);
        assert!(report.container_stored_payload_bytes < report.container_logical_bytes);
        assert!(report.compression_ratio() < 1.0);
    }
}
