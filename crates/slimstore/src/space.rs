//! Space accounting — the "occupied space" metrics of Fig 9 / Fig 10(c).

use slim_oss::ObjectStore;
use slim_types::{layout, Result};

/// Byte-level breakdown of what the deployment stores on OSS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// Container payload + metadata bytes.
    pub container_bytes: u64,
    /// Recipe + recipe-index bytes.
    pub recipe_bytes: u64,
    /// Global-index (Rocks-OSS) bytes.
    pub global_index_bytes: u64,
    /// Redundancy-plane bytes (replicas, parity blocks, group manifests) —
    /// the protection overhead the redundancy knobs trade against dedup's
    /// space savings.
    pub redundancy_bytes: u64,
    /// Quarantined objects retained for repair or forensics; reclaimable
    /// via `slim scrub --purge` once their primaries are whole again.
    pub quarantine_bytes: u64,
    /// Version manifests, similar-index snapshot, everything else.
    pub other_bytes: u64,
}

impl SpaceReport {
    /// Measure the current state of the object store.
    ///
    /// Sizing probes run as one batched `len_many` sweep per prefix; any
    /// probe failure (e.g. a transient fault) is propagated rather than
    /// silently counted as zero bytes, which would corrupt the
    /// space-saving curves without a visible failure.
    pub fn measure(oss: &dyn ObjectStore) -> Result<SpaceReport> {
        let sum = |prefix: &str| -> Result<u64> {
            let keys = oss.list(prefix);
            let mut total = 0u64;
            for result in oss.len_many(&keys) {
                total += result?.unwrap_or(0);
            }
            Ok(total)
        };
        let container_bytes = sum(layout::CONTAINER_PREFIX)?;
        let recipe_bytes = sum(layout::RECIPE_PREFIX)? + sum(layout::RECIPE_INDEX_PREFIX)?;
        let global_index_bytes = sum(layout::GLOBAL_INDEX_PREFIX)?;
        let redundancy_bytes = sum(layout::REDUNDANCY_PREFIX)?;
        let quarantine_bytes = sum(layout::QUARANTINE_PREFIX)?;
        let total: u64 = sum("")?;
        Ok(SpaceReport {
            container_bytes,
            recipe_bytes,
            global_index_bytes,
            redundancy_bytes,
            quarantine_bytes,
            other_bytes: total
                - container_bytes
                - recipe_bytes
                - global_index_bytes
                - redundancy_bytes
                - quarantine_bytes,
        })
    }

    /// Total bytes stored.
    pub fn total(&self) -> u64 {
        self.container_bytes
            + self.recipe_bytes
            + self.global_index_bytes
            + self.redundancy_bytes
            + self.quarantine_bytes
            + self.other_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use slim_oss::Oss;

    #[test]
    fn measure_partitions_by_prefix() {
        let oss = Oss::in_memory();
        oss.put("containers/000000000001/data", Bytes::from(vec![0; 100]))
            .unwrap();
        oss.put("recipes/f/00000000", Bytes::from(vec![0; 30]))
            .unwrap();
        oss.put("recipe-index/f/00000000", Bytes::from(vec![0; 10]))
            .unwrap();
        oss.put("global-index/MANIFEST", Bytes::from(vec![0; 20]))
            .unwrap();
        oss.put("versions/00000000", Bytes::from(vec![0; 5]))
            .unwrap();
        oss.put(
            "redundancy/replica/containers/000000000001/data",
            Bytes::from(vec![0; 100]),
        )
        .unwrap();
        oss.put("redundancy/groups/000000000000", Bytes::from(vec![0; 15]))
            .unwrap();
        oss.put(
            "quarantine/containers/000000000002/data",
            Bytes::from(vec![0; 50]),
        )
        .unwrap();
        let report = SpaceReport::measure(&oss).unwrap();
        assert_eq!(report.container_bytes, 100);
        assert_eq!(report.recipe_bytes, 40);
        assert_eq!(report.global_index_bytes, 20);
        assert_eq!(report.redundancy_bytes, 115);
        assert_eq!(report.quarantine_bytes, 50);
        assert_eq!(report.other_bytes, 5);
        assert_eq!(report.total(), 330);
    }
}
