//! The computing layer: a pool of stateless L-nodes plus a job scheduler.
//!
//! L-nodes hold no job state (§III-B), so scheduling is trivial: a work
//! queue of file jobs drained by `jobs` worker threads, each worker bound
//! round-robin to an L-node. Elastic scaling is just changing the node
//! count — no data movement, no warm-up.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::queue::SegQueue;
use slim_index::{GlobalIndex, SimilarFileIndex};
use slim_lnode::node::ChunkerKind;
use slim_lnode::restore::RestoreOptions;
use slim_lnode::{BackupOutcome, LNode, RestoreStats, StorageLayer};
use slim_telemetry::Scope;
use slim_types::{FileId, Result, SlimConfig, VersionId};

/// The pool of online processing nodes.
pub struct ComputeLayer {
    nodes: Vec<Arc<LNode>>,
    storage: StorageLayer,
    similar: SimilarFileIndex,
    config: SlimConfig,
    chunker: ChunkerKind,
    /// Parent telemetry scope; node `i` gets the child scope `<scope>.<i>`
    /// (canonically `lnode.<i>`).
    telemetry: Option<Scope>,
}

impl ComputeLayer {
    /// A compute layer with `nodes` L-nodes.
    pub fn new(
        storage: StorageLayer,
        similar: SimilarFileIndex,
        config: SlimConfig,
        chunker: ChunkerKind,
        nodes: usize,
    ) -> Result<Self> {
        Self::with_telemetry(storage, similar, config, chunker, nodes, None)
    }

    /// A compute layer whose L-nodes fold job stats into per-node child
    /// scopes of `telemetry` (when given).
    pub fn with_telemetry(
        storage: StorageLayer,
        similar: SimilarFileIndex,
        config: SlimConfig,
        chunker: ChunkerKind,
        nodes: usize,
        telemetry: Option<Scope>,
    ) -> Result<Self> {
        let mut layer = ComputeLayer {
            nodes: Vec::new(),
            storage,
            similar,
            config,
            chunker,
            telemetry,
        };
        layer.scale_to(nodes.max(1))?;
        Ok(layer)
    }

    /// Number of deployed L-nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Elastically scale the pool to `n` nodes (deploying or retiring
    /// stateless nodes is instantaneous).
    pub fn scale_to(&mut self, n: usize) -> Result<()> {
        let n = n.max(1);
        while self.nodes.len() < n {
            let mut node = LNode::with_chunker(
                self.storage.clone(),
                self.similar.clone(),
                self.config.clone(),
                self.chunker,
            )?;
            if let Some(scope) = &self.telemetry {
                node = node.with_telemetry(scope.child(&self.nodes.len().to_string()));
            }
            self.nodes.push(Arc::new(node));
        }
        self.nodes.truncate(n);
        Ok(())
    }

    /// The node serving job number `job` (round-robin).
    pub fn node_for(&self, job: usize) -> &Arc<LNode> {
        &self.nodes[job % self.nodes.len()]
    }
}

/// Schedules a batch of jobs over the node pool with bounded parallelism.
pub struct JobScheduler {
    /// Parallel worker threads (concurrent jobs).
    pub jobs: usize,
}

impl JobScheduler {
    /// A scheduler running `jobs` jobs concurrently.
    pub fn new(jobs: usize) -> Self {
        JobScheduler { jobs: jobs.max(1) }
    }

    /// Back up `files` as `version`, spreading jobs across the pool.
    /// Returns per-file outcomes in input order.
    pub fn backup(
        &self,
        compute: &ComputeLayer,
        version: VersionId,
        files: Vec<(FileId, Vec<u8>)>,
    ) -> Result<Vec<BackupOutcome>> {
        let total = files.len();
        let queue: SegQueue<(usize, FileId, Vec<u8>)> = SegQueue::new();
        for (i, (file, data)) in files.into_iter().enumerate() {
            queue.push((i, file, data));
        }
        let results: Vec<parking_lot::Mutex<Option<Result<BackupOutcome>>>> =
            (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
        let worker_id = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(total) {
                s.spawn(|| {
                    let wid = worker_id.fetch_add(1, Ordering::SeqCst);
                    let node = compute.node_for(wid);
                    while let Some((i, file, data)) = queue.pop() {
                        let outcome = node.backup_file(&file, version, &data);
                        *results[i].lock() = Some(outcome);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every queued job writes its result")
            })
            .collect()
    }

    /// Restore `files` at `version` in parallel; results in input order.
    pub fn restore(
        &self,
        compute: &ComputeLayer,
        version: VersionId,
        files: Vec<FileId>,
        global: Option<&GlobalIndex>,
        options: &RestoreOptions,
    ) -> Result<Vec<(FileId, Vec<u8>, RestoreStats)>> {
        let total = files.len();
        let queue: SegQueue<(usize, FileId)> = SegQueue::new();
        for (i, file) in files.into_iter().enumerate() {
            queue.push((i, file));
        }
        type Slot = parking_lot::Mutex<Option<Result<(FileId, Vec<u8>, RestoreStats)>>>;
        let results: Vec<Slot> = (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
        let worker_id = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(total) {
                s.spawn(|| {
                    let wid = worker_id.fetch_add(1, Ordering::SeqCst);
                    let node = compute.node_for(wid);
                    while let Some((i, file)) = queue.pop() {
                        let outcome = node
                            .restore_file_with(&file, version, global, options)
                            .map(|(bytes, stats)| (file, bytes, stats));
                        *results[i].lock() = Some(outcome);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every queued job writes its result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn layer(nodes: usize) -> ComputeLayer {
        ComputeLayer::new(
            StorageLayer::open(Arc::new(Oss::in_memory())),
            SimilarFileIndex::new(),
            SlimConfig::small_for_tests(),
            ChunkerKind::FastCdc,
            nodes,
        )
        .unwrap()
    }

    #[test]
    fn parallel_backup_and_restore_roundtrip() {
        let compute = layer(3);
        let files: Vec<(FileId, Vec<u8>)> = (0..9u64)
            .map(|i| (FileId::new(format!("f{i}")), data(i, 20_000)))
            .collect();
        let sched = JobScheduler::new(4);
        let outcomes = sched.backup(&compute, VersionId(0), files.clone()).unwrap();
        assert_eq!(outcomes.len(), 9);
        let restored = sched
            .restore(
                &compute,
                VersionId(0),
                files.iter().map(|(f, _)| f.clone()).collect(),
                None,
                &RestoreOptions::from_config(&SlimConfig::small_for_tests()),
            )
            .unwrap();
        for ((file, expected), (rfile, bytes, _)) in files.iter().zip(&restored) {
            assert_eq!(file, rfile, "order preserved");
            assert_eq!(expected, bytes);
        }
    }

    #[test]
    fn scaling_changes_node_count() {
        let mut compute = layer(1);
        assert_eq!(compute.node_count(), 1);
        compute.scale_to(5).unwrap();
        assert_eq!(compute.node_count(), 5);
        compute.scale_to(2).unwrap();
        assert_eq!(compute.node_count(), 2);
        compute.scale_to(0).unwrap();
        assert_eq!(compute.node_count(), 1, "at least one node always");
    }

    #[test]
    fn backup_errors_are_per_job() {
        let compute = layer(2);
        let sched = JobScheduler::new(2);
        // Empty batches complete without spawning any worker thread (the
        // worker count is `jobs.min(total)`, not `jobs.min(total.max(1))`).
        let outcomes = sched.backup(&compute, VersionId(0), vec![]).unwrap();
        assert!(outcomes.is_empty());
        let restored = sched
            .restore(
                &compute,
                VersionId(0),
                vec![],
                None,
                &RestoreOptions::from_config(&SlimConfig::small_for_tests()),
            )
            .unwrap();
        assert!(restored.is_empty());
    }
}
