//! Per-tenant deployment management over one shared bucket.
//!
//! The paper's service model (§III-B) runs one logical SLIMSTORE per user:
//! each tenant has its own similar-file index, global fingerprint index and
//! version history, all stored under a tenant prefix of a single shared OSS
//! bucket ([`slim_oss::NamespacedStore`]). The [`TenantStoreManager`] builds
//! those deployments on demand from one template and caches them, so a
//! request plane (the `slim-frontend` crate) can resolve `tenant name →
//! SlimStore` cheaply on every admission.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use slim_lnode::node::ChunkerKind;
use slim_oss::rocks::RocksConfig;
use slim_oss::{NetworkModel, ObjectStore, Oss};
use slim_types::{Result, SlimConfig};

use crate::store::{SlimStore, SlimStoreBuilder};

/// Builds and caches one [`SlimStore`] per tenant over a shared bucket.
///
/// Every tenant deployment is constructed from the same template (config,
/// L-node count, chunker, Rocks tuning); isolation comes entirely from the
/// tenant namespace. Deployments are cached: the first request for a tenant
/// pays the build cost (index load, journal recovery), later requests reuse
/// the same instance — matching how a service front door would pin tenant
/// state to warm serving processes.
pub struct TenantStoreManager {
    base: Arc<dyn ObjectStore>,
    config: SlimConfig,
    l_nodes: usize,
    chunker: ChunkerKind,
    rocks: RocksConfig,
    stores: RwLock<HashMap<String, Arc<SlimStore>>>,
}

impl TenantStoreManager {
    /// Manage tenant deployments over `base` with default settings.
    pub fn new(base: Arc<dyn ObjectStore>) -> Self {
        TenantStoreManager {
            base,
            config: SlimConfig::default(),
            l_nodes: 1,
            chunker: ChunkerKind::FastCdc,
            rocks: RocksConfig::default(),
            stores: RwLock::new(HashMap::new()),
        }
    }

    /// Manage tenants over a fresh in-memory bucket with the given network
    /// model (tests, examples).
    pub fn in_memory(network: NetworkModel) -> Self {
        TenantStoreManager::new(Arc::new(Oss::new(network)))
    }

    /// System configuration applied to every tenant deployment.
    pub fn with_config(mut self, config: SlimConfig) -> Self {
        self.config = config;
        self
    }

    /// L-node pool size of every tenant deployment.
    pub fn with_l_nodes(mut self, n: usize) -> Self {
        self.l_nodes = n;
        self
    }

    /// CDC algorithm of every tenant deployment.
    pub fn with_chunker(mut self, chunker: ChunkerKind) -> Self {
        self.chunker = chunker;
        self
    }

    /// Rocks-OSS tuning of every tenant deployment.
    pub fn with_rocks_config(mut self, rocks: RocksConfig) -> Self {
        self.rocks = rocks;
        self
    }

    /// The shared bucket every tenant namespace lives in.
    pub fn bucket(&self) -> &Arc<dyn ObjectStore> {
        &self.base
    }

    /// The template configuration applied to every tenant deployment.
    pub fn config(&self) -> &SlimConfig {
        &self.config
    }

    /// The deployment of `tenant`, building (and caching) it on first use.
    ///
    /// Tenant names are validated by [`slim_oss::NamespacedStore`]; an
    /// invalid name fails here, before anything is queued or executed.
    pub fn get_or_create(&self, tenant: &str) -> Result<Arc<SlimStore>> {
        if let Some(store) = self.stores.read().get(tenant) {
            return Ok(store.clone());
        }
        // Build under the write lock: concurrent first touches of the same
        // tenant must not race two half-built deployments (each would replay
        // the journal and recover version numbering independently).
        let mut stores = self.stores.write();
        if let Some(store) = stores.get(tenant) {
            return Ok(store.clone());
        }
        let store = Arc::new(
            SlimStoreBuilder::in_memory()
                .with_object_store(self.base.clone())
                .with_tenant(tenant)?
                .with_config(self.config.clone())
                .with_l_nodes(self.l_nodes)
                .with_chunker(self.chunker)
                .with_rocks_config(self.rocks.clone())
                .build()?,
        );
        stores.insert(tenant.to_string(), store.clone());
        Ok(store)
    }

    /// The cached deployment of `tenant`, if it was already built.
    pub fn get(&self, tenant: &str) -> Option<Arc<SlimStore>> {
        self.stores.read().get(tenant).cloned()
    }

    /// Names of every tenant with a cached deployment, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.stores.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of cached tenant deployments.
    pub fn len(&self) -> usize {
        self.stores.read().len()
    }

    /// Whether no tenant deployment has been built yet.
    pub fn is_empty(&self) -> bool {
        self.stores.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_types::{FileId, VersionId};

    fn manager() -> TenantStoreManager {
        TenantStoreManager::in_memory(NetworkModel::instant())
            .with_config(SlimConfig::small_for_tests())
            .with_rocks_config(RocksConfig::small_for_tests())
    }

    #[test]
    fn tenants_are_isolated_and_cached() {
        let mgr = manager();
        let a = mgr.get_or_create("acme").unwrap();
        let b = mgr.get_or_create("globex").unwrap();
        let file = FileId::new("db/f");
        a.backup_version(vec![(file.clone(), b"acme bytes".repeat(800))])
            .unwrap();
        b.backup_version(vec![(file.clone(), b"globex bytes".repeat(800))])
            .unwrap();
        // Same name resolves to the same cached instance.
        let a2 = mgr.get_or_create("acme").unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(mgr.tenants(), vec!["acme", "globex"]);
        assert_eq!(mgr.len(), 2);
        // Cross-tenant reads resolve against each tenant's own namespace.
        let (bytes, _) = a.restore_file(&file, VersionId(0)).unwrap();
        assert_eq!(bytes, b"acme bytes".repeat(800));
        let (bytes, _) = b.restore_file(&file, VersionId(0)).unwrap();
        assert_eq!(bytes, b"globex bytes".repeat(800));
    }

    #[test]
    fn invalid_tenant_name_fails_fast() {
        let mgr = manager();
        assert!(mgr.get_or_create("../escape").is_err());
        assert!(mgr.is_empty());
    }

    #[test]
    fn concurrent_first_touch_builds_once() {
        let mgr = Arc::new(manager());
        let stores: Vec<Arc<SlimStore>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mgr = mgr.clone();
                    s.spawn(move || mgr.get_or_create("acme").unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(stores.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(mgr.len(), 1);
    }
}
