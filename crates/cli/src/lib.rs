//! The `slim` command-line tool: multi-version deduplicating backups of
//! a directory tree into a repository directory (a [`slim_oss::LocalDiskOss`]
//! bucket).
//!
//! ```text
//! slim init     <repo>
//! slim backup   <repo> <source-dir> [--jobs N] [--pipeline N]
//! slim restore  <repo> <version> <target-dir> [--jobs N]
//! slim versions <repo>
//! slim files    <repo> <version>
//! slim gc       <repo> --keep N
//! slim space    <repo>
//! slim check    <repo>
//! slim diff     <repo> <versionA> <versionB>
//! slim cat      <repo> <version> <file>        (file bytes to stdout)
//! slim stats    <repo> [--qos]                 (telemetry snapshot as JSON;
//!                                               --qos appends a human-readable
//!                                               frontend queue/QoS section)
//! slim scrub    <repo> [--repair] [--purge] [--force]
//!                                              (journal replay + checksum sweep;
//!                                               --repair reconstructs from the
//!                                               redundancy plane, --purge drops
//!                                               repaired quarantine copies,
//!                                               --force purges even lost ones)
//! ```
//!
//! Every backup captures the full tree as a new version; deduplication makes
//! the incremental cost proportional to the change, and the G-node cycle
//! (run automatically after each backup) performs exact dedup and compacts
//! sparse containers for the new version.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use slim_oss::LocalDiskOss;
use slim_types::{FileId, Result, SlimConfig, SlimError, VersionId};
use slimstore::{SlimStore, SlimStoreBuilder};

/// Marker object proving a directory is a SLIMSTORE repository.
const REPO_MARKER: &str = "slimstore-repo-v1";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Init {
        repo: PathBuf,
    },
    Backup {
        repo: PathBuf,
        source: PathBuf,
        jobs: usize,
        /// `--pipeline N`: per-job thread budget for the pipelined backup
        /// plane (`0` forces the sequential path; absent keeps the store
        /// default).
        pipeline: Option<usize>,
    },
    Restore {
        repo: PathBuf,
        version: u64,
        target: PathBuf,
        jobs: usize,
    },
    Versions {
        repo: PathBuf,
    },
    Files {
        repo: PathBuf,
        version: u64,
    },
    Gc {
        repo: PathBuf,
        keep: usize,
    },
    Space {
        repo: PathBuf,
    },
    Check {
        repo: PathBuf,
    },
    Diff {
        repo: PathBuf,
        from: u64,
        to: u64,
    },
    Cat {
        repo: PathBuf,
        version: u64,
        file: String,
    },
    Stats {
        repo: PathBuf,
        qos: bool,
    },
    Scrub {
        repo: PathBuf,
        repair: bool,
        purge: bool,
        force: bool,
    },
}

/// Parse argv (without the program name).
pub fn parse(args: &[String]) -> std::result::Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let mut positional: Vec<&String> = Vec::new();
    let mut jobs = 4usize;
    let mut pipeline: Option<usize> = None;
    let mut keep: Option<usize> = None;
    let mut repair = false;
    let mut purge = false;
    let mut force = false;
    let mut qos = false;
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--jobs needs a number")?;
            }
            "--pipeline" => {
                i += 1;
                pipeline = Some(
                    rest.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--pipeline needs a thread count")?,
                );
            }
            "--keep" => {
                i += 1;
                keep = Some(
                    rest.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--keep needs a number")?,
                );
            }
            "--repair" => repair = true,
            "--purge" => purge = true,
            "--force" => force = true,
            "--qos" => qos = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => positional.push(rest[i]),
        }
        i += 1;
    }
    let pos = |i: usize| -> std::result::Result<&String, String> {
        positional.get(i).copied().ok_or_else(usage)
    };
    let version = |i: usize| -> std::result::Result<u64, String> {
        let raw = pos(i)?;
        raw.trim_start_matches('v')
            .parse()
            .map_err(|_| format!("bad version {raw:?}"))
    };
    Ok(match cmd.as_str() {
        "init" => Command::Init {
            repo: pos(0)?.into(),
        },
        "backup" => Command::Backup {
            repo: pos(0)?.into(),
            source: pos(1)?.into(),
            jobs,
            pipeline,
        },
        "restore" => Command::Restore {
            repo: pos(0)?.into(),
            version: version(1)?,
            target: pos(2)?.into(),
            jobs,
        },
        "versions" => Command::Versions {
            repo: pos(0)?.into(),
        },
        "files" => Command::Files {
            repo: pos(0)?.into(),
            version: version(1)?,
        },
        "gc" => Command::Gc {
            repo: pos(0)?.into(),
            keep: keep.ok_or("gc requires --keep N")?,
        },
        "space" => Command::Space {
            repo: pos(0)?.into(),
        },
        "check" => Command::Check {
            repo: pos(0)?.into(),
        },
        "diff" => Command::Diff {
            repo: pos(0)?.into(),
            from: version(1)?,
            to: version(2)?,
        },
        "cat" => Command::Cat {
            repo: pos(0)?.into(),
            version: version(1)?,
            file: pos(2)?.clone(),
        },
        "stats" => Command::Stats {
            repo: pos(0)?.into(),
            qos,
        },
        "scrub" => Command::Scrub {
            repo: pos(0)?.into(),
            repair,
            purge,
            force,
        },
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    })
}

fn usage() -> String {
    "usage: slim <init|backup|restore|versions|files|gc|space|check|diff|cat|stats|scrub> ... (see --help)".to_string()
}

fn open_repo(repo: &Path, must_exist: bool) -> Result<SlimStore> {
    open_repo_with(repo, must_exist, None)
}

fn open_repo_with(repo: &Path, must_exist: bool, config: Option<SlimConfig>) -> Result<SlimStore> {
    let oss = LocalDiskOss::open(repo)?;
    use slim_oss::ObjectStore;
    if must_exist && !oss.exists(REPO_MARKER)? {
        return Err(SlimError::InvalidConfig(format!(
            "{} is not a slimstore repository (run `slim init` first)",
            repo.display()
        )));
    }
    let mut builder = SlimStoreBuilder::in_memory().with_object_store(Arc::new(oss));
    if let Some(config) = config {
        builder = builder.with_config(config);
    }
    builder.build()
}

/// Collect the relative paths + contents of every regular file under `dir`.
fn read_tree(dir: &Path) -> Result<Vec<(FileId, Vec<u8>)>> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(FileId, Vec<u8>)>) -> Result<()> {
        let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<std::io::Result<_>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, out)?;
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked under root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((FileId::new(rel), fs::read(&path)?));
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out)?;
    Ok(out)
}

/// Reject file ids that would escape the restore target.
fn safe_relative(id: &FileId) -> Result<PathBuf> {
    let mut path = PathBuf::new();
    for segment in id.as_str().split('/') {
        if segment.is_empty() || segment == "." || segment == ".." {
            return Err(SlimError::InvalidConfig(format!(
                "refusing to restore unsafe path {id}"
            )));
        }
        path.push(segment);
    }
    Ok(path)
}

/// Render the `frontend.*` metrics of a snapshot as the human-readable
/// queue/QoS section appended by `slim stats --qos`. All zeros (and `-`
/// for unrecorded latencies) when no request plane ran in this process;
/// piped from a process hosting a [`slim_frontend::Frontend`], it shows
/// the admission and scheduling story of the whole session.
pub fn qos_section(snap: &slim_telemetry::TelemetrySnapshot) -> String {
    let p95_ms = |class: slim_frontend::Priority| -> String {
        match snap.histogram(&format!("frontend.latency_ns.{}", class.label())) {
            Some(h) if h.count > 0 => format!("{:.1}ms", h.p95() as f64 / 1e6),
            _ => "-".to_string(),
        }
    };
    let class_depth = |class: slim_frontend::Priority| -> i64 {
        snap.gauge(&format!("frontend.class.{}.queue_depth", class.label()))
    };
    use slim_frontend::Priority;
    [
        "qos:".to_string(),
        format!(
            "  admitted {}, completed {}, failed {}",
            snap.counter("frontend.admitted"),
            snap.counter("frontend.completed"),
            snap.counter("frontend.failed"),
        ),
        format!(
            "  shed {} (rate_limit {}, queue_full {}, deadline {}, draining {}), timeouts {}",
            snap.counter("frontend.shed"),
            snap.counter("frontend.shed.rate_limit"),
            snap.counter("frontend.shed.queue_full"),
            snap.counter("frontend.shed.deadline"),
            snap.counter("frontend.shed.draining"),
            snap.counter("frontend.timeout"),
        ),
        format!(
            "  queued {} (restore {}, backup {}, maintenance {}), inflight {} ({:.1} MiB)",
            snap.gauge("frontend.queue_depth"),
            class_depth(Priority::Restore),
            class_depth(Priority::Backup),
            class_depth(Priority::Maintenance),
            snap.gauge("frontend.inflight"),
            snap.gauge("frontend.inflight_bytes") as f64 / (1024.0 * 1024.0),
        ),
        format!(
            "  p95 latency: restore {}, backup {}, maintenance {}",
            p95_ms(Priority::Restore),
            p95_ms(Priority::Backup),
            p95_ms(Priority::Maintenance),
        ),
        resilience_section(snap),
    ]
    .join("\n")
}

/// Render the gray-failure resilience counters (`oss.hedge.*`,
/// `oss.breaker.*`, `oss.health.*`, `retry.*`) of a snapshot. All zeros
/// (and `-` for unrecorded histograms) when the deployment ran without the
/// hedging plane or never saw a fault.
pub fn resilience_section(snap: &slim_telemetry::TelemetrySnapshot) -> String {
    let p95_ms = |name: &str| -> String {
        match snap.histogram(name) {
            Some(h) if h.count > 0 => format!("{:.2}ms", h.p95() as f64 / 1e6),
            _ => "-".to_string(),
        }
    };
    // Endpoint health gauges are per-index: collect `oss.health.<n>.score`
    // in index order into one line.
    let mut scores = Vec::new();
    for endpoint in 0.. {
        let key = format!("oss.health.{endpoint}.score");
        if !snap.gauges.contains_key(&key) {
            break;
        }
        scores.push(format!("{endpoint}: {}", snap.gauge(&key)));
    }
    let scores = if scores.is_empty() {
        "-".to_string()
    } else {
        scores.join(", ")
    };
    [
        "resilience:".to_string(),
        format!(
            "  hedges: issued {} (won {}, wasted {}), failovers {}, deadline refusals {}, p95 delay {}",
            snap.counter("oss.hedge.issued"),
            snap.counter("oss.hedge.won"),
            snap.counter("oss.hedge.wasted"),
            snap.counter("oss.hedge.failovers"),
            snap.counter("oss.hedge.deadline_refused"),
            p95_ms("oss.hedge.delay_nanos"),
        ),
        format!(
            "  breakers: opened {}, closed {}, probes {}, shed {}",
            snap.counter("oss.breaker.opened"),
            snap.counter("oss.breaker.closed"),
            snap.counter("oss.breaker.probes"),
            snap.counter("oss.breaker.shed"),
        ),
        format!(
            "  retries: attempts {}, retries {}, giveups {}, p95 backoff wait {}",
            snap.counter("retry.attempts"),
            snap.counter("retry.retries"),
            snap.counter("retry.giveups"),
            p95_ms("retry.backoff_wait_nanos"),
        ),
        format!("  endpoint scores: {scores}"),
    ]
    .join("\n")
}

/// Execute a parsed command; returns the human-readable report.
pub fn run(cmd: Command) -> Result<String> {
    match cmd {
        Command::Init { repo } => {
            let oss = LocalDiskOss::open(&repo)?;
            use slim_oss::ObjectStore;
            if oss.exists(REPO_MARKER)? {
                return Err(SlimError::InvalidConfig(format!(
                    "{} is already a repository",
                    repo.display()
                )));
            }
            oss.put(REPO_MARKER, bytes::Bytes::from_static(b"1"))?;
            Ok(format!(
                "initialized empty slimstore repository at {}",
                repo.display()
            ))
        }
        Command::Backup {
            repo,
            source,
            jobs,
            pipeline,
        } => {
            let config = pipeline.map(|threads| {
                let mut cfg = SlimConfig::default();
                cfg.backup_pipeline_threads = threads;
                cfg
            });
            let store = open_repo_with(&repo, true, config)?;
            let files = read_tree(&source)?;
            if files.is_empty() {
                return Err(SlimError::InvalidConfig(format!(
                    "{} contains no files",
                    source.display()
                )));
            }
            let count = files.len();
            let report = store.backup_version_with_jobs(files, jobs)?;
            store.run_gnode_cycle(report.version)?;
            Ok(format!(
                "{}: {} files, {:.1} MiB logical, {:.1} MiB new, dedup {:.1}%",
                report.version,
                count,
                report.stats.logical_bytes as f64 / (1024.0 * 1024.0),
                report.stats.stored_bytes as f64 / (1024.0 * 1024.0),
                report.stats.dedup_ratio() * 100.0,
            ))
        }
        Command::Restore {
            repo,
            version,
            target,
            jobs,
        } => {
            let store = open_repo(&repo, true)?;
            let restored = store.restore_version(VersionId(version), jobs)?;
            fs::create_dir_all(&target)?;
            let mut bytes = 0u64;
            let count = restored.len();
            for (file, data, _) in restored {
                let rel = safe_relative(&file)?;
                let path = target.join(rel);
                if let Some(parent) = path.parent() {
                    fs::create_dir_all(parent)?;
                }
                bytes += data.len() as u64;
                fs::write(path, data)?;
            }
            Ok(format!(
                "restored v{version}: {count} files, {:.1} MiB -> {}",
                bytes as f64 / (1024.0 * 1024.0),
                target.display(),
            ))
        }
        Command::Versions { repo } => {
            let store = open_repo(&repo, true)?;
            let versions = store.versions();
            if versions.is_empty() {
                return Ok("no versions".to_string());
            }
            let mut lines = Vec::new();
            for v in versions {
                let files = store.files_of(v)?.len();
                lines.push(format!("{v}\t{files} files"));
            }
            Ok(lines.join("\n"))
        }
        Command::Files { repo, version } => {
            let store = open_repo(&repo, true)?;
            let files = store.files_of(VersionId(version))?;
            Ok(files
                .iter()
                .map(|f| f.as_str().to_string())
                .collect::<Vec<_>>()
                .join("\n"))
        }
        Command::Gc { repo, keep } => {
            let store = open_repo(&repo, true)?;
            let before = store.versions().len();
            let report = store.retain_last(keep)?;
            let vacuumed = store.gnode().vacuum()?;
            Ok(format!(
                "kept {} of {} versions; reclaimed {:.1} MiB (+{:.1} MiB vacuumed), {} containers, {} recipes, {} stale redundancy objects dropped",
                store.versions().len(),
                before,
                report.bytes_reclaimed as f64 / (1024.0 * 1024.0),
                vacuumed.bytes_reclaimed as f64 / (1024.0 * 1024.0),
                report.containers_deleted,
                report.recipes_deleted,
                report.redundancy_objects_dropped(),
            ))
        }
        Command::Diff { repo, from, to } => {
            let store = open_repo(&repo, true)?;
            let (va, vb) = (VersionId(from), VersionId(to));
            let files_a: std::collections::BTreeSet<FileId> =
                store.files_of(va)?.into_iter().collect();
            let files_b: std::collections::BTreeSet<FileId> =
                store.files_of(vb)?.into_iter().collect();
            let mut lines = Vec::new();
            for f in files_b.difference(&files_a) {
                lines.push(format!("A  {f}"));
            }
            for f in files_a.difference(&files_b) {
                lines.push(format!("D  {f}"));
            }
            for f in files_a.intersection(&files_b) {
                let ra = store.storage().get_recipe(f, va)?;
                let rb = store.storage().get_recipe(f, vb)?;
                let set_a: std::collections::HashSet<_> =
                    ra.records().map(|r| (r.fp, r.size)).collect();
                let total_b = rb.record_count().max(1);
                let shared = rb
                    .records()
                    .filter(|r| set_a.contains(&(r.fp, r.size)))
                    .count();
                if shared == total_b && ra.record_count() == rb.record_count() {
                    continue; // unchanged
                }
                lines.push(format!(
                    "M  {f}  ({:.1}% of v{to} content is new)",
                    100.0 * (total_b - shared) as f64 / total_b as f64
                ));
            }
            if lines.is_empty() {
                lines.push(format!("no differences between v{from} and v{to}"));
            }
            Ok(lines.join("\n"))
        }
        Command::Cat {
            repo,
            version,
            file,
        } => {
            let store = open_repo(&repo, true)?;
            let mut stdout = std::io::stdout().lock();
            store.restore_file_to(&FileId::new(file), VersionId(version), &mut stdout)?;
            use std::io::Write;
            stdout.flush()?;
            Ok(String::new())
        }
        Command::Check { repo } => {
            let store = open_repo(&repo, true)?;
            let records = store.scrub()?;
            Ok(format!(
                "ok: {} versions, {records} chunk records, all resolvable",
                store.versions().len(),
            ))
        }
        Command::Stats { repo, qos } => {
            // Telemetry is process-local (counters start at zero for each
            // invocation), so the snapshot covers the traffic of opening
            // the repository: index loads, marker checks, LSM scans. Piped
            // after a long-running import it covers the whole session.
            let store = open_repo(&repo, true)?;
            let snap = store.telemetry_snapshot();
            if qos {
                Ok(format!("{}\n{}", snap.to_json(), qos_section(&snap)))
            } else {
                Ok(snap.to_json())
            }
        }
        Command::Scrub {
            repo,
            repair,
            purge,
            force,
        } => {
            // Opening the repository already replays any outstanding
            // maintenance intents (crash recovery runs on every open); the
            // explicit call is an idempotent re-check and the telemetry
            // snapshot below carries the counters of the open-time replay.
            let store = open_repo(&repo, true)?;
            let recovery = store.recover()?;
            let (integrity, repaired) = if repair {
                let (integrity, repair_report) = store.repair()?;
                (integrity, Some(repair_report))
            } else {
                (store.verify_checksums()?, None)
            };
            let (repairable, lost) = store.classify_quarantine()?;
            let snap = store.telemetry_snapshot();
            let mut lines = vec![
                format!(
                    "recovery: replayed {} intents ({} rolled forward, {} rolled back, {} journal records quarantined)",
                    snap.counter("gnode.journal.replayed"),
                    snap.counter("gnode.journal.rolled_forward"),
                    snap.counter("gnode.journal.rolled_back"),
                    snap.counter("gnode.journal.corrupt"),
                ),
                format!(
                    "index: {} tables quarantined, {} entries re-derived",
                    snap.counter("gnode.index.tables_quarantined"),
                    snap.counter("gnode.index.entries_rederived"),
                ),
                format!(
                    "integrity: checked {} containers, quarantined {} containers, dropped {} index entries",
                    integrity.containers_checked,
                    integrity.containers_quarantined,
                    integrity.index_entries_removed,
                ),
                format!("quarantine: {repairable} containers repairable, {lost} lost"),
            ];
            if let Some(r) = &repaired {
                lines.push(format!(
                    "repair: {} containers reconstructed ({} objects rewritten, {} index entries restored), {} unrepairable",
                    r.containers_repaired,
                    r.objects_rewritten,
                    r.index_entries_restored,
                    r.containers_unrepairable,
                ));
            }
            if purge {
                let p = store.purge_quarantine(force)?;
                lines.push(format!(
                    "purge: {} quarantined objects deleted, {} kept",
                    p.objects_purged, p.objects_kept,
                ));
            }
            let healthy = recovery.is_clean()
                && integrity.containers_quarantined == 0
                && snap.counter("gnode.quarantined_objects") == 0;
            let healed = repaired
                .as_ref()
                .is_some_and(|r| r.containers_unrepairable == 0 && lost == 0);
            if healthy {
                lines.push("ok: repository is clean".to_string());
            } else if healed {
                lines.push("ok: damage found and repaired from the redundancy plane".to_string());
            } else {
                lines.push(format!(
                    "attention: inspect objects under '{}' in the repository",
                    slim_types::layout::QUARANTINE_PREFIX
                ));
            }
            Ok(lines.join("\n"))
        }
        Command::Space { repo } => {
            let store = open_repo(&repo, true)?;
            let s = store.space_report()?;
            Ok(format!(
                "containers: {:.1} MiB\n  logical:  {:.1} MiB\n  stored:   {:.1} MiB (ratio {:.2})\nrecipes:    {:.1} MiB\nglobal idx: {:.1} MiB\nredundancy: {:.1} MiB\nquarantine: {:.1} MiB\nother:      {:.1} MiB\ntotal:      {:.1} MiB",
                s.container_bytes as f64 / (1024.0 * 1024.0),
                s.container_logical_bytes as f64 / (1024.0 * 1024.0),
                s.container_stored_payload_bytes as f64 / (1024.0 * 1024.0),
                s.compression_ratio(),
                s.recipe_bytes as f64 / (1024.0 * 1024.0),
                s.global_index_bytes as f64 / (1024.0 * 1024.0),
                s.redundancy_bytes as f64 / (1024.0 * 1024.0),
                s.quarantine_bytes as f64 / (1024.0 * 1024.0),
                s.other_bytes as f64 / (1024.0 * 1024.0),
                s.total() as f64 / (1024.0 * 1024.0),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slim-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_commands() {
        assert_eq!(
            parse(&s(&["init", "/tmp/r"])).unwrap(),
            Command::Init {
                repo: "/tmp/r".into()
            }
        );
        assert_eq!(
            parse(&s(&["backup", "/r", "/src", "--jobs", "8"])).unwrap(),
            Command::Backup {
                repo: "/r".into(),
                source: "/src".into(),
                jobs: 8,
                pipeline: None
            }
        );
        assert_eq!(
            parse(&s(&["backup", "/r", "/src", "--pipeline", "6"])).unwrap(),
            Command::Backup {
                repo: "/r".into(),
                source: "/src".into(),
                jobs: 4,
                pipeline: Some(6)
            }
        );
        assert!(parse(&s(&["backup", "/r", "/src", "--pipeline"])).is_err());
        assert_eq!(
            parse(&s(&["restore", "/r", "v3", "/out"])).unwrap(),
            Command::Restore {
                repo: "/r".into(),
                version: 3,
                target: "/out".into(),
                jobs: 4
            }
        );
        assert_eq!(
            parse(&s(&["gc", "/r", "--keep", "5"])).unwrap(),
            Command::Gc {
                repo: "/r".into(),
                keep: 5
            }
        );
        assert_eq!(
            parse(&s(&["stats", "/r"])).unwrap(),
            Command::Stats {
                repo: "/r".into(),
                qos: false
            }
        );
        assert_eq!(
            parse(&s(&["stats", "/r", "--qos"])).unwrap(),
            Command::Stats {
                repo: "/r".into(),
                qos: true
            }
        );
        assert_eq!(
            parse(&s(&["scrub", "/r"])).unwrap(),
            Command::Scrub {
                repo: "/r".into(),
                repair: false,
                purge: false,
                force: false
            }
        );
        assert_eq!(
            parse(&s(&["scrub", "/r", "--repair", "--purge", "--force"])).unwrap(),
            Command::Scrub {
                repo: "/r".into(),
                repair: true,
                purge: true,
                force: true
            }
        );
        assert!(parse(&s(&["gc", "/r"])).is_err());
        assert!(parse(&s(&["bogus"])).is_err());
        assert!(parse(&s(&["restore", "/r", "notanumber", "/out"])).is_err());
        assert!(parse(&s(&[])).is_err());
        assert!(parse(&s(&["backup", "/r", "/src", "--wat"])).is_err());
    }

    #[test]
    fn full_cli_lifecycle() {
        let repo = temp_dir("repo");
        let src = temp_dir("src");
        let out = temp_dir("out");
        fs::create_dir_all(src.join("sub")).unwrap();
        fs::write(src.join("a.txt"), b"hello world".repeat(500)).unwrap();
        fs::write(src.join("sub/b.bin"), vec![7u8; 9000]).unwrap();

        run(Command::Init { repo: repo.clone() }).unwrap();
        // Double init rejected.
        assert!(run(Command::Init { repo: repo.clone() }).is_err());

        let msg = run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 2,
            pipeline: None,
        })
        .unwrap();
        assert!(msg.contains("2 files"), "{msg}");

        // Mutate and take a second version, through the pipelined plane.
        fs::write(src.join("a.txt"), b"hello world".repeat(501)).unwrap();
        run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 2,
            pipeline: Some(4),
        })
        .unwrap();

        let versions = run(Command::Versions { repo: repo.clone() }).unwrap();
        assert!(
            versions.contains("v0") && versions.contains("v1"),
            "{versions}"
        );
        let files = run(Command::Files {
            repo: repo.clone(),
            version: 1,
        })
        .unwrap();
        assert!(
            files.contains("a.txt") && files.contains("sub/b.bin"),
            "{files}"
        );

        run(Command::Restore {
            repo: repo.clone(),
            version: 1,
            target: out.clone(),
            jobs: 2,
        })
        .unwrap();
        assert_eq!(
            fs::read(out.join("a.txt")).unwrap(),
            b"hello world".repeat(501)
        );
        assert_eq!(fs::read(out.join("sub/b.bin")).unwrap(), vec![7u8; 9000]);

        let space = run(Command::Space { repo: repo.clone() }).unwrap();
        assert!(space.contains("total"), "{space}");
        let check = run(Command::Check { repo: repo.clone() }).unwrap();
        assert!(check.starts_with("ok:"), "{check}");
        let diff = run(Command::Diff {
            repo: repo.clone(),
            from: 0,
            to: 1,
        })
        .unwrap();
        assert!(diff.contains("M  a.txt"), "{diff}");
        assert!(!diff.contains("b.bin"), "unchanged file listed: {diff}");
        let stats = run(Command::Stats {
            repo: repo.clone(),
            qos: false,
        })
        .unwrap();
        let snap = slim_telemetry::TelemetrySnapshot::from_json(&stats).unwrap();
        assert!(
            snap.counters.contains_key("oss.get_requests"),
            "canonical OSS counters present: {stats}"
        );
        // --qos appends the queue/QoS section after the JSON document.
        let stats = run(Command::Stats {
            repo: repo.clone(),
            qos: true,
        })
        .unwrap();
        let (json, qos) = stats.split_once("\nqos:").expect("qos section present");
        assert!(slim_telemetry::TelemetrySnapshot::from_json(json).is_ok());
        assert!(qos.contains("admitted 0"), "no frontend ran: {qos}");
        assert!(qos.contains("p95 latency: restore -"), "{qos}");
        let gc = run(Command::Gc {
            repo: repo.clone(),
            keep: 1,
        })
        .unwrap();
        assert!(gc.contains("kept 1 of 2"), "{gc}");
        // v0 gone, v1 still restorable.
        assert!(run(Command::Files {
            repo: repo.clone(),
            version: 0
        })
        .is_err());
        run(Command::Restore {
            repo: repo.clone(),
            version: 1,
            target: out.clone(),
            jobs: 1,
        })
        .unwrap();
        run(Command::Check { repo: repo.clone() }).unwrap();

        for d in [repo, src, out] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn diff_reports_added_and_removed() {
        let repo = temp_dir("diff");
        let src = temp_dir("diff-src");
        run(Command::Init { repo: repo.clone() }).unwrap();
        fs::write(src.join("keep.txt"), b"same").unwrap();
        fs::write(src.join("old.txt"), b"going away").unwrap();
        run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None,
        })
        .unwrap();
        fs::remove_file(src.join("old.txt")).unwrap();
        fs::write(src.join("new.txt"), b"brand new").unwrap();
        run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None,
        })
        .unwrap();
        let diff = run(Command::Diff {
            repo: repo.clone(),
            from: 0,
            to: 1,
        })
        .unwrap();
        assert!(diff.contains("A  new.txt"), "{diff}");
        assert!(diff.contains("D  old.txt"), "{diff}");
        assert!(!diff.contains("keep.txt"), "{diff}");
        for d in [repo, src] {
            let _ = fs::remove_dir_all(d);
        }
    }

    fn scrub_cmd(repo: &Path, repair: bool, purge: bool, force: bool) -> Command {
        Command::Scrub {
            repo: repo.to_path_buf(),
            repair,
            purge,
            force,
        }
    }

    #[test]
    fn scrub_repairs_corruption_from_redundancy_plane() {
        let repo = temp_dir("scrub");
        let src = temp_dir("scrub-src");
        let out = temp_dir("scrub-out");
        let payload = b"payload bytes ".repeat(1500);
        fs::write(src.join("f.bin"), &payload).unwrap();
        run(Command::Init { repo: repo.clone() }).unwrap();
        run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None,
        })
        .unwrap();

        let msg = run(scrub_cmd(&repo, false, false, false)).unwrap();
        assert!(msg.contains("ok: repository is clean"), "{msg}");

        // Flip one byte in one stored container data object (bit rot).
        {
            use slim_oss::ObjectStore;
            let oss = LocalDiskOss::open(&repo).unwrap();
            let key = oss
                .list("containers/")
                .into_iter()
                .find(|k| k.ends_with("/data"))
                .expect("backup stored containers");
            let mut buf = oss.get(&key).unwrap().to_vec();
            buf[0] ^= 0xFF;
            oss.put(&key, buf.into()).unwrap();
        }

        // Without --repair: the damage is detected, quarantined, and
        // reported repairable (the backup's cycle built the plane).
        let msg = run(scrub_cmd(&repo, false, false, false)).unwrap();
        assert!(msg.contains("attention"), "{msg}");
        assert!(!msg.contains("quarantined 0 containers"), "{msg}");
        assert!(msg.contains("1 containers repairable, 0 lost"), "{msg}");

        // With --repair --purge: reconstructed, index re-pointed, and the
        // now-redundant quarantine copies dropped.
        let msg = run(scrub_cmd(&repo, true, true, false)).unwrap();
        assert!(
            msg.contains("ok: damage found and repaired") || msg.contains("repository is clean"),
            "{msg}"
        );
        assert!(msg.contains("containers reconstructed"), "{msg}");
        assert!(msg.contains("0 kept"), "{msg}");
        // Everything restores byte-identically and re-verifies clean.
        run(Command::Check { repo: repo.clone() }).unwrap();
        run(Command::Restore {
            repo: repo.clone(),
            version: 0,
            target: out.clone(),
            jobs: 1,
        })
        .unwrap();
        assert_eq!(fs::read(out.join("f.bin")).unwrap(), payload);
        let msg = run(scrub_cmd(&repo, false, false, false)).unwrap();
        assert!(msg.contains("ok: repository is clean"), "{msg}");

        for d in [repo, src, out] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn scrub_reports_lost_containers_when_no_plane_survives() {
        let repo = temp_dir("scrub-lost");
        let src = temp_dir("scrub-lost-src");
        fs::write(src.join("f.bin"), b"payload bytes ".repeat(1500)).unwrap();
        run(Command::Init { repo: repo.clone() }).unwrap();
        run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None,
        })
        .unwrap();

        // Destroy both the primaries and the entire redundancy plane —
        // beyond the single-fault model, so the damage is honest loss.
        {
            use slim_oss::ObjectStore;
            let oss = LocalDiskOss::open(&repo).unwrap();
            for key in oss.list("redundancy/") {
                oss.delete(&key).unwrap();
            }
            let keys: Vec<String> = oss
                .list("containers/")
                .into_iter()
                .filter(|k| k.ends_with("/data"))
                .collect();
            assert!(!keys.is_empty());
            for key in keys {
                let mut buf = oss.get(&key).unwrap().to_vec();
                buf[0] ^= 0xFF;
                oss.put(&key, buf.into()).unwrap();
            }
        }

        let msg = run(scrub_cmd(&repo, true, false, false)).unwrap();
        assert!(msg.contains("attention"), "{msg}");
        assert!(msg.contains("unrepairable"), "{msg}");
        assert!(msg.contains("0 containers repairable"), "{msg}");
        // A non-forced purge keeps the forensic copies; --force drops them.
        let msg = run(scrub_cmd(&repo, false, true, false)).unwrap();
        assert!(msg.contains("0 quarantined objects deleted"), "{msg}");
        let msg = run(scrub_cmd(&repo, false, true, true)).unwrap();
        assert!(msg.contains("0 kept"), "{msg}");
        {
            use slim_oss::ObjectStore;
            let oss = LocalDiskOss::open(&repo).unwrap();
            assert!(oss.list("quarantine/").is_empty());
        }
        // With primaries, plane, and quarantine all gone, the lost chunks
        // fail loudly instead of restoring bad bytes.
        assert!(run(Command::Check { repo: repo.clone() }).is_err());

        for d in [repo, src] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn qos_section_reflects_frontend_activity() {
        use slim_frontend::{FrontendBuilder, FrontendConfig, Request};
        use slim_oss::rocks::RocksConfig;
        use slim_oss::NetworkModel;
        use slim_types::SlimConfig;
        use slimstore::TenantStoreManager;

        let manager = Arc::new(
            TenantStoreManager::in_memory(NetworkModel::instant())
                .with_config(SlimConfig::small_for_tests())
                .with_rocks_config(RocksConfig::small_for_tests()),
        );
        let fe = FrontendBuilder::new(manager)
            .with_config(FrontendConfig::small_for_tests())
            .start()
            .unwrap();
        let report = fe
            .submit(
                "acme",
                Request::Backup {
                    files: vec![(FileId::new("f"), b"qos".repeat(2000))],
                    jobs: 1,
                },
            )
            .unwrap()
            .wait()
            .unwrap()
            .into_backup()
            .unwrap();
        fe.submit(
            "acme",
            Request::RestoreFile {
                file: FileId::new("f"),
                version: report.version,
            },
        )
        .unwrap()
        .wait()
        .unwrap()
        .into_file()
        .unwrap();
        let section = qos_section(&fe.telemetry_snapshot());
        assert!(
            section.contains("admitted 2, completed 2, failed 0"),
            "{section}"
        );
        assert!(section.contains("shed 0"), "{section}");
        assert!(!section.contains("p95 latency: restore -"), "{section}");
        // The resilience block rides along in --qos output; an in-memory run
        // with healthy endpoints reports a quiet plane, not missing metrics.
        assert!(section.contains("resilience:"), "{section}");
        assert!(section.contains("hedges: issued 0"), "{section}");
        assert!(section.contains("breakers: opened 0"), "{section}");
    }

    #[test]
    fn resilience_section_reports_endpoint_scores() {
        let registry = slim_telemetry::Registry::new();
        let scope = registry.scope("oss");
        let tracker = slim_oss::HealthTracker::with_telemetry(2, &scope);
        tracker.record(0, std::time::Duration::from_micros(100), true);
        tracker.record(1, std::time::Duration::from_millis(5), false);
        let section = resilience_section(&registry.snapshot());
        assert!(section.contains("endpoint scores: 0: "), "{section}");
        assert!(section.contains(", 1: "), "{section}");
        // An empty registry renders dashes, not a panic.
        let empty = resilience_section(&slim_telemetry::Registry::new().snapshot());
        assert!(empty.contains("endpoint scores: -"), "{empty}");
        assert!(empty.contains("p95 delay -"), "{empty}");
    }

    #[test]
    fn backup_requires_initialized_repo() {
        let repo = temp_dir("noinit");
        let src = temp_dir("noinit-src");
        fs::write(src.join("f"), b"x").unwrap();
        assert!(run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None
        })
        .is_err());
        for d in [repo, src] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn empty_source_rejected() {
        let repo = temp_dir("empty");
        let src = temp_dir("empty-src");
        run(Command::Init { repo: repo.clone() }).unwrap();
        assert!(run(Command::Backup {
            repo: repo.clone(),
            source: src.clone(),
            jobs: 1,
            pipeline: None
        })
        .is_err());
        for d in [repo, src] {
            let _ = fs::remove_dir_all(d);
        }
    }
}
