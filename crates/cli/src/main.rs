//! Entry point of the `slimstore` CLI (see [`slimstore_cli`] for the
//! command reference).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match slimstore_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match slimstore_cli::run(cmd) {
        // `cat` streams its payload itself and returns an empty report; a
        // trailing newline would corrupt piped binary output.
        Ok(report) if report.is_empty() => {}
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
