//! Shared statistics for baseline backup systems.

use std::time::Duration;

/// Outcome counters of one baseline backup job.
#[derive(Debug, Clone, Default)]
pub struct BaselineBackupStats {
    /// Logical bytes processed.
    pub logical_bytes: u64,
    /// Bytes of unique payload written.
    pub stored_bytes: u64,
    /// Chunks processed.
    pub chunks: u64,
    /// Chunks identified as duplicates.
    pub duplicates: u64,
    /// Index/manifest/block fetches performed.
    pub index_fetches: u64,
    /// Wall time of the job.
    pub wall_time: Duration,
}

impl BaselineBackupStats {
    /// Deduplication ratio (deleted duplicate bytes / logical bytes).
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        // Saturating: aggressive merge settings can legitimately store more
        // than the logical size in one version; the ratio floors at 0.
        self.logical_bytes.saturating_sub(self.stored_bytes) as f64 / self.logical_bytes as f64
    }

    /// Throughput in MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.logical_bytes as f64 / (1024.0 * 1024.0) / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_throughput() {
        let s = BaselineBackupStats {
            logical_bytes: 100,
            stored_bytes: 25,
            wall_time: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((s.dedup_ratio() - 0.75).abs() < 1e-9);
        assert!(s.throughput_mbps() > 0.0);
        assert_eq!(BaselineBackupStats::default().dedup_ratio(), 0.0);
    }
}
