//! Restore-cache baselines of Fig 8.
//!
//! Three prior restore designs, all reading the common recipe/container
//! formats so they are directly comparable with SLIMSTORE's full-vision
//! cache:
//!
//! * [`LruContainerRestore`] — the conventional container-grained LRU cache;
//! * [`OptContainerRestore`] — the "OPT" cache of HAR (Fu et al., ATC'14):
//!   container-grained with Belady's replacement computed over a look-ahead
//!   window of the recipe;
//! * [`AlaccRestore`] — ALACC (Cao et al., FAST'18): a forward assembly area
//!   (FAA) that materializes a span of the output at a time, combined with a
//!   chunk-grained cache fed by look-ahead admission.
//!
//! None of them can see past their look-ahead window — the limitation the
//! full-vision cache removes (§V-A).

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use bytes::Bytes;
use slim_lnode::stats::RestoreStats;
use slim_lnode::StorageLayer;
use slim_types::{ChunkRecord, ContainerId, Fingerprint, Recipe, Result, SlimError};

/// A restore strategy over the common formats.
pub trait RestoreCacheSim {
    /// Restore a recipe, returning the bytes and the I/O statistics.
    fn restore(
        &mut self,
        storage: &StorageLayer,
        recipe: &Recipe,
    ) -> Result<(Vec<u8>, RestoreStats)>;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// A fetched container, indexed for chunk extraction.
struct LoadedContainer {
    data: Bytes,
    live: HashMap<Fingerprint, (u32, u32)>,
    bytes: usize,
}

fn load_container(
    storage: &StorageLayer,
    id: ContainerId,
    stats: &mut RestoreStats,
) -> Result<LoadedContainer> {
    let meta = storage.get_container_meta(id)?;
    let data = storage.get_container_data(id)?;
    stats.containers_read += 1;
    stats.oss_bytes_read += data.len() as u64 + meta.encode().len() as u64;
    Ok(LoadedContainer {
        bytes: data.len(),
        live: meta.live_map(),
        data,
    })
}

fn chunk_of(container: &LoadedContainer, rec: &ChunkRecord) -> Result<Bytes> {
    let &(off, len) = container
        .live
        .get(&rec.fp)
        .ok_or_else(|| SlimError::ChunkUnresolvable {
            fp: rec.fp.to_hex(),
            detail: format!("not live in {}", rec.container_id),
        })?;
    Ok(container.data.slice(off as usize..(off + len) as usize))
}

// ---------------------------------------------------------------------------
// LRU container cache
// ---------------------------------------------------------------------------

/// Conventional container-grained LRU restore cache.
pub struct LruContainerRestore {
    capacity_bytes: usize,
}

impl LruContainerRestore {
    /// Cache bounded to `capacity_bytes` of container payload.
    pub fn new(capacity_bytes: usize) -> Self {
        LruContainerRestore {
            capacity_bytes: capacity_bytes.max(1),
        }
    }
}

impl RestoreCacheSim for LruContainerRestore {
    fn restore(
        &mut self,
        storage: &StorageLayer,
        recipe: &Recipe,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let start = Instant::now();
        let mut stats = RestoreStats::default();
        let mut out = Vec::with_capacity(recipe.logical_bytes() as usize);
        let mut cache: HashMap<ContainerId, LoadedContainer> = HashMap::new();
        let mut order: VecDeque<ContainerId> = VecDeque::new();
        let mut cached_bytes = 0usize;

        for rec in recipe.records() {
            if !cache.contains_key(&rec.container_id) {
                stats.cache_misses += 1;
                let loaded = load_container(storage, rec.container_id, &mut stats)?;
                cached_bytes += loaded.bytes;
                cache.insert(rec.container_id, loaded);
                order.push_back(rec.container_id);
                while cached_bytes > self.capacity_bytes && order.len() > 1 {
                    let victim = order.pop_front().expect("len > 1");
                    if let Some(gone) = cache.remove(&victim) {
                        cached_bytes -= gone.bytes;
                    }
                }
            } else {
                stats.cache_hits += 1;
                // Refresh recency.
                if let Some(pos) = order.iter().position(|&c| c == rec.container_id) {
                    order.remove(pos);
                    order.push_back(rec.container_id);
                }
            }
            let chunk = chunk_of(&cache[&rec.container_id], rec)?;
            stats.restored_bytes += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
        stats.wall_time = start.elapsed();
        Ok((out, stats))
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

// ---------------------------------------------------------------------------
// OPT (Belady with LAW) container cache
// ---------------------------------------------------------------------------

/// HAR's OPT cache: container-grained, evicting the container whose next use
/// lies farthest in the look-ahead window (or outside it).
pub struct OptContainerRestore {
    capacity_bytes: usize,
    law_window: usize,
}

impl OptContainerRestore {
    /// Cache of `capacity_bytes` with a `law_window`-record look-ahead.
    pub fn new(capacity_bytes: usize, law_window: usize) -> Self {
        OptContainerRestore {
            capacity_bytes: capacity_bytes.max(1),
            law_window: law_window.max(1),
        }
    }
}

impl RestoreCacheSim for OptContainerRestore {
    fn restore(
        &mut self,
        storage: &StorageLayer,
        recipe: &Recipe,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let start = Instant::now();
        let mut stats = RestoreStats::default();
        let records: Vec<&ChunkRecord> = recipe.records().collect();
        let mut out = Vec::with_capacity(recipe.logical_bytes() as usize);

        // Positions of every container in the record sequence.
        let mut positions: HashMap<ContainerId, VecDeque<usize>> = HashMap::new();
        for (i, rec) in records.iter().enumerate() {
            positions.entry(rec.container_id).or_default().push_back(i);
        }
        let mut cache: HashMap<ContainerId, LoadedContainer> = HashMap::new();
        let mut cached_bytes = 0usize;

        for (i, rec) in records.iter().enumerate() {
            // Retire past positions.
            if let Some(pos) = positions.get_mut(&rec.container_id) {
                while pos.front().is_some_and(|&p| p <= i) {
                    pos.pop_front();
                }
            }
            if !cache.contains_key(&rec.container_id) {
                stats.cache_misses += 1;
                let loaded = load_container(storage, rec.container_id, &mut stats)?;
                cached_bytes += loaded.bytes;
                cache.insert(rec.container_id, loaded);
                // Belady eviction over the LAW horizon.
                while cached_bytes > self.capacity_bytes && cache.len() > 1 {
                    let horizon = i + self.law_window;
                    let victim = cache
                        .keys()
                        .filter(|&&c| c != rec.container_id)
                        .max_by_key(|&&c| {
                            positions
                                .get(&c)
                                .and_then(|p| p.front().copied())
                                .filter(|&p| p <= horizon)
                                .map(|p| p as u64)
                                .unwrap_or(u64::MAX) // unused in LAW: evict first
                        })
                        .copied();
                    let Some(victim) = victim else { break };
                    if let Some(gone) = cache.remove(&victim) {
                        cached_bytes -= gone.bytes;
                    }
                }
            } else {
                stats.cache_hits += 1;
            }
            let chunk = chunk_of(&cache[&rec.container_id], rec)?;
            stats.restored_bytes += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
        stats.wall_time = start.elapsed();
        Ok((out, stats))
    }

    fn name(&self) -> &'static str {
        "opt"
    }
}

// ---------------------------------------------------------------------------
// ALACC: forward assembly area + chunk cache
// ---------------------------------------------------------------------------

/// ALACC's restore: a forward assembly area materializes a span of output at
/// a time (each container read fills every FAA slot it can), and a
/// chunk-grained cache carries chunks needed beyond the FAA but inside the
/// look-ahead window.
pub struct AlaccRestore {
    faa_bytes: usize,
    chunk_cache_bytes: usize,
    law_window: usize,
}

impl AlaccRestore {
    /// ALACC with the given assembly-area size, chunk-cache size and LAW.
    pub fn new(faa_bytes: usize, chunk_cache_bytes: usize, law_window: usize) -> Self {
        AlaccRestore {
            faa_bytes: faa_bytes.max(1),
            chunk_cache_bytes,
            law_window: law_window.max(1),
        }
    }

    /// The plain forward-assembly-area restore of Lillibridge et al.
    /// (FAST'13): an assembly area and nothing else — no chunk cache, no
    /// look-ahead admission. ALACC's own baseline.
    pub fn faa_only(faa_bytes: usize) -> Self {
        AlaccRestore {
            faa_bytes: faa_bytes.max(1),
            chunk_cache_bytes: 0,
            law_window: 1,
        }
    }
}

impl RestoreCacheSim for AlaccRestore {
    fn restore(
        &mut self,
        storage: &StorageLayer,
        recipe: &Recipe,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let start = Instant::now();
        let mut stats = RestoreStats::default();
        let records: Vec<&ChunkRecord> = recipe.records().collect();
        let mut out = Vec::with_capacity(recipe.logical_bytes() as usize);

        // Chunk cache (LRU by bytes).
        let mut cache: HashMap<Fingerprint, Bytes> = HashMap::new();
        let mut cache_order: VecDeque<Fingerprint> = VecDeque::new();
        let mut cache_bytes = 0usize;

        let mut i = 0usize;
        while i < records.len() {
            // Delimit the FAA span [i, j).
            let mut j = i;
            let mut span_bytes = 0usize;
            while j < records.len() {
                let next = records[j].size as usize;
                if span_bytes + next > self.faa_bytes && j > i {
                    break;
                }
                span_bytes += next;
                j += 1;
            }
            let mut slots: Vec<Option<Bytes>> = vec![None; j - i];
            // Serve from the chunk cache first.
            for k in i..j {
                if let Some(chunk) = cache.get(&records[k].fp) {
                    slots[k - i] = Some(chunk.clone());
                    stats.cache_hits += 1;
                }
            }
            // Fill remaining slots container by container.
            for k in i..j {
                if slots[k - i].is_some() {
                    continue;
                }
                stats.cache_misses += 1;
                let loaded = load_container(storage, records[k].container_id, &mut stats)?;
                // Fill every FAA slot this container can serve.
                for l in i..j {
                    if slots[l - i].is_none() {
                        if let Some(&(off, len)) = loaded.live.get(&records[l].fp) {
                            slots[l - i] =
                                Some(loaded.data.slice(off as usize..(off + len) as usize));
                        }
                    }
                }
                // Look-ahead admission: chunks needed beyond the FAA but
                // inside the LAW enter the chunk cache.
                let law_end = (i + self.law_window).min(records.len());
                for rec in records.iter().take(law_end).skip(j) {
                    if cache.contains_key(&rec.fp) {
                        continue;
                    }
                    if let Some(&(off, len)) = loaded.live.get(&rec.fp) {
                        let chunk = loaded.data.slice(off as usize..(off + len) as usize);
                        cache_bytes += chunk.len();
                        cache_order.push_back(rec.fp);
                        cache.insert(rec.fp, chunk);
                    }
                }
                while cache_bytes > self.chunk_cache_bytes {
                    let Some(victim) = cache_order.pop_front() else {
                        break;
                    };
                    if let Some(gone) = cache.remove(&victim) {
                        cache_bytes -= gone.len();
                    }
                }
            }
            for (k, slot) in slots.into_iter().enumerate() {
                let chunk = slot.ok_or_else(|| SlimError::ChunkUnresolvable {
                    fp: records[i + k].fp.to_hex(),
                    detail: "FAA slot unfilled".into(),
                })?;
                stats.restored_bytes += chunk.len() as u64;
                out.extend_from_slice(&chunk);
            }
            i = j;
        }
        stats.wall_time = start.elapsed();
        Ok((out, stats))
    }

    fn name(&self) -> &'static str {
        "alacc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_index::SimilarFileIndex;
    use slim_lnode::backup::BackupPipeline;
    use slim_oss::Oss;
    use slim_types::{FileId, SlimConfig, VersionId};
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    /// Build a fragmented multi-version store and return (storage, recipe,
    /// expected bytes) for the last version.
    fn fragmented_store() -> (StorageLayer, Recipe, Vec<u8>) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let similar = SimilarFileIndex::new();
        let cfg = SlimConfig::small_for_tests();
        let chunker = FastCdcChunker::new(ChunkSpec::from_config(&cfg));
        let pipeline = BackupPipeline::new(&storage, &similar, &chunker, &cfg);
        let file = FileId::new("f");
        let mut cur = data(1, 48_000);
        for v in 0..5u64 {
            pipeline.backup_file(&file, VersionId(v), &cur).unwrap();
            let patch = data(40 + v, 1_500);
            let at = 2_000 + v as usize * 8_000;
            cur[at..at + 1_500].copy_from_slice(&patch);
        }
        pipeline.backup_file(&file, VersionId(5), &cur).unwrap();
        let recipe = storage.get_recipe(&file, VersionId(5)).unwrap();
        (storage, recipe, cur)
    }

    #[test]
    fn all_caches_restore_correctly() {
        let (storage, recipe, expected) = fragmented_store();
        let mut sims: Vec<Box<dyn RestoreCacheSim>> = vec![
            Box::new(LruContainerRestore::new(64 * 1024)),
            Box::new(OptContainerRestore::new(64 * 1024, 64)),
            Box::new(AlaccRestore::new(8 * 1024, 32 * 1024, 64)),
        ];
        for sim in &mut sims {
            let (out, stats) = sim.restore(&storage, &recipe).unwrap();
            assert_eq!(out, expected, "{} corrupted the restore", sim.name());
            assert!(stats.containers_read > 0);
            assert_eq!(stats.restored_bytes, expected.len() as u64);
        }
    }

    #[test]
    fn tiny_caches_still_correct_but_read_more() {
        let (storage, recipe, expected) = fragmented_store();
        let mut big = LruContainerRestore::new(10 * 1024 * 1024);
        let mut small = LruContainerRestore::new(8 * 1024);
        let (out_big, stats_big) = big.restore(&storage, &recipe).unwrap();
        let (out_small, stats_small) = small.restore(&storage, &recipe).unwrap();
        assert_eq!(out_big, expected);
        assert_eq!(out_small, expected);
        assert!(
            stats_small.containers_read >= stats_big.containers_read,
            "smaller cache cannot read fewer containers"
        );
    }

    #[test]
    fn opt_beats_lru_under_pressure() {
        let (storage, recipe, _) = fragmented_store();
        let cap = 12 * 1024;
        let (_, lru) = LruContainerRestore::new(cap)
            .restore(&storage, &recipe)
            .unwrap();
        let (_, opt) = OptContainerRestore::new(cap, 128)
            .restore(&storage, &recipe)
            .unwrap();
        assert!(
            opt.containers_read <= lru.containers_read,
            "Belady with LAW must not lose to LRU: opt={} lru={}",
            opt.containers_read,
            lru.containers_read
        );
    }

    #[test]
    fn alacc_chunk_cache_reduces_rereads() {
        let (storage, recipe, _) = fragmented_store();
        let (_, no_cache) = AlaccRestore::new(8 * 1024, 0, 64)
            .restore(&storage, &recipe)
            .unwrap();
        let (_, with_cache) = AlaccRestore::new(8 * 1024, 128 * 1024, 64)
            .restore(&storage, &recipe)
            .unwrap();
        assert!(
            with_cache.containers_read <= no_cache.containers_read,
            "chunk cache must not increase reads: {} vs {}",
            with_cache.containers_read,
            no_cache.containers_read
        );
    }

    #[test]
    fn faa_only_restores_correctly_but_reads_more() {
        let (storage, recipe, expected) = fragmented_store();
        let (out, faa) = AlaccRestore::faa_only(8 * 1024)
            .restore(&storage, &recipe)
            .unwrap();
        assert_eq!(out, expected);
        let (_, alacc) = AlaccRestore::new(8 * 1024, 128 * 1024, 64)
            .restore(&storage, &recipe)
            .unwrap();
        assert!(
            faa.containers_read >= alacc.containers_read,
            "plain FAA cannot beat ALACC: {} vs {}",
            faa.containers_read,
            alacc.containers_read
        );
    }

    #[test]
    fn empty_recipe_restores_empty() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let recipe = Recipe::new();
        for sim in [
            &mut LruContainerRestore::new(1024) as &mut dyn RestoreCacheSim,
            &mut OptContainerRestore::new(1024, 8),
            &mut AlaccRestore::new(1024, 1024, 8),
        ] {
            let (out, stats) = sim.restore(&storage, &recipe).unwrap();
            assert!(out.is_empty());
            assert_eq!(stats.containers_read, 0);
        }
    }
}
