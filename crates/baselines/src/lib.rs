//! Baseline systems the SLIMSTORE paper compares against (§VII).
//!
//! Every baseline is implemented from its own paper's description, over the
//! same storage substrate and on-OSS formats as SLIMSTORE, so comparisons
//! measure the *algorithms*, not incidental format differences:
//!
//! * [`silo::SiloSystem`] — SiLO (Xia et al., ATC'11): similarity-hash table
//!   over segment representatives + block-grained locality cache;
//! * [`sparse_indexing::SparseIndexingSystem`] — Sparse Indexing
//!   (Lillibridge et al., FAST'09): sampled in-memory index, champion
//!   manifests;
//! * [`har::HarSystem`] — HAR (Fu et al., ATC'14): exact inline dedup with
//!   historical-aware rewriting of sparse-container chunks at the *next*
//!   backup;
//! * [`restore_caches`] — the restore-path baselines of Fig 8: LRU container
//!   cache, the OPT (Belady with look-ahead window) container cache, and
//!   ALACC's FAA + chunk-cache combination;
//! * [`restic::ResticSim`] — the dedup model of restic (the open-source
//!   comparison of Fig 10): ~1 MB content-defined chunks, one repository-wide
//!   lock around the shared fingerprint index, and an OSSFS-style
//!   filesystem-emulation layer that adds per-operation overhead.

pub mod capping;
pub mod common;
pub mod har;
pub mod lbw;
pub mod restic;
pub mod restore_caches;
pub mod silo;
pub mod sparse_indexing;
pub mod stats;

pub use capping::CappingSystem;
pub use har::HarSystem;
pub use lbw::LbwSystem;
pub use restic::ResticSim;
pub use restore_caches::{AlaccRestore, LruContainerRestore, OptContainerRestore, RestoreCacheSim};
pub use silo::SiloSystem;
pub use sparse_indexing::SparseIndexingSystem;
pub use stats::BaselineBackupStats;
