//! HAR — History-Aware Rewriting (Fu et al., ATC'14).
//!
//! HAR attacks restore fragmentation at *backup* time: each backup records
//! the utilization of every container it references; containers below the
//! threshold are declared sparse and remembered. During the **next** backup,
//! duplicate chunks that live in a remembered sparse container are rewritten
//! (stored again in fresh containers) instead of referenced, trading a little
//! dedup ratio for restore locality. The benefit arrives one version late —
//! the contrast the paper draws with SLIMSTORE's SCC, whose compaction
//! applies to the current version (§V-B).
//!
//! Duplicate identification uses an exact in-memory fingerprint index, as in
//! the original paper.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use slim_chunking::{chunk_all, Chunker};
use slim_lnode::StorageLayer;
use slim_types::{ChunkRecord, ContainerId, FileId, Fingerprint, Result, SlimConfig, VersionId};

use crate::common::{persist_recipe, ContainerWriter};
use crate::stats::BaselineBackupStats;

/// The HAR deduplication system.
pub struct HarSystem {
    storage: StorageLayer,
    config: SlimConfig,
    chunker: Box<dyn Chunker>,
    /// Exact fingerprint index: fp → authoritative record.
    index: HashMap<Fingerprint, ChunkRecord>,
    /// Total chunks per container (for utilization).
    container_totals: HashMap<ContainerId, u32>,
    /// Sparse containers identified by the previous backup; their chunks are
    /// rewritten in this backup.
    rewrite_set: HashSet<ContainerId>,
    /// Chunks rewritten in the lifetime of this instance.
    pub rewritten_chunks: u64,
}

impl HarSystem {
    /// A HAR instance over the shared storage layer.
    pub fn new(storage: StorageLayer, config: SlimConfig, chunker: Box<dyn Chunker>) -> Self {
        HarSystem {
            storage,
            config,
            chunker,
            index: HashMap::new(),
            container_totals: HashMap::new(),
            rewrite_set: HashSet::new(),
            rewritten_chunks: 0,
        }
    }

    /// Back up one file.
    pub fn backup_file(
        &mut self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        let chunks = chunk_all(self.chunker.as_ref(), data);
        let mut writer = ContainerWriter::new(self.storage.clone(), self.config.container_capacity);
        let mut records: Vec<ChunkRecord> = Vec::with_capacity(chunks.len());
        // Utilization bookkeeping for *this* backup.
        let mut used: HashMap<ContainerId, HashSet<Fingerprint>> = HashMap::new();

        for chunk in &chunks {
            stats.chunks += 1;
            let rec = match self.index.get(&chunk.fp).copied() {
                Some(hit) if self.rewrite_set.contains(&hit.container_id) => {
                    // Duplicate in a sparse container: rewrite for locality.
                    let container = writer.push(chunk.fp, chunk.slice(data))?;
                    self.rewritten_chunks += 1;
                    let rec = ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0);
                    self.index.insert(chunk.fp, rec);
                    rec
                }
                Some(hit) => {
                    stats.duplicates += 1;
                    ChunkRecord::new(chunk.fp, hit.container_id, hit.size, 0)
                }
                None => {
                    let container = writer.push(chunk.fp, chunk.slice(data))?;
                    let rec = ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0);
                    self.index.insert(chunk.fp, rec);
                    rec
                }
            };
            used.entry(rec.container_id).or_default().insert(rec.fp);
            records.push(rec);
        }
        writer.seal()?;
        stats.stored_bytes = writer.stored_bytes;

        // Record totals for containers created by this backup.
        for id in &writer.sealed {
            let meta = self.storage.get_container_meta(*id)?;
            self.container_totals
                .insert(*id, meta.total_chunks() as u32);
        }

        // Identify sparse containers for the *next* backup.
        self.rewrite_set.clear();
        for (container, fps) in &used {
            let Some(&total) = self.container_totals.get(container) else {
                continue;
            };
            if total == 0 {
                continue;
            }
            let utilization = fps.len() as f64 / total as f64;
            if utilization < self.config.sparse_utilization_threshold {
                self.rewrite_set.insert(*container);
            }
        }

        persist_recipe(
            &self.storage,
            file,
            version,
            records,
            self.config.segment_chunks,
            self.config.sample_rate,
        )?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }

    /// Containers currently scheduled for rewriting.
    pub fn sparse_containers(&self) -> usize {
        self.rewrite_set.len()
    }

    /// Entries in the exact in-memory fingerprint index (RAM footprint
    /// metric; HAR keeps every chunk resident).
    pub fn index_entries(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn make_system() -> (StorageLayer, HarSystem, SlimConfig) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let config = SlimConfig::small_for_tests();
        let chunker = Box::new(FastCdcChunker::new(ChunkSpec::from_config(&config)));
        (
            storage.clone(),
            HarSystem::new(storage, config.clone(), chunker),
            config,
        )
    }

    #[test]
    fn exact_dedup_on_identical_content() {
        let (_s, mut har, _c) = make_system();
        let file = FileId::new("f");
        let input = data(1, 50_000);
        har.backup_file(&file, VersionId(0), &input).unwrap();
        let s = har.backup_file(&file, VersionId(1), &input).unwrap();
        // Exact index: everything except any rewrites is a duplicate.
        assert!(s.dedup_ratio() > 0.95, "ratio {}", s.dedup_ratio());
    }

    #[test]
    fn sparse_containers_get_rewritten_next_version() {
        let (_s, mut har, _c) = make_system();
        let file = FileId::new("f");
        // v0 stores a big file; v1 keeps small *scattered* slivers — one per
        // v0 container — so those containers become sparse; v2 should
        // rewrite the slivers.
        let v0 = data(2, 64_000);
        har.backup_file(&file, VersionId(0), &v0).unwrap();
        let filler = data(3, 56_000);
        let mut v1 = Vec::new();
        for i in 0..8usize {
            v1.extend_from_slice(&v0[i * 8_000..i * 8_000 + 1_000]);
            v1.extend_from_slice(&filler[i * 7_000..(i + 1) * 7_000]);
        }
        har.backup_file(&file, VersionId(1), &v1).unwrap();
        assert!(
            har.sparse_containers() > 0,
            "v1 must flag v0's containers sparse"
        );
        let before = har.rewritten_chunks;
        har.backup_file(&file, VersionId(2), &v1).unwrap();
        assert!(
            har.rewritten_chunks > before,
            "v2 must rewrite chunks from sparse containers"
        );
    }

    #[test]
    fn restores_through_common_format() {
        let (storage, mut har, cfg) = make_system();
        let file = FileId::new("f");
        let input = data(4, 40_000);
        har.backup_file(&file, VersionId(0), &input).unwrap();
        let mut v1 = input.clone();
        v1[20_000..20_200].copy_from_slice(&data(5, 200));
        har.backup_file(&file, VersionId(1), &v1).unwrap();
        let engine = RestoreEngine::new(&storage, None);
        let opts = RestoreOptions::from_config(&cfg);
        assert_eq!(
            engine.restore_file(&file, VersionId(0), &opts).unwrap().0,
            input
        );
        assert_eq!(
            engine.restore_file(&file, VersionId(1), &opts).unwrap().0,
            v1
        );
    }
}
