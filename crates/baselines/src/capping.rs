//! Capping (Lillibridge et al., FAST'13).
//!
//! A restore-oriented rewriting scheme: each fixed-size *segment* of the
//! backup stream may reference at most `cap` old containers. Duplicate
//! chunks whose containers don't make the segment's top-`cap` (ranked by how
//! many of the segment's chunks they serve) are rewritten into fresh
//! containers, bounding restore read amplification at the cost of some
//! dedup ratio. Identification uses an exact in-memory index, as in the
//! original paper.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use slim_chunking::{chunk_all, Chunker};
use slim_lnode::StorageLayer;
use slim_types::{ChunkRecord, ContainerId, FileId, Fingerprint, Result, SlimConfig, VersionId};

use crate::common::{persist_recipe, ContainerWriter};
use crate::stats::BaselineBackupStats;

/// The Capping deduplication system.
pub struct CappingSystem {
    storage: StorageLayer,
    config: SlimConfig,
    chunker: Box<dyn Chunker>,
    /// Exact fingerprint index: fp → authoritative record.
    index: HashMap<Fingerprint, ChunkRecord>,
    /// Maximum old containers one segment may reference.
    cap: usize,
    /// Chunks rewritten over this instance's lifetime.
    pub rewritten_chunks: u64,
}

impl CappingSystem {
    /// Capping with the given per-segment container cap.
    pub fn new(
        storage: StorageLayer,
        config: SlimConfig,
        chunker: Box<dyn Chunker>,
        cap: usize,
    ) -> Self {
        CappingSystem {
            storage,
            config,
            chunker,
            index: HashMap::new(),
            cap: cap.max(1),
            rewritten_chunks: 0,
        }
    }

    /// Entries in the exact in-memory fingerprint index (RAM footprint
    /// metric).
    pub fn index_entries(&self) -> usize {
        self.index.len()
    }

    /// Back up one file.
    pub fn backup_file(
        &mut self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        let chunks = chunk_all(self.chunker.as_ref(), data);
        let mut writer = ContainerWriter::new(self.storage.clone(), self.config.container_capacity);
        let mut records: Vec<ChunkRecord> = Vec::with_capacity(chunks.len());

        for segment in chunks.chunks(self.config.segment_chunks.max(1)) {
            // Rank the old containers this segment's duplicates live in.
            let mut votes: HashMap<ContainerId, usize> = HashMap::new();
            for chunk in segment {
                if let Some(rec) = self.index.get(&chunk.fp) {
                    *votes.entry(rec.container_id).or_default() += 1;
                }
            }
            let mut ranked: Vec<(ContainerId, usize)> = votes.into_iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
            let kept: HashSet<ContainerId> =
                ranked.iter().take(self.cap).map(|(c, _)| *c).collect();

            for chunk in segment {
                stats.chunks += 1;
                let rec = match self.index.get(&chunk.fp).copied() {
                    Some(hit) if kept.contains(&hit.container_id) => {
                        stats.duplicates += 1;
                        ChunkRecord::new(chunk.fp, hit.container_id, hit.size, 0)
                    }
                    Some(_) => {
                        // Over the cap: rewrite for restore locality.
                        let container = writer.push(chunk.fp, chunk.slice(data))?;
                        self.rewritten_chunks += 1;
                        let rec = ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0);
                        self.index.insert(chunk.fp, rec);
                        rec
                    }
                    None => {
                        let container = writer.push(chunk.fp, chunk.slice(data))?;
                        let rec = ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0);
                        self.index.insert(chunk.fp, rec);
                        rec
                    }
                };
                records.push(rec);
            }
        }
        writer.seal()?;
        stats.stored_bytes = writer.stored_bytes;
        persist_recipe(
            &self.storage,
            file,
            version,
            records,
            self.config.segment_chunks,
            self.config.sample_rate,
        )?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn make_system(cap: usize) -> (StorageLayer, CappingSystem, SlimConfig) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let config = SlimConfig::small_for_tests();
        let chunker = Box::new(FastCdcChunker::new(ChunkSpec::from_config(&config)));
        (
            storage.clone(),
            CappingSystem::new(storage, config.clone(), chunker, cap),
            config,
        )
    }

    /// Build a fragmented history: each version keeps slivers of many old
    /// containers.
    fn fragmented_versions() -> Vec<Vec<u8>> {
        let mut versions = vec![data(1, 48_000)];
        for v in 1..6u64 {
            let prev = versions.last().unwrap().clone();
            let mut next = Vec::new();
            for i in 0..8usize {
                next.extend_from_slice(&prev[i * 6_000..i * 6_000 + 3_000]);
                next.extend_from_slice(&data(100 * v + i as u64, 3_000));
            }
            versions.push(next);
        }
        versions
    }

    #[test]
    fn roundtrip_and_rewrites_happen() {
        let (storage, mut capping, cfg) = make_system(2);
        let file = FileId::new("f");
        let versions = fragmented_versions();
        for (v, bytes) in versions.iter().enumerate() {
            capping
                .backup_file(&file, VersionId(v as u64), bytes)
                .unwrap();
        }
        assert!(
            capping.rewritten_chunks > 0,
            "fragmentation must trigger rewrites"
        );
        let engine = RestoreEngine::new(&storage, None);
        let opts = RestoreOptions::from_config(&cfg);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "version {v}");
        }
    }

    #[test]
    fn cap_bounds_containers_per_segment() {
        let (storage, mut capping, cfg) = make_system(2);
        let file = FileId::new("f");
        for (v, bytes) in fragmented_versions().iter().enumerate() {
            capping
                .backup_file(&file, VersionId(v as u64), bytes)
                .unwrap();
        }
        let last = VersionId(5);
        let recipe = storage.get_recipe(&file, last).unwrap();
        // Count distinct *pre-existing* containers per segment: new
        // containers created during v5's own backup are allowed beyond the
        // cap (they are the rewrite targets).
        for seg in &recipe.segments {
            let distinct: std::collections::HashSet<_> =
                seg.records.iter().map(|r| r.container_id).collect();
            // cap old + up to a couple of fresh write containers
            assert!(
                distinct.len() <= 2 + 1 + seg.records.len() / cfg.segment_chunks.max(1) + 2,
                "segment references too many containers: {}",
                distinct.len()
            );
        }
    }

    #[test]
    fn lower_cap_trades_dedup_for_locality() {
        let file = FileId::new("f");
        let versions = fragmented_versions();
        let run = |cap: usize| {
            let (_, mut sys, _) = make_system(cap);
            let mut stored = 0u64;
            for (v, bytes) in versions.iter().enumerate() {
                stored += sys
                    .backup_file(&file, VersionId(v as u64), bytes)
                    .unwrap()
                    .stored_bytes;
            }
            (stored, sys.rewritten_chunks)
        };
        let (stored_tight, rewrites_tight) = run(1);
        let (stored_loose, rewrites_loose) = run(16);
        assert!(rewrites_tight > rewrites_loose);
        assert!(
            stored_tight >= stored_loose,
            "tighter cap cannot store less: {stored_tight} vs {stored_loose}"
        );
    }
}
