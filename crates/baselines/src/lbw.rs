//! LBW — sliding Look-Back Window rewriting (Cao et al., FAST'19).
//!
//! Another rewriting family the paper cites (§II): instead of HAR's
//! whole-backup utilization history or Capping's hard per-segment cap, LBW
//! defers each duplicate's keep-or-rewrite decision until the write frontier
//! is a full window past it. At that point the window holds the chunk's
//! *local context*: if its container serves fewer than the threshold number
//! of chunks in that context, referencing it would drag a locally-sparse
//! container into the restore — so the chunk is rewritten instead.
//!
//! Identification uses an exact in-memory index like the original paper's
//! testbed.

use std::collections::HashMap;
use std::time::Instant;

use slim_chunking::{chunk_all, Chunker};
use slim_lnode::StorageLayer;
use slim_types::{ChunkRecord, FileId, Fingerprint, Result, SlimConfig, VersionId};

use crate::common::{persist_recipe, ContainerWriter};
use crate::stats::BaselineBackupStats;

/// The LBW deduplication system.
pub struct LbwSystem {
    storage: StorageLayer,
    config: SlimConfig,
    chunker: Box<dyn Chunker>,
    /// Exact fingerprint index: fp → authoritative record.
    index: HashMap<Fingerprint, ChunkRecord>,
    /// Look-back window length in chunks.
    window: usize,
    /// Rewrite a duplicate whose container serves fewer than this many of
    /// the window's chunks.
    min_refs_in_window: usize,
    /// Chunks rewritten over this instance's lifetime.
    pub rewritten_chunks: u64,
}

impl LbwSystem {
    /// LBW with the given window length (chunks) and rewrite threshold.
    pub fn new(
        storage: StorageLayer,
        config: SlimConfig,
        chunker: Box<dyn Chunker>,
        window: usize,
        min_refs_in_window: usize,
    ) -> Self {
        LbwSystem {
            storage,
            config,
            chunker,
            index: HashMap::new(),
            window: window.max(1),
            min_refs_in_window: min_refs_in_window.max(1),
            rewritten_chunks: 0,
        }
    }

    /// Entries in the exact in-memory fingerprint index.
    pub fn index_entries(&self) -> usize {
        self.index.len()
    }

    /// Back up one file.
    pub fn backup_file(
        &mut self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        let chunks = chunk_all(self.chunker.as_ref(), data);
        let mut writer = ContainerWriter::new(self.storage.clone(), self.config.container_capacity);
        // Tentative records: uniques are final immediately (the stream needs
        // them indexed for intra-version duplicates); duplicates are decided
        // once the frontier is `window` records past them.
        struct Slot {
            start: usize,
            end: usize,
            rec: ChunkRecord,
            deferred: bool,
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(chunks.len());
        let mut finalized = 0usize; // everything before this is decided

        // Decide slots whose context window is complete (or at stream end).
        macro_rules! finalize_up_to {
            ($limit:expr, $self_:ident, $writer:ident, $stats:ident) => {{
                while finalized < $limit {
                    let lo = finalized.saturating_sub($self_.window / 2);
                    let hi = (finalized + $self_.window).min(slots.len());
                    if slots[finalized].deferred {
                        let target = slots[finalized].rec.container_id;
                        let support = slots[lo..hi]
                            .iter()
                            .filter(|s| s.rec.container_id == target)
                            .count();
                        if support < $self_.min_refs_in_window {
                            let (start, end) = (slots[finalized].start, slots[finalized].end);
                            let fp = slots[finalized].rec.fp;
                            let container = $writer.push(fp, &data[start..end])?;
                            $self_.rewritten_chunks += 1;
                            $stats.duplicates -= 1;
                            let rec = ChunkRecord::new(fp, container, (end - start) as u32, 0);
                            $self_.index.insert(fp, rec);
                            slots[finalized].rec = rec;
                        }
                    }
                    finalized += 1;
                }
            }};
        }

        for chunk in &chunks {
            stats.chunks += 1;
            let (rec, deferred) = match self.index.get(&chunk.fp).copied() {
                Some(hit) => {
                    stats.duplicates += 1;
                    (
                        ChunkRecord::new(chunk.fp, hit.container_id, hit.size, 0),
                        true,
                    )
                }
                None => {
                    let container = writer.push(chunk.fp, chunk.slice(data))?;
                    let rec = ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0);
                    self.index.insert(chunk.fp, rec);
                    (rec, false)
                }
            };
            slots.push(Slot {
                start: chunk.start,
                end: chunk.end,
                rec,
                deferred,
            });
            if slots.len() > finalized + self.window {
                finalize_up_to!(slots.len() - self.window, self, writer, stats);
            }
        }
        finalize_up_to!(slots.len(), self, writer, stats);
        let records: Vec<ChunkRecord> = slots.into_iter().map(|s| s.rec).collect();
        writer.seal()?;
        stats.stored_bytes = writer.stored_bytes;
        persist_recipe(
            &self.storage,
            file,
            version,
            records,
            self.config.segment_chunks,
            self.config.sample_rate,
        )?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn make_system(window: usize, min_refs: usize) -> (StorageLayer, LbwSystem, SlimConfig) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let config = SlimConfig::small_for_tests();
        let chunker = Box::new(FastCdcChunker::new(ChunkSpec::from_config(&config)));
        (
            storage.clone(),
            LbwSystem::new(storage, config.clone(), chunker, window, min_refs),
            config,
        )
    }

    /// Versions that keep shrinking slivers of many old containers.
    fn fragmented_versions() -> Vec<Vec<u8>> {
        let mut versions = vec![data(1, 48_000)];
        for v in 1..6u64 {
            let prev = versions.last().unwrap().clone();
            let mut next = Vec::new();
            for i in 0..8usize {
                next.extend_from_slice(&prev[i * 6_000..i * 6_000 + 2_000]);
                next.extend_from_slice(&data(100 * v + i as u64, 4_000));
            }
            versions.push(next);
        }
        versions
    }

    #[test]
    fn roundtrip_and_rewrites_happen() {
        let (storage, mut lbw, cfg) = make_system(32, 3);
        let file = FileId::new("f");
        let versions = fragmented_versions();
        for (v, bytes) in versions.iter().enumerate() {
            lbw.backup_file(&file, VersionId(v as u64), bytes).unwrap();
        }
        assert!(
            lbw.rewritten_chunks > 0,
            "fragmentation must trigger rewrites"
        );
        let engine = RestoreEngine::new(&storage, None);
        let opts = RestoreOptions::from_config(&cfg);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = engine
                .restore_file(&file, VersionId(v as u64), &opts)
                .unwrap();
            assert_eq!(&out, expected, "version {v}");
        }
    }

    #[test]
    fn identical_versions_dedup_fully_after_first() {
        let (_s, mut lbw, _c) = make_system(32, 3);
        let file = FileId::new("f");
        let input = data(9, 40_000);
        lbw.backup_file(&file, VersionId(0), &input).unwrap();
        let s = lbw.backup_file(&file, VersionId(1), &input).unwrap();
        // A clean sequential re-read keeps every container warm in the
        // window: no rewriting, near-exact dedup.
        assert!(s.dedup_ratio() > 0.95, "ratio {}", s.dedup_ratio());
    }

    #[test]
    fn stricter_threshold_rewrites_more() {
        let file = FileId::new("f");
        let versions = fragmented_versions();
        let run = |min_refs: usize| {
            let (_, mut sys, _) = make_system(32, min_refs);
            for (v, bytes) in versions.iter().enumerate() {
                sys.backup_file(&file, VersionId(v as u64), bytes).unwrap();
            }
            sys.rewritten_chunks
        };
        assert!(
            run(8) >= run(2),
            "higher support requirement must rewrite at least as much"
        );
    }
}
