//! A restic-model deduplication system (the Fig 10 comparison).
//!
//! Reimplements the architectural properties of restic that the paper's
//! comparison exercises, over the same simulated OSS:
//!
//! * content-defined chunking with a ~1 MB target (restic's default);
//! * one **repository-wide lock**: every backup/restore job must own the
//!   shared fingerprint index exclusively, so concurrent jobs serialize —
//!   which is why restic's throughput stays flat as jobs are added while
//!   SLIMSTORE's stateless L-nodes scale linearly;
//! * pack files as the storage unit, written through [`OssFs`] — a
//!   filesystem-emulation wrapper (the paper used OSSFS) that charges an
//!   extra fixed latency on every operation.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use slim_chunking::{chunk_all, ChunkSpec, FastCdcChunker};
use slim_lnode::stats::RestoreStats;
use slim_oss::ObjectStore;
use slim_types::codec::{Reader, Writer};
use slim_types::{FileId, Fingerprint, Result, SlimError, VersionId};

use crate::stats::BaselineBackupStats;

/// Filesystem-emulation wrapper (OSSFS): forwards to the inner store with an
/// extra per-operation latency.
pub struct OssFs {
    inner: Arc<dyn ObjectStore>,
    op_overhead: Duration,
}

impl OssFs {
    /// Wrap `inner`, charging `op_overhead` per operation.
    pub fn new(inner: Arc<dyn ObjectStore>, op_overhead: Duration) -> Self {
        OssFs { inner, op_overhead }
    }

    fn charge(&self) {
        if !self.op_overhead.is_zero() {
            std::thread::sleep(self.op_overhead);
        }
    }
}

impl ObjectStore for OssFs {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.charge();
        self.inner.put(key, value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.charge();
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        self.charge();
        self.inner.get_range(key, start, len)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.charge();
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.inner.exists(key)
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.inner.len(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn metrics_snapshot(&self) -> Option<slim_oss::MetricsSnapshot> {
        self.inner.metrics_snapshot()
    }
}

/// Location of a chunk inside a pack file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackLoc {
    pack: u64,
    offset: u32,
    len: u32,
}

/// Shared repository state, guarded by one lock (restic's exclusive
/// repository lock).
struct RepoState {
    index: HashMap<Fingerprint, PackLoc>,
    open_pack: Vec<u8>,
    open_pack_entries: Vec<(Fingerprint, u32, u32)>,
    next_pack: u64,
}

/// The restic-model system. Clone the `Arc` to run jobs from many threads —
/// they will serialize on the repository lock, as real restic jobs do.
pub struct ResticSim {
    fs: OssFs,
    chunker: FastCdcChunker,
    pack_target: usize,
    repo: Mutex<RepoState>,
}

impl ResticSim {
    /// A repository on `oss` with restic-like parameters: `avg_chunk`
    /// target chunk size (restic uses ~1 MB) and 4× that as pack target.
    pub fn new(oss: Arc<dyn ObjectStore>, op_overhead: Duration, avg_chunk: usize) -> Self {
        let avg = avg_chunk.next_power_of_two();
        ResticSim {
            fs: OssFs::new(oss, op_overhead),
            chunker: FastCdcChunker::new(ChunkSpec::new(avg / 4, avg, avg * 4)),
            pack_target: avg * 4,
            repo: Mutex::new(RepoState {
                index: HashMap::new(),
                open_pack: Vec::new(),
                open_pack_entries: Vec::new(),
                next_pack: 0,
            }),
        }
    }

    fn pack_key(id: u64) -> String {
        format!("restic/data/{id:012}")
    }

    fn snapshot_key(file: &FileId, version: VersionId) -> String {
        format!("restic/snapshots/{}/{:08}", file.as_str(), version.0)
    }

    fn flush_pack(&self, state: &mut RepoState) -> Result<()> {
        if state.open_pack.is_empty() {
            return Ok(());
        }
        let id = state.next_pack;
        state.next_pack += 1;
        let data = Bytes::from(std::mem::take(&mut state.open_pack));
        self.fs.put(&Self::pack_key(id), data)?;
        for (fp, offset, len) in state.open_pack_entries.drain(..) {
            state.index.insert(
                fp,
                PackLoc {
                    pack: id,
                    offset,
                    len,
                },
            );
        }
        Ok(())
    }

    /// Back up one file. Concurrent callers serialize on the repository
    /// lock for the whole dedup/write phase.
    pub fn backup_file(
        &self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        // The whole job runs under the exclusive repository lock — the
        // behaviour the paper measured: "Restic cannot carry out multiple
        // backup jobs concurrently" (§VII-E). Concurrent callers serialize.
        let mut repo = self.repo.lock();
        let chunks = chunk_all(&self.chunker, data);
        let mut snapshot = Writer::new();
        snapshot.u32(chunks.len() as u32);
        for chunk in &chunks {
            stats.chunks += 1;
            let loc = match repo.index.get(&chunk.fp).copied() {
                Some(loc) => {
                    stats.duplicates += 1;
                    loc
                }
                None => {
                    // Check the open pack too (intra-job duplicates land
                    // there before the flush registers them).
                    match repo
                        .open_pack_entries
                        .iter()
                        .find(|(fp, _, _)| *fp == chunk.fp)
                        .copied()
                    {
                        Some((_, offset, len)) => {
                            stats.duplicates += 1;
                            PackLoc {
                                pack: repo.next_pack,
                                offset,
                                len,
                            }
                        }
                        None => {
                            let payload = chunk.slice(data);
                            let offset = repo.open_pack.len() as u32;
                            repo.open_pack.extend_from_slice(payload);
                            repo.open_pack_entries
                                .push((chunk.fp, offset, payload.len() as u32));
                            stats.stored_bytes += payload.len() as u64;
                            let loc = PackLoc {
                                pack: repo.next_pack,
                                offset,
                                len: payload.len() as u32,
                            };
                            if repo.open_pack.len() >= self.pack_target {
                                self.flush_pack(&mut repo)?;
                            }
                            loc
                        }
                    }
                }
            };
            snapshot.fingerprint(&chunk.fp);
            snapshot.u64(loc.pack);
            snapshot.u32(loc.offset);
            snapshot.u32(loc.len);
        }
        self.flush_pack(&mut repo)?;
        drop(repo);
        self.fs
            .put(&Self::snapshot_key(file, version), snapshot.freeze())?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }

    /// Restore one file. Resolving chunk locations holds the repository
    /// lock (the bottleneck the paper measures); pack reads happen outside.
    pub fn restore_file(
        &self,
        file: &FileId,
        version: VersionId,
    ) -> Result<(Vec<u8>, RestoreStats)> {
        let start = Instant::now();
        let mut stats = RestoreStats::default();
        // Restores also funnel through the shared index ("limited by the
        // fingerprint index access to get the data locations", §VII-E):
        // the whole job holds the repository lock.
        let _repo = self.repo.lock();
        let buf = self.fs.get(&Self::snapshot_key(file, version))?;
        let mut r = Reader::new(&buf, "restic snapshot");
        let n = r.u32()? as usize;
        let mut sequence = Vec::with_capacity(n);
        for _ in 0..n {
            let fp = r.fingerprint()?;
            let pack = r.u64()?;
            let offset = r.u32()?;
            let len = r.u32()?;
            sequence.push((fp, PackLoc { pack, offset, len }));
        }
        r.finish()?;
        let mut out = Vec::new();
        let mut cached: Option<(u64, Bytes)> = None;
        for (fp, loc) in sequence {
            let pack_data = match &cached {
                Some((id, data)) if *id == loc.pack => data.clone(),
                _ => {
                    let data = self.fs.get(&Self::pack_key(loc.pack))?;
                    stats.containers_read += 1;
                    stats.oss_bytes_read += data.len() as u64;
                    cached = Some((loc.pack, data.clone()));
                    data
                }
            };
            let end = (loc.offset + loc.len) as usize;
            if end > pack_data.len() {
                return Err(SlimError::ChunkUnresolvable {
                    fp: fp.to_hex(),
                    detail: format!("pack {} too short", loc.pack),
                });
            }
            let chunk = pack_data.slice(loc.offset as usize..end);
            stats.restored_bytes += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
        stats.wall_time = start.elapsed();
        Ok((out, stats))
    }

    /// Bytes occupied by the repository (packs + snapshots).
    pub fn repository_bytes(&self) -> u64 {
        self.fs
            .list("restic/")
            .iter()
            .filter_map(|k| self.fs.len(k).unwrap_or(None))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn repo() -> ResticSim {
        // Small chunks so tests exercise multi-pack paths.
        ResticSim::new(Arc::new(Oss::in_memory()), Duration::ZERO, 1024)
    }

    #[test]
    fn backup_restore_roundtrip() {
        let restic = repo();
        let file = FileId::new("f");
        let input = data(1, 50_000);
        let s = restic.backup_file(&file, VersionId(0), &input).unwrap();
        assert_eq!(s.logical_bytes, input.len() as u64);
        let (out, rs) = restic.restore_file(&file, VersionId(0)).unwrap();
        assert_eq!(out, input);
        assert!(rs.containers_read > 0);
    }

    #[test]
    fn dedup_between_versions() {
        let restic = repo();
        let file = FileId::new("f");
        let input = data(2, 60_000);
        restic.backup_file(&file, VersionId(0), &input).unwrap();
        let s = restic.backup_file(&file, VersionId(1), &input).unwrap();
        assert!(s.dedup_ratio() > 0.95, "exact index: {}", s.dedup_ratio());
        let (out, _) = restic.restore_file(&file, VersionId(1)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn concurrent_jobs_serialize_on_repo_lock() {
        // Each job's pack writes happen inside the exclusive repository
        // lock, and every OSSFS operation sleeps `op_overhead`. Serialized
        // correctly, 4 concurrent jobs therefore take at least the *sum* of
        // their in-lock sleep floors — a deterministic bound, immune to
        // host-load noise (unlike comparing against a measured single-job
        // baseline).
        let op_overhead = Duration::from_millis(2);
        let restic = Arc::new(ResticSim::new(
            Arc::new(Oss::in_memory()),
            op_overhead,
            1024, // 1 KB chunks -> 4 KB packs -> ~10 pack writes per job
        ));
        let inputs: Vec<_> = (0..4u64).map(|i| data(10 + i, 40_000)).collect();
        let t = Instant::now();
        let mut min_in_lock_ops = usize::MAX;
        std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    let restic = restic.clone();
                    s.spawn(move || {
                        let stats = restic
                            .backup_file(&FileId::new(format!("f{i}")), VersionId(0), input)
                            .unwrap();
                        // Unique payload => every pack flush is an in-lock put.
                        (stats.stored_bytes / (4 * 1024)) as usize
                    })
                })
                .collect();
            for h in handles {
                min_in_lock_ops = min_in_lock_ops.min(h.join().unwrap());
            }
        });
        let elapsed = t.elapsed();
        let floor = op_overhead * (4 * min_in_lock_ops) as u32;
        assert!(
            min_in_lock_ops >= 5,
            "each job should flush several packs, got {min_in_lock_ops}"
        );
        assert!(
            elapsed >= floor,
            "4 serialized jobs cannot beat the sum of their in-lock sleeps: {elapsed:?} < {floor:?}"
        );
    }

    #[test]
    fn repository_bytes_accounts_packs_and_snapshots() {
        let restic = repo();
        let file = FileId::new("f");
        let input = data(3, 20_000);
        restic.backup_file(&file, VersionId(0), &input).unwrap();
        let bytes = restic.repository_bytes();
        assert!(bytes >= input.len() as u64, "packs must hold the payload");
    }

    #[test]
    fn missing_snapshot_is_error() {
        let restic = repo();
        assert!(restic
            .restore_file(&FileId::new("ghost"), VersionId(0))
            .is_err());
    }
}
