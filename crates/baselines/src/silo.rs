//! SiLO (Xia et al., ATC'11): similarity + locality deduplication.
//!
//! SiLO groups chunks into *segments* and segments into *blocks*. A small
//! in-memory similarity-hash table (SHTable) maps each segment's
//! representative fingerprint (its minimum) to the block containing it; a
//! probe that hits loads the whole block — exploiting locality to catch the
//! neighbours of similar segments — into an LRU block cache. Chunks are
//! deduplicated against the cached blocks only, so RAM stays small at the
//! cost of some missed duplicates (near-exact dedup).

use std::collections::HashMap;
use std::time::Instant;

use slim_chunking::{chunk_all, Chunker};
use slim_lnode::StorageLayer;
use slim_types::codec::{Reader, Writer};
use slim_types::{ChunkRecord, FileId, Fingerprint, Result, SlimConfig, VersionId};

use crate::common::{persist_recipe, ContainerWriter, LruMap};
use crate::stats::BaselineBackupStats;

/// How many segments form one block.
const SEGMENTS_PER_BLOCK: usize = 8;
/// Block cache capacity, in blocks.
const BLOCK_CACHE_BLOCKS: usize = 16;

type Block = HashMap<Fingerprint, ChunkRecord>;

/// The SiLO deduplication system.
pub struct SiloSystem {
    storage: StorageLayer,
    config: SlimConfig,
    chunker: Box<dyn Chunker>,
    /// SHTable: segment representative fingerprint → block id.
    shtable: HashMap<Fingerprint, u64>,
    cache: LruMap<u64, Block>,
    /// Segments accumulated into the block under construction.
    write_block: Block,
    write_block_segments: usize,
    write_block_reps: Vec<Fingerprint>,
    next_block_id: u64,
}

impl SiloSystem {
    /// A SiLO instance over the shared storage layer.
    pub fn new(storage: StorageLayer, config: SlimConfig, chunker: Box<dyn Chunker>) -> Self {
        SiloSystem {
            storage,
            config,
            chunker,
            shtable: HashMap::new(),
            cache: LruMap::new(BLOCK_CACHE_BLOCKS),
            write_block: HashMap::new(),
            write_block_segments: 0,
            write_block_reps: Vec::new(),
            next_block_id: 0,
        }
    }

    fn block_key(id: u64) -> String {
        format!("silo/blocks/{id:012}")
    }

    fn persist_block(&mut self) -> Result<()> {
        if self.write_block.is_empty() {
            return Ok(());
        }
        let id = self.next_block_id;
        self.next_block_id += 1;
        let mut w = Writer::new();
        w.u32(self.write_block.len() as u32);
        for (fp, rec) in &self.write_block {
            w.fingerprint(fp);
            w.u64(rec.container_id.0);
            w.u32(rec.size);
        }
        self.storage.oss().put(&Self::block_key(id), w.freeze())?;
        for rep in self.write_block_reps.drain(..) {
            self.shtable.insert(rep, id);
        }
        let block = std::mem::take(&mut self.write_block);
        self.cache.insert(id, block);
        self.write_block_segments = 0;
        Ok(())
    }

    fn load_block(&mut self, id: u64) -> Result<()> {
        if self.cache.contains(&id) {
            return Ok(());
        }
        let buf = self.storage.oss().get(&Self::block_key(id))?;
        let mut r = Reader::new(&buf, "silo block");
        let n = r.u32()? as usize;
        let mut block = HashMap::with_capacity(n);
        for _ in 0..n {
            let fp = r.fingerprint()?;
            let container = slim_types::ContainerId(r.u64()?);
            let size = r.u32()?;
            block.insert(fp, ChunkRecord::new(fp, container, size, 0));
        }
        r.finish()?;
        self.cache.insert(id, block);
        Ok(())
    }

    fn find_cached(&mut self, fp: &Fingerprint) -> Option<ChunkRecord> {
        if let Some(rec) = self.write_block.get(fp) {
            return Some(*rec);
        }
        for (_, block) in self.cache.iter_mru() {
            if let Some(rec) = block.get(fp) {
                return Some(*rec);
            }
        }
        None
    }

    /// Back up one file.
    pub fn backup_file(
        &mut self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        let chunks = chunk_all(self.chunker.as_ref(), data);
        let mut writer = ContainerWriter::new(self.storage.clone(), self.config.container_capacity);
        let mut records: Vec<ChunkRecord> = Vec::with_capacity(chunks.len());

        for segment in chunks.chunks(self.config.segment_chunks.max(1)) {
            // Representative fingerprint: the minimum of the segment.
            let rep = segment
                .iter()
                .map(|c| c.fp)
                .min()
                .expect("non-empty segment");
            if let Some(&block_id) = self.shtable.get(&rep) {
                if !self.cache.contains(&block_id) {
                    stats.index_fetches += 1;
                }
                self.load_block(block_id)?;
            }
            let mut seg_records = Vec::with_capacity(segment.len());
            for chunk in segment {
                stats.chunks += 1;
                let rec = match self.find_cached(&chunk.fp) {
                    Some(found) => {
                        stats.duplicates += 1;
                        ChunkRecord::new(chunk.fp, found.container_id, found.size, 0)
                    }
                    None => {
                        let container = writer.push(chunk.fp, chunk.slice(data))?;
                        ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0)
                    }
                };
                seg_records.push(rec);
            }
            // Append the segment to the write block.
            for rec in &seg_records {
                self.write_block.insert(rec.fp, *rec);
            }
            self.write_block_reps.push(rep);
            self.write_block_segments += 1;
            if self.write_block_segments >= SEGMENTS_PER_BLOCK {
                self.persist_block()?;
            }
            records.extend(seg_records);
        }
        writer.seal()?;
        self.persist_block()?;
        stats.stored_bytes = writer.stored_bytes;
        persist_recipe(
            &self.storage,
            file,
            version,
            records,
            self.config.segment_chunks,
            self.config.sample_rate,
        )?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }

    /// Size of the in-memory SHTable (RAM footprint metric).
    pub fn shtable_entries(&self) -> usize {
        self.shtable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn make_system() -> (StorageLayer, SiloSystem, SlimConfig) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let config = SlimConfig::small_for_tests();
        let chunker = Box::new(FastCdcChunker::new(ChunkSpec::from_config(&config)));
        (
            storage.clone(),
            SiloSystem::new(storage, config.clone(), chunker),
            config,
        )
    }

    #[test]
    fn second_version_dedups() {
        let (_storage, mut silo, _cfg) = make_system();
        let file = FileId::new("f");
        let input = data(1, 60_000);
        let s0 = silo.backup_file(&file, VersionId(0), &input).unwrap();
        assert_eq!(s0.duplicates, 0);
        let s1 = silo.backup_file(&file, VersionId(1), &input).unwrap();
        assert!(
            s1.dedup_ratio() > 0.9,
            "identical content should dedup: {}",
            s1.dedup_ratio()
        );
        assert!(silo.shtable_entries() > 0);
    }

    #[test]
    fn restores_through_common_format() {
        let (storage, mut silo, cfg) = make_system();
        let file = FileId::new("f");
        let input = data(2, 40_000);
        silo.backup_file(&file, VersionId(0), &input).unwrap();
        let mut v1 = input.clone();
        v1[10_000..10_300].copy_from_slice(&data(9, 300));
        silo.backup_file(&file, VersionId(1), &v1).unwrap();
        let engine = RestoreEngine::new(&storage, None);
        let opts = RestoreOptions::from_config(&cfg);
        assert_eq!(
            engine.restore_file(&file, VersionId(0), &opts).unwrap().0,
            input
        );
        assert_eq!(
            engine.restore_file(&file, VersionId(1), &opts).unwrap().0,
            v1
        );
    }

    #[test]
    fn near_exact_misses_are_possible_but_bounded() {
        let (_storage, mut silo, _cfg) = make_system();
        let file = FileId::new("f");
        let input = data(3, 80_000);
        silo.backup_file(&file, VersionId(0), &input).unwrap();
        let mut mutated = input.clone();
        for at in [5_000usize, 25_000, 45_000, 65_000] {
            mutated[at..at + 200].copy_from_slice(&data(at as u64, 200));
        }
        let s = silo.backup_file(&file, VersionId(1), &mutated).unwrap();
        assert!(
            s.dedup_ratio() > 0.7,
            "locality should still find most: {}",
            s.dedup_ratio()
        );
    }

    #[test]
    fn block_fetches_counted() {
        let (_storage, mut silo, _cfg) = make_system();
        let file = FileId::new("f");
        let input = data(4, 60_000);
        silo.backup_file(&file, VersionId(0), &input).unwrap();
        // Fill the cache with unrelated content to force block eviction.
        for i in 0..40u64 {
            silo.backup_file(
                &FileId::new(format!("noise{i}")),
                VersionId(0),
                &data(100 + i, 20_000),
            )
            .unwrap();
        }
        let s = silo.backup_file(&file, VersionId(1), &input).unwrap();
        assert!(s.index_fetches > 0, "evicted blocks must be re-fetched");
        assert!(s.dedup_ratio() > 0.9);
    }
}
