//! Shared plumbing for baseline backup systems: container writing and
//! recipe assembly over the common on-OSS formats.

use slim_lnode::StorageLayer;
use slim_types::{
    ChunkRecord, ContainerBuilder, ContainerId, FileId, Fingerprint, Recipe, RecipeIndex, Result,
    SegmentRecipe, VersionId,
};

/// Accumulates unique chunks into containers and seals them to OSS.
pub struct ContainerWriter {
    storage: StorageLayer,
    capacity: usize,
    builder: Option<ContainerBuilder>,
    /// Containers sealed by this writer.
    pub sealed: Vec<ContainerId>,
    /// Bytes written.
    pub stored_bytes: u64,
}

impl ContainerWriter {
    /// Writer with the given container capacity.
    pub fn new(storage: StorageLayer, capacity: usize) -> Self {
        ContainerWriter {
            storage,
            capacity,
            builder: None,
            sealed: Vec::new(),
            stored_bytes: 0,
        }
    }

    /// Store one unique chunk; returns the container id it landed in.
    pub fn push(&mut self, fp: Fingerprint, payload: &[u8]) -> Result<ContainerId> {
        if self
            .builder
            .as_ref()
            .is_some_and(|b| b.would_overflow(payload.len()))
        {
            self.seal()?;
        }
        let builder = match &mut self.builder {
            Some(b) => b,
            None => {
                let id = self.storage.allocate_container_id();
                self.builder
                    .insert(ContainerBuilder::new(id, self.capacity))
            }
        };
        builder.push(fp, payload);
        self.stored_bytes += payload.len() as u64;
        Ok(builder.id())
    }

    /// Seal the open container, if any.
    pub fn seal(&mut self) -> Result<()> {
        if let Some(builder) = self.builder.take() {
            if builder.is_empty() {
                return Ok(());
            }
            let id = builder.id();
            let (data, meta) = builder.seal();
            self.storage.put_container(data, &meta)?;
            self.sealed.push(id);
        }
        Ok(())
    }
}

/// Build and persist a recipe (+ index) from flat records, segmenting every
/// `segment_chunks` records — the shared format all restore paths read.
pub fn persist_recipe(
    storage: &StorageLayer,
    file: &FileId,
    version: VersionId,
    records: Vec<ChunkRecord>,
    segment_chunks: usize,
    sample_rate: u64,
) -> Result<Recipe> {
    let mut segments = Vec::new();
    for chunk in records.chunks(segment_chunks.max(1)) {
        segments.push(SegmentRecipe::new(chunk.to_vec()));
    }
    let recipe = Recipe { segments };
    let (buf, spans) = recipe.encode();
    let index = RecipeIndex::build(&recipe, &spans, sample_rate);
    storage
        .oss()
        .put(&slim_types::layout::recipe(file, version), buf)?;
    storage.oss().put(
        &slim_types::layout::recipe_index(file, version),
        index.encode(),
    )?;
    Ok(recipe)
}

/// A tiny LRU map used by block/manifest caches.
pub struct LruMap<K, V> {
    capacity: usize,
    entries: Vec<(K, V)>, // most-recent last
}

impl<K: PartialEq + Clone, V> LruMap<K, V> {
    /// LRU holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruMap {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Fetch and mark recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        self.entries.push(entry);
        self.entries.last().map(|(_, v)| v)
    }

    /// Whether the key is cached (without promoting it).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Insert, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(idx);
        }
        while self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }

    /// Iterate most-recently-used first.
    pub fn iter_mru(&self) -> impl Iterator<Item = &(K, V)> {
        self.entries.iter().rev()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_oss::Oss;
    use std::sync::Arc;

    fn fp(b: u8) -> Fingerprint {
        Fingerprint::from_slice(&[b; 20]).unwrap()
    }

    #[test]
    fn container_writer_seals_at_capacity() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let mut w = ContainerWriter::new(storage.clone(), 128);
        let mut ids = Vec::new();
        for b in 0..10u8 {
            ids.push(w.push(fp(b), &[b; 64]).unwrap());
        }
        w.seal().unwrap();
        assert!(w.sealed.len() >= 5, "64B chunks in 128B containers");
        assert_eq!(w.stored_bytes, 640);
        // All sealed containers exist with correct metadata.
        for id in &w.sealed {
            let meta = storage.get_container_meta(*id).unwrap();
            assert!(meta.total_chunks() >= 1);
        }
    }

    #[test]
    fn persist_recipe_roundtrip() {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let records: Vec<ChunkRecord> = (0..10u8)
            .map(|b| ChunkRecord::new(fp(b), ContainerId(0), 10, 0))
            .collect();
        let file = FileId::new("f");
        let recipe = persist_recipe(&storage, &file, VersionId(0), records, 4, 1).unwrap();
        assert_eq!(recipe.segments.len(), 3);
        let loaded = storage.get_recipe(&file, VersionId(0)).unwrap();
        assert_eq!(loaded, recipe);
        let index = storage.get_recipe_index(&file, VersionId(0)).unwrap();
        assert_eq!(index.entries.len(), 10, "rate 1 samples everything");
    }

    #[test]
    fn lru_map_eviction_order() {
        let mut lru: LruMap<u32, &str> = LruMap::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.get(&1); // 1 becomes most recent
        lru.insert(3, "c"); // evicts 2
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
        assert!(lru.contains(&3));
        assert_eq!(lru.len(), 2);
        let mru: Vec<u32> = lru.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(mru, vec![3, 1]);
    }
}
