//! Sparse Indexing (Lillibridge et al., FAST'09).
//!
//! Inline dedup with a *sampled* in-memory index: only chunks whose
//! fingerprint satisfies `fp mod R == 0` (the *hooks*) are indexed, each
//! mapping to the manifests (segment recipes) that contain it. An incoming
//! segment votes with its hooks, loads the top-k *champion* manifests, and
//! dedups against their chunks — logical locality recovers the unsampled
//! duplicates. RAM stays tiny; dedup is near-exact.

use std::collections::HashMap;
use std::time::Instant;

use slim_chunking::{chunk_all, Chunker};
use slim_lnode::StorageLayer;
use slim_types::codec::{Reader, Writer};
use slim_types::{ChunkRecord, FileId, Fingerprint, Result, SlimConfig, VersionId};

use crate::common::{persist_recipe, ContainerWriter, LruMap};
use crate::stats::BaselineBackupStats;

/// Champions loaded per segment.
const CHAMPIONS: usize = 2;
/// Cap on manifest ids per hook (the paper caps posting lists).
const MAX_MANIFESTS_PER_HOOK: usize = 8;
/// Manifest cache capacity.
const MANIFEST_CACHE: usize = 32;

type Manifest = HashMap<Fingerprint, ChunkRecord>;

/// The Sparse Indexing deduplication system.
pub struct SparseIndexingSystem {
    storage: StorageLayer,
    config: SlimConfig,
    chunker: Box<dyn Chunker>,
    /// Hook fingerprint → manifests containing it.
    sparse_index: HashMap<Fingerprint, Vec<u64>>,
    cache: LruMap<u64, Manifest>,
    next_manifest_id: u64,
}

impl SparseIndexingSystem {
    /// A Sparse Indexing instance over the shared storage layer.
    pub fn new(storage: StorageLayer, config: SlimConfig, chunker: Box<dyn Chunker>) -> Self {
        SparseIndexingSystem {
            storage,
            config,
            chunker,
            sparse_index: HashMap::new(),
            cache: LruMap::new(MANIFEST_CACHE),
            next_manifest_id: 0,
        }
    }

    fn manifest_key(id: u64) -> String {
        format!("sparse-indexing/manifests/{id:012}")
    }

    fn persist_manifest(&mut self, records: &[ChunkRecord]) -> Result<u64> {
        let id = self.next_manifest_id;
        self.next_manifest_id += 1;
        let mut w = Writer::new();
        w.u32(records.len() as u32);
        for rec in records {
            w.fingerprint(&rec.fp);
            w.u64(rec.container_id.0);
            w.u32(rec.size);
        }
        self.storage
            .oss()
            .put(&Self::manifest_key(id), w.freeze())?;
        let manifest: Manifest = records
            .iter()
            .map(|r| (r.fp, ChunkRecord::new(r.fp, r.container_id, r.size, 0)))
            .collect();
        self.cache.insert(id, manifest);
        Ok(id)
    }

    fn load_manifest(&mut self, id: u64, stats: &mut BaselineBackupStats) -> Result<()> {
        if self.cache.contains(&id) {
            return Ok(());
        }
        stats.index_fetches += 1;
        let buf = self.storage.oss().get(&Self::manifest_key(id))?;
        let mut r = Reader::new(&buf, "sparse-indexing manifest");
        let n = r.u32()? as usize;
        let mut manifest = HashMap::with_capacity(n);
        for _ in 0..n {
            let fp = r.fingerprint()?;
            let container = slim_types::ContainerId(r.u64()?);
            let size = r.u32()?;
            manifest.insert(fp, ChunkRecord::new(fp, container, size, 0));
        }
        r.finish()?;
        self.cache.insert(id, manifest);
        Ok(())
    }

    /// Pick the champion manifests for a segment by hook votes.
    fn champions(&self, hooks: &[Fingerprint]) -> Vec<u64> {
        let mut votes: HashMap<u64, usize> = HashMap::new();
        for hook in hooks {
            if let Some(ids) = self.sparse_index.get(hook) {
                for &id in ids {
                    *votes.entry(id).or_default() += 1;
                }
            }
        }
        let mut ranked: Vec<(u64, usize)> = votes.into_iter().collect();
        // Most votes first; newest manifest breaks ties.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        ranked
            .into_iter()
            .take(CHAMPIONS)
            .map(|(id, _)| id)
            .collect()
    }

    /// Back up one file.
    pub fn backup_file(
        &mut self,
        file: &FileId,
        version: VersionId,
        data: &[u8],
    ) -> Result<BaselineBackupStats> {
        let start = Instant::now();
        let mut stats = BaselineBackupStats {
            logical_bytes: data.len() as u64,
            ..Default::default()
        };
        let chunks = chunk_all(self.chunker.as_ref(), data);
        let mut writer = ContainerWriter::new(self.storage.clone(), self.config.container_capacity);
        let mut records: Vec<ChunkRecord> = Vec::with_capacity(chunks.len());

        for segment in chunks.chunks(self.config.segment_chunks.max(1)) {
            let hooks: Vec<Fingerprint> = segment
                .iter()
                .map(|c| c.fp)
                .filter(|fp| fp.is_sample(self.config.sample_rate))
                .collect();
            let champions = self.champions(&hooks);
            for id in &champions {
                self.load_manifest(*id, &mut stats)?;
            }
            let mut seg_records = Vec::with_capacity(segment.len());
            for chunk in segment {
                stats.chunks += 1;
                let mut found = None;
                for id in &champions {
                    if let Some(manifest) = self.cache.get(id) {
                        if let Some(rec) = manifest.get(&chunk.fp) {
                            found = Some(*rec);
                            break;
                        }
                    }
                }
                let rec = match found {
                    Some(hit) => {
                        stats.duplicates += 1;
                        ChunkRecord::new(chunk.fp, hit.container_id, hit.size, 0)
                    }
                    None => {
                        let container = writer.push(chunk.fp, chunk.slice(data))?;
                        ChunkRecord::new(chunk.fp, container, chunk.len() as u32, 0)
                    }
                };
                seg_records.push(rec);
            }
            // Persist the new manifest and register its hooks.
            let manifest_id = self.persist_manifest(&seg_records)?;
            for hook in hooks {
                let ids = self.sparse_index.entry(hook).or_default();
                ids.push(manifest_id);
                if ids.len() > MAX_MANIFESTS_PER_HOOK {
                    ids.remove(0);
                }
            }
            records.extend(seg_records);
        }
        writer.seal()?;
        stats.stored_bytes = writer.stored_bytes;
        persist_recipe(
            &self.storage,
            file,
            version,
            records,
            self.config.segment_chunks,
            self.config.sample_rate,
        )?;
        stats.wall_time = start.elapsed();
        Ok(stats)
    }

    /// Entries in the in-memory sparse index (RAM footprint metric).
    pub fn index_entries(&self) -> usize {
        self.sparse_index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_chunking::{ChunkSpec, FastCdcChunker};
    use slim_lnode::restore::{RestoreEngine, RestoreOptions};
    use slim_oss::Oss;
    use std::sync::Arc;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    fn make_system() -> (StorageLayer, SparseIndexingSystem, SlimConfig) {
        let storage = StorageLayer::open(Arc::new(Oss::in_memory()));
        let config = SlimConfig::small_for_tests();
        let chunker = Box::new(FastCdcChunker::new(ChunkSpec::from_config(&config)));
        (
            storage.clone(),
            SparseIndexingSystem::new(storage, config.clone(), chunker),
            config,
        )
    }

    #[test]
    fn identical_version_dedups_near_exactly() {
        let (_s, mut sys, _c) = make_system();
        let file = FileId::new("f");
        let input = data(1, 60_000);
        sys.backup_file(&file, VersionId(0), &input).unwrap();
        let s = sys.backup_file(&file, VersionId(1), &input).unwrap();
        assert!(s.dedup_ratio() > 0.9, "ratio {}", s.dedup_ratio());
        assert!(sys.index_entries() > 0);
        assert!(
            sys.index_entries() < s.chunks as usize,
            "index must be sparse: {} entries for {} chunks",
            sys.index_entries(),
            s.chunks
        );
    }

    #[test]
    fn mutated_version_still_dedups_via_champions() {
        let (_s, mut sys, _c) = make_system();
        let file = FileId::new("f");
        let input = data(2, 80_000);
        sys.backup_file(&file, VersionId(0), &input).unwrap();
        let mut mutated = input.clone();
        mutated[40_000..40_400].copy_from_slice(&data(7, 400));
        let s = sys.backup_file(&file, VersionId(1), &mutated).unwrap();
        assert!(s.dedup_ratio() > 0.8, "ratio {}", s.dedup_ratio());
        assert!(s.index_fetches > 0, "champions must be fetched");
    }

    #[test]
    fn restores_through_common_format() {
        let (storage, mut sys, cfg) = make_system();
        let file = FileId::new("f");
        let input = data(3, 50_000);
        sys.backup_file(&file, VersionId(0), &input).unwrap();
        sys.backup_file(&file, VersionId(1), &input).unwrap();
        let engine = RestoreEngine::new(&storage, None);
        let opts = RestoreOptions::from_config(&cfg);
        assert_eq!(
            engine.restore_file(&file, VersionId(1), &opts).unwrap().0,
            input
        );
    }

    #[test]
    fn hook_posting_lists_are_capped() {
        let (_s, mut sys, _c) = make_system();
        let file = FileId::new("f");
        let input = data(4, 30_000);
        for v in 0..12u64 {
            sys.backup_file(&file, VersionId(v), &input).unwrap();
        }
        let max_postings = sys
            .sparse_index
            .values()
            .map(|v| v.len())
            .max()
            .unwrap_or(0);
        assert!(max_postings <= MAX_MANIFESTS_PER_HOOK);
    }
}
