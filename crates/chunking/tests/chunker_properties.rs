//! Property tests of the chunking substrate: every chunker must tile any
//! input, respect its size bounds, agree with its own boundary probe, be
//! deterministic, and (for CDC) realign after prefix shifts.

use proptest::prelude::*;
use slim_chunking::{chunk_all, ChunkSpec, Chunker, FastCdcChunker, GearChunker, RabinChunker};

fn chunkers() -> Vec<(&'static str, Box<dyn Chunker>)> {
    let spec = ChunkSpec::new(64, 256, 1024);
    vec![
        ("rabin", Box::new(RabinChunker::new(spec))),
        ("gear", Box::new(GearChunker::new(spec))),
        ("fastcdc", Box::new(FastCdcChunker::new(spec))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunks_tile_and_respect_bounds(data in proptest::collection::vec(any::<u8>(), 0..40_000)) {
        for (name, chunker) in chunkers() {
            let spec = chunker.spec();
            let chunks = chunk_all(chunker.as_ref(), &data);
            if data.is_empty() {
                prop_assert!(chunks.is_empty());
                continue;
            }
            prop_assert_eq!(chunks[0].start, 0, "{}", name);
            prop_assert_eq!(chunks.last().unwrap().end, data.len(), "{}", name);
            for pair in chunks.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start, "{}: gap/overlap", name);
            }
            for (i, c) in chunks.iter().enumerate() {
                prop_assert!(c.len() <= spec.max, "{}: chunk over max", name);
                if i + 1 != chunks.len() {
                    prop_assert!(c.len() >= spec.min, "{}: interior chunk under min", name);
                }
                prop_assert!(
                    chunker.is_boundary(&data, c.start, c.end),
                    "{}: probe disagrees with scan at {}..{}",
                    name, c.start, c.end
                );
            }
        }
    }

    #[test]
    fn chunking_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        for (name, chunker) in chunkers() {
            let a = chunk_all(chunker.as_ref(), &data);
            let b = chunk_all(chunker.as_ref(), &data);
            prop_assert_eq!(a, b, "{}", name);
        }
    }

    #[test]
    fn cdc_realigns_after_prefix_shift(
        data in proptest::collection::vec(any::<u8>(), 8_000..24_000),
        prefix in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        // Content-defined boundaries deep in the buffer must survive a
        // prefix insertion (the boundary-shift resistance fixed-size
        // chunking lacks).
        for (name, chunker) in chunkers() {
            let base: std::collections::HashSet<usize> =
                chunk_all(chunker.as_ref(), &data).iter().map(|c| c.end).collect();
            let mut shifted = prefix.clone();
            shifted.extend_from_slice(&data);
            let realigned = chunk_all(chunker.as_ref(), &shifted)
                .iter()
                .filter(|c| c.end > prefix.len() + 2048)
                .filter(|c| base.contains(&(c.end - prefix.len())))
                .count();
            let deep_total = chunk_all(chunker.as_ref(), &shifted)
                .iter()
                .filter(|c| c.end > prefix.len() + 2048)
                .count();
            // Most deep boundaries realign (allow slack for probabilistic tails).
            prop_assert!(
                realigned * 2 >= deep_total,
                "{}: only {}/{} deep boundaries realigned",
                name, realigned, deep_total
            );
        }
    }

    #[test]
    fn identical_content_same_fingerprints(seed in any::<u64>(), len in 4_096usize..16_384) {
        // Duplicate high-entropy content: the second half's chunk
        // fingerprints must replay the first half's once boundaries realign.
        // (Seeded generation: degenerate low-entropy buffers make CDC fall
        // back to forced max-size cuts, where realignment is not expected.)
        let data = {
            use rand::{RngCore, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            buf
        };
        let chunker = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let mut doubled = data.clone();
        doubled.extend_from_slice(&data);
        let chunks = chunk_all(&chunker, &doubled);
        let first: std::collections::HashSet<_> = chunks
            .iter()
            .filter(|c| c.end <= data.len())
            .map(|c| c.fp)
            .collect();
        let second_hits = chunks
            .iter()
            .filter(|c| c.start >= data.len() + 1024)
            .filter(|c| first.contains(&c.fp))
            .count();
        let second_total = chunks.iter().filter(|c| c.start >= data.len() + 1024).count();
        prop_assert!(
            second_total == 0 || second_hits * 2 >= second_total,
            "only {second_hits}/{second_total} duplicate chunks matched"
        );
    }
}
