//! FastCDC content-defined chunking.
//!
//! FastCDC (Xia et al., ATC'16) combines three accelerations over plain
//! gear-based CDC:
//!
//! 1. **min-size skipping** — the scan starts at `start + min`, never
//!    hashing the bytes that cannot legally contain a cut;
//! 2. **normalized chunking** — a *harder* mask (more bits) before the
//!    target size and an *easier* mask after it, concentrating the chunk
//!    size distribution around the target;
//! 3. the cheap Gear hash.
//!
//! The probe semantics ([`Chunker::is_boundary`]) mirror the scan exactly:
//! which mask applies depends on the would-be chunk length.

use crate::gear::{gear_table, GEAR_WINDOW};
use crate::{ChunkSpec, Chunker};

/// Normalization level: the small mask has `log2(avg)+NC` bits, the large
/// mask `log2(avg)-NC` bits (FastCDC's recommended level is 2).
const NORMALIZATION: u32 = 2;

/// FastCDC chunker.
pub struct FastCdcChunker {
    spec: ChunkSpec,
    table: [u64; 256],
    mask_small: u64, // harder: applied before the normal point
    mask_large: u64, // easier: applied after the normal point
}

impl FastCdcChunker {
    /// Chunker with the given size bounds.
    pub fn new(spec: ChunkSpec) -> Self {
        let bits = spec.avg.trailing_zeros();
        let hard_bits = (bits + NORMALIZATION).min(48);
        let easy_bits = bits.saturating_sub(NORMALIZATION).max(1);
        // High-bit masks, like Gear: entropy concentrates in the high half.
        let mask_small = ((1u64 << hard_bits) - 1) << (60 - hard_bits);
        let mask_large = ((1u64 << easy_bits) - 1) << (60 - easy_bits);
        FastCdcChunker {
            spec,
            table: gear_table(),
            mask_small,
            mask_large,
        }
    }

    #[inline]
    fn mask_for(&self, len: usize) -> u64 {
        if len < self.spec.avg {
            self.mask_small
        } else {
            self.mask_large
        }
    }

    fn window_hash(&self, data: &[u8], start: usize, end: usize) -> u64 {
        let from = start.max(end.saturating_sub(GEAR_WINDOW));
        let mut h: u64 = 0;
        for &b in &data[from..end] {
            h = (h << 1).wrapping_add(self.table[b as usize]);
        }
        h
    }
}

impl Chunker for FastCdcChunker {
    fn spec(&self) -> ChunkSpec {
        self.spec
    }

    fn next_boundary(&self, data: &[u8], start: usize) -> usize {
        let remaining = data.len() - start;
        if remaining <= self.spec.min {
            return data.len();
        }
        let scan_end = (start + self.spec.max).min(data.len());
        let mut h: u64 = 0;
        let warm_from = start.max((start + self.spec.min).saturating_sub(GEAR_WINDOW));
        for &b in &data[warm_from..start + self.spec.min] {
            h = (h << 1).wrapping_add(self.table[b as usize]);
        }
        for pos in start + self.spec.min..scan_end {
            h = (h << 1).wrapping_add(self.table[data[pos] as usize]);
            let len = pos + 1 - start;
            if (h & self.mask_for(len)) == 0 {
                return pos + 1;
            }
        }
        scan_end
    }

    fn is_boundary(&self, data: &[u8], start: usize, end: usize) -> bool {
        debug_assert!(end > start && end <= data.len());
        let len = end - start;
        if len > self.spec.max {
            return false;
        }
        if len == self.spec.max || end == data.len() {
            return true;
        }
        if len < self.spec.min {
            return false;
        }
        (self.window_hash(data, start, end) & self.mask_for(len)) == 0
    }

    fn name(&self) -> &'static str {
        "fastcdc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_chunk_invariants, random_data};

    fn chunker() -> FastCdcChunker {
        FastCdcChunker::new(ChunkSpec::new(64, 256, 1024))
    }

    #[test]
    fn covers_buffer_and_respects_spec() {
        let c = chunker();
        for seed in 0..4 {
            check_chunk_invariants(&c, &random_data(64 * 1024, seed));
        }
    }

    #[test]
    fn normalized_chunking_tightens_distribution() {
        // FastCDC's size distribution should cluster near the target more
        // than plain gear: compare standard deviations.
        let data = random_data(1024 * 1024, 21);
        let sizes = |c: &dyn Chunker| {
            let mut v = Vec::new();
            let mut pos = 0;
            while pos < data.len() {
                let end = c.next_boundary(&data, pos);
                v.push((end - pos) as f64);
                pos = end;
            }
            v
        };
        let fast = sizes(&chunker());
        let gear = sizes(&crate::gear::GearChunker::new(ChunkSpec::new(
            64, 256, 1024,
        )));
        let sd = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(
            sd(&fast) < sd(&gear),
            "fastcdc sd {} !< gear sd {}",
            sd(&fast),
            sd(&gear)
        );
    }

    #[test]
    fn probe_agrees_with_scan() {
        let c = chunker();
        let data = random_data(200_000, 2);
        let mut pos = 0;
        while pos < data.len() {
            let end = c.next_boundary(&data, pos);
            assert!(c.is_boundary(&data, pos, end));
            pos = end;
        }
    }

    #[test]
    fn boundary_probe_rejects_oversize_and_undersize() {
        let c = chunker();
        let data = random_data(8192, 1);
        assert!(!c.is_boundary(&data, 0, 2048), "over max must be false");
        assert!(!c.is_boundary(&data, 0, 8), "below min must be false");
        assert!(c.is_boundary(&data, 0, 1024), "max-size cut is forced");
    }
}
