//! Fixed-size chunking.
//!
//! The simplest chunking strategy, kept as a baseline: it suffers from the
//! boundary-shift problem (§II) — a single inserted byte misaligns every
//! subsequent chunk — which the workload-generator tests demonstrate.

use crate::{ChunkSpec, Chunker};

/// Fixed-size chunker: every chunk is exactly `size` bytes (except the tail).
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Chunker cutting every `size` bytes.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        FixedChunker { size }
    }
}

impl Chunker for FixedChunker {
    fn spec(&self) -> ChunkSpec {
        ChunkSpec {
            min: self.size,
            avg: self.size.next_power_of_two(),
            max: self.size,
        }
    }

    fn next_boundary(&self, data: &[u8], start: usize) -> usize {
        (start + self.size).min(data.len())
    }

    fn is_boundary(&self, data: &[u8], start: usize, end: usize) -> bool {
        end - start == self.size || end == data.len()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_exact_multiples() {
        let c = FixedChunker::new(100);
        let data = vec![0u8; 350];
        assert_eq!(c.next_boundary(&data, 0), 100);
        assert_eq!(c.next_boundary(&data, 100), 200);
        assert_eq!(c.next_boundary(&data, 300), 350);
        assert!(c.is_boundary(&data, 0, 100));
        assert!(c.is_boundary(&data, 300, 350));
        assert!(!c.is_boundary(&data, 0, 99));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_size_rejected() {
        FixedChunker::new(0);
    }
}
