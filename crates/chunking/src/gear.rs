//! Gear-hash content-defined chunking.
//!
//! Gear (Xia et al., "Ddelta", Performance Evaluation 2014) replaces the
//! Rabin polynomial with `h = (h << 1) + GEAR[byte]`: one shift, one add and
//! one table lookup per byte. The hash depends on the last 64 bytes (older
//! bytes have shifted out of the word), so it behaves like a 64-byte sliding
//! window at a fraction of Rabin's cost.

use crate::{ChunkSpec, Chunker};

/// Effective window: a byte's influence is gone after 64 left-shifts.
pub const GEAR_WINDOW: usize = 64;

/// The 256 random gear constants, generated deterministically from SplitMix64
/// so every build of the library chunks identically.
pub(crate) fn gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state: u64 = 0x6c62_272e_07bb_0142;
    for slot in table.iter_mut() {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        *slot = slim_types::bloom::mix64(state);
    }
    table
}

/// Gear-hash CDC chunker.
pub struct GearChunker {
    spec: ChunkSpec,
    table: [u64; 256],
}

impl GearChunker {
    /// Chunker with the given size bounds.
    pub fn new(spec: ChunkSpec) -> Self {
        GearChunker {
            spec,
            table: gear_table(),
        }
    }

    #[inline]
    fn is_cut(&self, hash: u64) -> bool {
        // Use the high bits of the mask (gear hashes concentrate entropy in
        // high bits because of the left shift).
        (hash & (self.spec.mask() << 32)) == 0
    }

    fn window_hash(&self, data: &[u8], start: usize, end: usize) -> u64 {
        let from = start.max(end.saturating_sub(GEAR_WINDOW));
        let mut h: u64 = 0;
        for &b in &data[from..end] {
            h = (h << 1).wrapping_add(self.table[b as usize]);
        }
        h
    }
}

impl Chunker for GearChunker {
    fn spec(&self) -> ChunkSpec {
        self.spec
    }

    fn next_boundary(&self, data: &[u8], start: usize) -> usize {
        let remaining = data.len() - start;
        if remaining <= self.spec.min {
            return data.len();
        }
        let scan_end = (start + self.spec.max).min(data.len());
        let mut h: u64 = 0;
        let warm_from = start.max((start + self.spec.min).saturating_sub(GEAR_WINDOW));
        for &b in &data[warm_from..start + self.spec.min] {
            h = (h << 1).wrapping_add(self.table[b as usize]);
        }
        for pos in start + self.spec.min..scan_end {
            h = (h << 1).wrapping_add(self.table[data[pos] as usize]);
            if self.is_cut(h) {
                return pos + 1;
            }
        }
        scan_end
    }

    fn is_boundary(&self, data: &[u8], start: usize, end: usize) -> bool {
        debug_assert!(end > start && end <= data.len());
        let len = end - start;
        if len > self.spec.max {
            return false;
        }
        if len == self.spec.max || end == data.len() {
            return true;
        }
        if len < self.spec.min {
            return false;
        }
        self.is_cut(self.window_hash(data, start, end))
    }

    fn name(&self) -> &'static str {
        "gear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_chunk_invariants, random_data};

    fn chunker() -> GearChunker {
        GearChunker::new(ChunkSpec::new(64, 256, 1024))
    }

    #[test]
    fn covers_buffer_and_respects_spec() {
        let c = chunker();
        for seed in 0..4 {
            check_chunk_invariants(&c, &random_data(64 * 1024, seed));
        }
    }

    #[test]
    fn warm_window_consistency() {
        // The probe must agree with the scanner on every boundary.
        let c = chunker();
        let data = random_data(100_000, 5);
        let mut pos = 0;
        while pos < data.len() {
            let end = c.next_boundary(&data, pos);
            assert!(c.is_boundary(&data, pos, end), "disagreement at {end}");
            pos = end;
        }
    }

    #[test]
    fn average_near_target() {
        let c = chunker();
        let data = random_data(512 * 1024, 11);
        let mut count = 0;
        let mut pos = 0;
        while pos < data.len() {
            pos = c.next_boundary(&data, pos);
            count += 1;
        }
        let avg = data.len() / count;
        assert!((128..=640).contains(&avg), "avg {avg}");
    }

    #[test]
    fn zero_filled_data_still_progresses() {
        let c = chunker();
        let data = vec![0u8; 10_000];
        check_chunk_invariants(&c, &data);
    }
}
