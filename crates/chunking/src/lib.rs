//! Content-defined chunking and fingerprinting.
//!
//! Implements the chunking stage of the dedup workflow (§II, §IV-B of the
//! SLIMSTORE paper):
//!
//! * [`rabin::RabinChunker`] — the classic Rabin-fingerprint CDC of LBFS,
//!   deliberately faithful to its byte-by-byte polynomial arithmetic (it is
//!   the slow baseline of Fig 2/Fig 5);
//! * [`gear::GearChunker`] — Gear hash CDC (one shift + add + table lookup
//!   per byte);
//! * [`fastcdc::FastCdcChunker`] — FastCDC with normalized chunking (two
//!   masks around the target size) and min-size skipping;
//! * [`fixed::FixedChunker`] — fixed-size chunking (boundary-shift baseline);
//! * [`fp`] — SHA-1 chunk fingerprinting;
//! * [`sample`] — the `fp mod R == 0` representative-fingerprint sampling
//!   used by the similar-file index and recipe index.
//!
//! All chunkers implement [`Chunker`], which exposes both a scanning
//! `next_boundary` and a point probe `is_boundary`. The point probe is what
//! makes history-aware skip chunking possible: after skipping to a predicted
//! cut point the L-node re-checks the cut condition in O(window) instead of
//! rescanning every byte (§IV-B).

pub mod fastcdc;
pub mod fixed;
pub mod fp;
pub mod gear;
pub mod rabin;
pub mod sample;
pub mod stream;

pub use fastcdc::FastCdcChunker;
pub use fixed::FixedChunker;
pub use fp::fingerprint;
pub use gear::GearChunker;
pub use rabin::RabinChunker;
pub use stream::{boundaries, chunk_all, Boundaries, ChunkRef};

use slim_types::SlimConfig;

/// Size bounds shared by every chunker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpec {
    /// No cut point before this many bytes.
    pub min: usize,
    /// Target average chunk size (must be a power of two).
    pub avg: usize,
    /// Forced cut at this many bytes.
    pub max: usize,
}

impl ChunkSpec {
    /// Construct, clamping degenerate values.
    pub fn new(min: usize, avg: usize, max: usize) -> Self {
        let avg = avg.next_power_of_two().max(2);
        let min = min.clamp(1, avg);
        let max = max.max(avg);
        ChunkSpec { min, avg, max }
    }

    /// Spec from a [`SlimConfig`].
    pub fn from_config(cfg: &SlimConfig) -> Self {
        ChunkSpec::new(cfg.min_chunk_size, cfg.avg_chunk_size, cfg.max_chunk_size)
    }

    /// Mask with `log2(avg)` low bits set — the standard CDC cut mask giving
    /// an expected chunk size of `avg`.
    pub fn mask(&self) -> u64 {
        (self.avg as u64) - 1
    }
}

/// A content-defined (or fixed) chunking algorithm.
///
/// Chunkers are stateless and reentrant: every chunk scan starts with a fresh
/// hash state, so cut decisions depend only on the bytes since the chunk
/// start. That property is what makes skip-chunking verification sound.
pub trait Chunker: Send + Sync {
    /// The size bounds in force.
    fn spec(&self) -> ChunkSpec;

    /// Scan forward from `start` and return the end offset of the next chunk
    /// (exclusive). Always returns a value in
    /// `start+1 ..= min(start+max, data.len())`; returns `data.len()` when
    /// fewer than `min` bytes remain.
    fn next_boundary(&self, data: &[u8], start: usize) -> usize;

    /// Whether a chunk spanning `start..end` would be terminated at `end` by
    /// this chunker — either because the content hash meets the cut condition
    /// at `end`, because `end - start` equals the max chunk size, or because
    /// `end` is the end of the stream.
    ///
    /// This is the O(window) probe used by history-aware skip chunking.
    fn is_boundary(&self, data: &[u8], start: usize, end: usize) -> bool;

    /// Short algorithm name for reports ("rabin", "fastcdc", ...).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_util {
    use rand::{RngCore, SeedableRng};

    /// Deterministic pseudo-random buffer.
    pub fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }

    /// Assert the boundary list produced by a chunker is internally
    /// consistent with its spec and covers the whole buffer.
    pub fn check_chunk_invariants(chunker: &dyn super::Chunker, data: &[u8]) {
        let spec = chunker.spec();
        let mut pos = 0;
        while pos < data.len() {
            let end = chunker.next_boundary(data, pos);
            assert!(end > pos, "no progress at {pos}");
            let len = end - pos;
            assert!(len <= spec.max, "chunk of {len} exceeds max {}", spec.max);
            if end != data.len() {
                assert!(
                    len >= spec.min,
                    "interior chunk of {len} below min {}",
                    spec.min
                );
            }
            assert!(
                chunker.is_boundary(data, pos, end),
                "next_boundary returned {end} but is_boundary denies it (start {pos})"
            );
            pos = end;
        }
        assert_eq!(pos, data.len());
    }
}
