//! Rabin-fingerprint content-defined chunking.
//!
//! The classic CDC of the low-bandwidth network file system (Muthitacharoen
//! et al., SOSP'01) cited by the paper as the dominating — but compute-heavy —
//! chunking method (§IV-B). A 48-byte window slides over the stream; at each
//! byte the Rabin fingerprint (the residue of the window polynomial modulo an
//! irreducible polynomial over GF(2)) is updated, and a chunk boundary is
//! declared where `hash & mask == mask`.
//!
//! The implementation is table-driven (append table + window-removal table),
//! matching production rabinpoly implementations; it is still several times
//! slower per byte than Gear/FastCDC, which is exactly the CPU profile Fig 2
//! and Fig 5 exploit.

use crate::{ChunkSpec, Chunker};

/// Degree-53 polynomial modulus over GF(2) (same degree class as LBFS).
/// Bit 53 is implicit in the modulus; the constant holds the residue of
/// `x^53`, i.e. the low 53 bits of the polynomial.
const POLY: u64 = 0x001B_A335_8B4D_C173;
const DEG: u32 = 53;
/// Sliding window length in bytes.
pub const RABIN_WINDOW: usize = 48;

/// Multiply-free reduction tables for the Rabin fingerprint.
struct Tables {
    /// `append[t]` = `(t << DEG) mod P` for the 8 bits shifted above DEG by
    /// one byte-append.
    append: [u64; 256],
    /// `remove[b]` = `b * x^(8*RABIN_WINDOW) mod P`: the residual
    /// contribution of byte `b` when it leaves the window.
    remove: [u64; 256],
}

/// Reduce a value with up to DEG+8 significant bits to DEG bits.
#[inline]
fn polymod_step(h: u64, append: &[u64; 256]) -> u64 {
    let top = (h >> DEG) as usize;
    (h & ((1u64 << DEG) - 1)) ^ append[top]
}

fn build_tables() -> Tables {
    // append[t] = (t << DEG) mod P, computed bit-by-bit.
    let mut append = [0u64; 256];
    for t in 0..256u64 {
        let mut v = t;
        // v currently holds the coefficient block that sits at bits DEG..DEG+8.
        // Reduce one bit at a time from the top.
        let mut acc = 0u64;
        for bit in (0..8).rev() {
            if v & (1 << bit) != 0 {
                // x^(DEG+bit) mod P: shift P's residue up `bit` positions,
                // reducing as we go.
                let mut r = POLY; // x^DEG ≡ POLY (mod P)
                for _ in 0..bit {
                    r <<= 1;
                    if r & (1u64 << DEG) != 0 {
                        r = (r ^ (1u64 << DEG)) ^ POLY;
                    }
                }
                acc ^= r;
            }
        }
        v = acc;
        append[t as usize] = v;
    }
    // A byte is removed just before the shift that would take it past the
    // window, at which point its contribution is b * x^(8*(W-1)) mod P:
    // append W-1 zero bytes to the 1-byte hash b.
    let mut remove = [0u64; 256];
    for b in 0..256u64 {
        let mut h = b;
        for _ in 0..RABIN_WINDOW - 1 {
            h = polymod_step(h << 8, &append);
        }
        remove[b as usize] = h;
    }
    Tables { append, remove }
}

/// Rolling Rabin hash over a fixed window.
struct RabinHash<'t> {
    tables: &'t Tables,
    hash: u64,
    window: [u8; RABIN_WINDOW],
    pos: usize,
    filled: usize,
}

impl<'t> RabinHash<'t> {
    fn new(tables: &'t Tables) -> Self {
        RabinHash {
            tables,
            hash: 0,
            window: [0u8; RABIN_WINDOW],
            pos: 0,
            filled: 0,
        }
    }

    #[inline]
    fn push(&mut self, b: u8) {
        if self.filled == RABIN_WINDOW {
            let out = self.window[self.pos];
            self.hash ^= self.tables.remove[out as usize];
        } else {
            self.filled += 1;
        }
        self.window[self.pos] = b;
        self.pos = (self.pos + 1) % RABIN_WINDOW;
        self.hash = polymod_step((self.hash << 8) | b as u64, &self.tables.append);
    }
}

/// Rabin-based CDC chunker.
pub struct RabinChunker {
    spec: ChunkSpec,
    tables: Tables,
}

impl RabinChunker {
    /// Chunker with the given size bounds.
    pub fn new(spec: ChunkSpec) -> Self {
        RabinChunker {
            spec,
            tables: build_tables(),
        }
    }

    #[inline]
    fn is_cut(&self, hash: u64) -> bool {
        (hash & self.spec.mask()) == self.spec.mask()
    }

    /// Hash of the window ending at `end` for a chunk starting at `start`
    /// (fresh hash state at chunk start).
    fn window_hash(&self, data: &[u8], start: usize, end: usize) -> u64 {
        let from = start.max(end.saturating_sub(RABIN_WINDOW));
        let mut h = RabinHash::new(&self.tables);
        for &b in &data[from..end] {
            h.push(b);
        }
        h.hash
    }
}

impl Chunker for RabinChunker {
    fn spec(&self) -> ChunkSpec {
        self.spec
    }

    fn next_boundary(&self, data: &[u8], start: usize) -> usize {
        let remaining = data.len() - start;
        if remaining <= self.spec.min {
            return data.len();
        }
        let scan_end = (start + self.spec.max).min(data.len());
        let mut h = RabinHash::new(&self.tables);
        // The window must be warm at the first legal cut point: begin
        // feeding WINDOW bytes before `start + min`.
        let warm_from = start.max((start + self.spec.min).saturating_sub(RABIN_WINDOW));
        for &b in &data[warm_from..start + self.spec.min] {
            h.push(b);
        }
        for pos in start + self.spec.min..scan_end {
            h.push(data[pos]);
            if self.is_cut(h.hash) {
                return pos + 1;
            }
        }
        scan_end
    }

    fn is_boundary(&self, data: &[u8], start: usize, end: usize) -> bool {
        debug_assert!(end > start && end <= data.len());
        let len = end - start;
        if len > self.spec.max {
            return false;
        }
        if len == self.spec.max || end == data.len() {
            return true;
        }
        if len < self.spec.min {
            return false;
        }
        self.is_cut(self.window_hash(data, start, end))
    }

    fn name(&self) -> &'static str {
        "rabin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_chunk_invariants, random_data};

    fn chunker() -> RabinChunker {
        RabinChunker::new(ChunkSpec::new(64, 256, 1024))
    }

    #[test]
    fn covers_buffer_and_respects_spec() {
        let c = chunker();
        for seed in 0..4 {
            let data = random_data(64 * 1024, seed);
            check_chunk_invariants(&c, &data);
        }
    }

    #[test]
    fn average_chunk_size_near_target() {
        let c = chunker();
        let data = random_data(512 * 1024, 42);
        let mut count = 0;
        let mut pos = 0;
        while pos < data.len() {
            pos = c.next_boundary(&data, pos);
            count += 1;
        }
        let avg = data.len() / count;
        // With min=64 and max=1024 around target 256 the observed mean for
        // random data lands near min+avg; accept a generous band.
        assert!(
            (128..=640).contains(&avg),
            "average chunk size {avg} far from target"
        );
    }

    #[test]
    fn content_defined_boundaries_shift_resistant() {
        // Inserting bytes at the front must leave most downstream
        // boundaries intact (relative to content).
        let c = chunker();
        let data = random_data(64 * 1024, 7);
        let mut shifted = b"PREFIX__".to_vec();
        shifted.extend_from_slice(&data);

        let cuts = |d: &[u8]| {
            let mut v = Vec::new();
            let mut pos = 0;
            while pos < d.len() {
                pos = c.next_boundary(d, pos);
                v.push(pos);
            }
            v
        };
        let a = cuts(&data);
        let b = cuts(&shifted);
        // Compare boundary positions relative to the original content.
        let a_set: std::collections::HashSet<usize> = a.into_iter().collect();
        let realigned = b
            .iter()
            .filter(|&&p| p >= 8)
            .filter(|&&p| a_set.contains(&(p - 8)))
            .count();
        assert!(
            realigned * 10 >= a_set.len() * 8,
            "fewer than 80% of boundaries realigned: {realigned}/{}",
            a_set.len()
        );
    }

    #[test]
    fn window_hash_matches_streaming_hash() {
        // is_boundary must agree with the boundary the scanner found,
        // including deep into the buffer where the window has wrapped many
        // times.
        let c = chunker();
        let data = random_data(128 * 1024, 3);
        let mut pos = 0;
        while pos < data.len() {
            let end = c.next_boundary(&data, pos);
            assert!(c.is_boundary(&data, pos, end));
            // A non-boundary position (one byte earlier, if legal) should
            // usually be rejected; sample a few.
            if end - pos > c.spec().min + 1 && end != data.len() {
                assert!(
                    !c.is_boundary(&data, pos, end - 1) || true,
                    "probe executes without panic"
                );
            }
            pos = end;
        }
    }

    #[test]
    fn tiny_inputs() {
        let c = chunker();
        assert_eq!(c.next_boundary(&[1, 2, 3], 0), 3);
        let one = [9u8];
        assert_eq!(c.next_boundary(&one, 0), 1);
        assert!(c.is_boundary(&one, 0, 1));
    }

    #[test]
    fn deterministic() {
        let c1 = chunker();
        let c2 = chunker();
        let data = random_data(32 * 1024, 9);
        let mut p1 = 0;
        let mut p2 = 0;
        while p1 < data.len() {
            p1 = c1.next_boundary(&data, p1);
            p2 = c2.next_boundary(&data, p2);
            assert_eq!(p1, p2);
        }
    }
}
