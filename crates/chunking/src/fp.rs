//! SHA-1 chunk fingerprinting.
//!
//! The paper fingerprints chunks with a cryptographically secure hash so
//! collisions can be neglected (§II); we use SHA-1 via the RustCrypto
//! implementation (hardware-accelerated where available, which matters for
//! the CPU-time breakdown experiments of Fig 2/Fig 5(d)).

use sha1::{Digest, Sha1};
use slim_types::Fingerprint;

/// Fingerprint a chunk payload.
pub fn fingerprint(data: &[u8]) -> Fingerprint {
    let digest = Sha1::digest(data);
    Fingerprint::from_slice(&digest).expect("SHA-1 digest is 20 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard SHA-1 test vectors.
        assert_eq!(
            fingerprint(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            fingerprint(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            fingerprint(b"The quick brown fox jumps over the lazy dog").to_hex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn deterministic_and_distinguishing() {
        let a = fingerprint(b"hello world");
        let b = fingerprint(b"hello world");
        let c = fingerprint(b"hello worle");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
