//! Chunk streams: driving a [`Chunker`] over a buffer.

use slim_types::Fingerprint;

use crate::fp::fingerprint;
use crate::Chunker;

/// One chunk of an input buffer: its span and fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Start offset within the input.
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
    /// SHA-1 of `input[start..end]`.
    pub fp: Fingerprint,
}

impl ChunkRef {
    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk is empty (never true for chunker output).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The chunk's payload within `data`.
    pub fn slice<'d>(&self, data: &'d [u8]) -> &'d [u8] {
        &data[self.start..self.end]
    }
}

/// Chunk and fingerprint an entire buffer.
///
/// ```
/// use slim_chunking::{chunk_all, ChunkSpec, FastCdcChunker};
/// let chunker = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
/// let data = vec![7u8; 10_000];
/// let chunks = chunk_all(&chunker, &data);
/// assert_eq!(chunks.last().unwrap().end, data.len());
/// assert!(chunks.iter().all(|c| c.len() <= 1024));
/// ```
///
/// This is the *plain* CDC pipeline (no history awareness); the L-node's
/// dedup loop drives the chunker incrementally instead so it can interleave
/// skip chunking and superchunk probes.
pub fn chunk_all(chunker: &dyn Chunker, data: &[u8]) -> Vec<ChunkRef> {
    let mut out = Vec::with_capacity(data.len() / chunker.spec().avg + 1);
    let mut pos = 0;
    while pos < data.len() {
        let end = chunker.next_boundary(data, pos);
        out.push(ChunkRef {
            start: pos,
            end,
            fp: fingerprint(&data[pos..end]),
        });
        pos = end;
    }
    out
}

/// Lazy iterator over the plain-CDC cut spans of a buffer, *without*
/// fingerprinting. This is the feed stage of the parallel backup pipeline:
/// one thread walks boundaries (cheap rolling hash), a pool of workers
/// fingerprints the spans it emits. Yields `(start, end)` pairs that tile
/// `data` exactly like [`chunk_all`].
pub struct Boundaries<'a> {
    chunker: &'a dyn Chunker,
    data: &'a [u8],
    pos: usize,
}

/// Iterate the plain-CDC cut spans of `data`.
pub fn boundaries<'a>(chunker: &'a dyn Chunker, data: &'a [u8]) -> Boundaries<'a> {
    Boundaries {
        chunker,
        data,
        pos: 0,
    }
}

impl Iterator for Boundaries<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.pos >= self.data.len() {
            return None;
        }
        let start = self.pos;
        let end = self.chunker.next_boundary(self.data, start);
        self.pos = end;
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_data;
    use crate::{ChunkSpec, FastCdcChunker};

    #[test]
    fn chunks_tile_the_buffer() {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(50_000, 1);
        let chunks = chunk_all(&c, &data);
        assert!(!chunks.is_empty());
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, data.len());
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
        }
    }

    #[test]
    fn fingerprints_match_content() {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(10_000, 2);
        for ch in chunk_all(&c, &data) {
            assert_eq!(ch.fp, crate::fingerprint(ch.slice(&data)));
            assert!(!ch.is_empty());
            assert_eq!(ch.len(), ch.end - ch.start);
        }
    }

    #[test]
    fn identical_content_identical_fingerprints() {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(30_000, 3);
        let a = chunk_all(&c, &data);
        let b = chunk_all(&c, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        assert!(chunk_all(&c, &[]).is_empty());
    }

    #[test]
    fn boundaries_match_chunk_all() {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(40_000, 4);
        let spans: Vec<_> = boundaries(&c, &data).collect();
        let chunks = chunk_all(&c, &data);
        assert_eq!(spans.len(), chunks.len());
        for (span, ch) in spans.iter().zip(&chunks) {
            assert_eq!(*span, (ch.start, ch.end));
        }
        assert!(boundaries(&c, &[]).next().is_none());
    }
}
