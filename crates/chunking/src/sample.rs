//! Representative-fingerprint sampling.
//!
//! The paper samples representative fingerprints with the straightforward
//! `fp mod R == 0` rule (§IV-A Step 1) for two purposes: detecting similar
//! files via Broder's theorem, and building the per-segment recipe index.
//! For large files only the header chunks are sampled (Extreme-Binning
//! style), so a lookup never requires holding the whole file in memory.

use slim_types::Fingerprint;

use crate::stream::ChunkRef;

/// Fingerprints of `chunks` passing the `fp mod rate == 0` sample predicate.
pub fn sample_fingerprints(chunks: &[ChunkRef], rate: u64) -> Vec<Fingerprint> {
    chunks
        .iter()
        .filter(|c| c.fp.is_sample(rate))
        .map(|c| c.fp)
        .collect()
}

/// Representative fingerprints of a file for the similar-file index: sample
/// the first `header_chunks` chunks at `rate`, keeping at most `max_samples`.
///
/// Falls back to the first `max_samples` raw fingerprints when sampling
/// selects nothing (tiny files), so every non-empty file has at least one
/// representative.
pub fn file_representatives(
    chunks: &[ChunkRef],
    rate: u64,
    header_chunks: usize,
    max_samples: usize,
) -> Vec<Fingerprint> {
    let header = &chunks[..chunks.len().min(header_chunks)];
    let mut samples: Vec<Fingerprint> = header
        .iter()
        .filter(|c| c.fp.is_sample(rate))
        .map(|c| c.fp)
        .take(max_samples)
        .collect();
    if samples.is_empty() {
        samples = header.iter().map(|c| c.fp).take(max_samples).collect();
    }
    samples
}

/// Jaccard-style resemblance of two representative sets (|∩| / |∪|), the
/// quantity Broder's theorem relates to full-set similarity.
pub fn resemblance(a: &[Fingerprint], b: &[Fingerprint]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<_> = a.iter().collect();
    let sb: HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_data;
    use crate::{chunk_all, ChunkSpec, FastCdcChunker};

    fn chunks_of(seed: u64, len: usize) -> (Vec<u8>, Vec<ChunkRef>) {
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(len, seed);
        let chunks = chunk_all(&c, &data);
        (data, chunks)
    }

    #[test]
    fn sampling_selects_subset_consistently() {
        let (_, chunks) = chunks_of(1, 100_000);
        let s4 = sample_fingerprints(&chunks, 4);
        let s16 = sample_fingerprints(&chunks, 16);
        assert!(!s4.is_empty());
        assert!(s4.len() >= s16.len(), "higher rate samples fewer");
        for fp in &s16 {
            assert!(fp.is_sample(16));
        }
    }

    #[test]
    fn representatives_never_empty_for_nonempty_file() {
        let (_, chunks) = chunks_of(2, 2_000);
        // Absurdly high rate: mod-R sampling selects nothing, fallback kicks in.
        let reps = file_representatives(&chunks, u64::MAX, 64, 8);
        assert!(!reps.is_empty());
        assert!(reps.len() <= 8);
    }

    #[test]
    fn representatives_respect_header_limit() {
        let (_, chunks) = chunks_of(3, 200_000);
        let reps = file_representatives(&chunks, 1, 10, 1000);
        assert!(reps.len() <= 10, "sampled beyond header: {}", reps.len());
    }

    #[test]
    fn resemblance_of_identical_and_disjoint_sets() {
        let (_, chunks) = chunks_of(4, 50_000);
        let reps = file_representatives(&chunks, 4, 64, 32);
        assert_eq!(resemblance(&reps, &reps), 1.0);
        let (_, other) = chunks_of(99, 50_000);
        let other_reps = file_representatives(&other, 4, 64, 32);
        assert!(resemblance(&reps, &other_reps) < 0.1);
        assert_eq!(resemblance(&[], &[]), 0.0);
    }

    #[test]
    fn similar_files_have_high_resemblance() {
        // Same content with a small mutation: representative sets overlap.
        let c = FastCdcChunker::new(ChunkSpec::new(64, 256, 1024));
        let data = random_data(100_000, 5);
        let mut mutated = data.clone();
        mutated[50_000..50_100].fill(0xAB);
        let a = chunk_all(&c, &data);
        let b = chunk_all(&c, &mutated);
        let ra = file_representatives(&a, 4, usize::MAX, 1000);
        let rb = file_representatives(&b, 4, usize::MAX, 1000);
        assert!(
            resemblance(&ra, &rb) > 0.7,
            "similar files should resemble: {}",
            resemblance(&ra, &rb)
        );
    }
}
