//! Immutable snapshots with `merge` / `since` algebra and JSON codec.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{self, JsonError, JsonValue};
use crate::metric::{bucket_ceiling, BUCKETS};

/// Point-in-time copy of one histogram.
///
/// Invariant: when `count == 0`, `min == u64::MAX` and `max == 0`.
/// Keeping the empty `min` at `u64::MAX` (rather than a display-
/// friendly 0) is what makes [`merge`](HistogramSnapshot::merge)
/// associative and commutative with a plain `min(a, b)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Sum of all recorded values (wraps only after ~584 years of
    /// nanosecond-scale recording).
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Combine two snapshots as if all observations had been recorded
    /// into one histogram. Associative and commutative, with the empty
    /// snapshot as identity — so per-node snapshots can be folded in
    /// any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i] + other.buckets[i];
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Observations recorded between `earlier` and `self` (counts,
    /// sums, and buckets subtract saturating). `min`/`max` cannot be
    /// un-merged from cumulative extrema, so the delta keeps the later
    /// snapshot's values — correct whenever the interval actually
    /// recorded the extremes, and a documented approximation otherwise.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let count = self.count.saturating_sub(earlier.count);
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: if count == 0 { u64::MAX } else { self.min },
            max: if count == 0 { 0 } else { self.max },
            buckets,
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the ceiling
    /// of the bucket containing that rank, clamped into the observed
    /// `[min, max]` range. Monotone in `q` by construction, so
    /// `p50 <= p95 <= p99` always holds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return bucket_ceiling(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Total recorded time, interpreting values as nanoseconds.
    pub fn total_duration(&self) -> Duration {
        Duration::from_nanos(self.sum)
    }

    fn to_json_value(&self) -> JsonValue {
        // Trailing zero buckets are trimmed; the parser pads them back.
        let mut last = BUCKETS;
        while last > 0 && self.buckets[last - 1] == 0 {
            last -= 1;
        }
        let buckets = self.buckets[..last]
            .iter()
            .map(|&b| JsonValue::Int(b as i128))
            .collect();
        JsonValue::Object(vec![
            ("count".into(), JsonValue::Int(self.count as i128)),
            ("sum".into(), JsonValue::Int(self.sum as i128)),
            ("min".into(), JsonValue::Int(self.min as i128)),
            ("max".into(), JsonValue::Int(self.max as i128)),
            ("buckets".into(), JsonValue::Array(buckets)),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<HistogramSnapshot, JsonError> {
        let mut snap = HistogramSnapshot::default();
        snap.count = v.get_u64("count")?;
        snap.sum = v.get_u64("sum")?;
        snap.min = v.get_u64("min")?;
        snap.max = v.get_u64("max")?;
        let buckets = v.get_array("buckets")?;
        if buckets.len() > BUCKETS {
            return Err(JsonError::new("too many histogram buckets"));
        }
        for (i, b) in buckets.iter().enumerate() {
            snap.buckets[i] = b.as_u64()?;
        }
        Ok(snap)
    }
}

/// A point-in-time copy of every metric in a registry (or a delta /
/// merge of such copies). Keys are fully-qualified dotted names.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Counter value, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `0` when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Convenience accessor for the span histogram of `phase` under
    /// `scope`, i.e. `"<scope>.span.<phase>"`.
    pub fn span(&self, scope: &str, phase: &str) -> Option<&HistogramSnapshot> {
        self.histogram(&format!("{scope}.span.{phase}"))
    }

    /// Union of two snapshots: counters add, gauges take `other`'s
    /// value on key collisions (gauges are instantaneous, so "merge"
    /// of the same gauge from two sources has no natural sum), and
    /// histograms merge bucket-wise. With disjoint or identical-source
    /// keys this is associative; the empty snapshot is the identity.
    pub fn merge(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(existing) => existing.merge(v),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating, keyed on `self`'s entries);
    /// gauges keep the later instantaneous value. This is the single
    /// delta implementation used for per-backup OSS cost attribution.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::default();
        for (k, v) in &self.counters {
            out.counters
                .insert(k.clone(), v.saturating_sub(earlier.counter(k)));
        }
        out.gauges = self.gauges.clone();
        for (k, v) in &self.histograms {
            let delta = match earlier.histograms.get(k) {
                Some(e) => v.since(e),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), delta);
        }
        out
    }

    /// Serialize to a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Int(*v as i128)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Int(*v as i128)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        JsonValue::Object(vec![
            ("counters".into(), JsonValue::Object(counters)),
            ("gauges".into(), JsonValue::Object(gauges)),
            ("histograms".into(), JsonValue::Object(histograms)),
        ])
        .render()
    }

    /// Parse a snapshot previously produced by
    /// [`to_json`](TelemetrySnapshot::to_json).
    pub fn from_json(s: &str) -> Result<TelemetrySnapshot, JsonError> {
        let root = json::parse(s)?;
        let mut snap = TelemetrySnapshot::default();
        for (k, v) in root.get_object("counters")? {
            snap.counters.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in root.get_object("gauges")? {
            snap.gauges.insert(k.clone(), v.as_i64()?);
        }
        for (k, v) in root.get_object("histograms")? {
            snap.histograms
                .insert(k.clone(), HistogramSnapshot::from_json_value(v)?);
        }
        Ok(snap)
    }
}
