//! `slim-telemetry` — the unified observability layer for SlimStore.
//!
//! The crate provides three building blocks:
//!
//! * a lock-free metric [`Registry`] holding named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed latency [`Histogram`]s. Handles are
//!   cheap `Arc` clones, so the hot path (incrementing a counter per
//!   OSS request, recording a per-chunk latency) touches a single
//!   atomic and never takes the registry lock;
//! * hierarchical [`Span`] timers created through component
//!   [`Scope`]s (`oss`, `retry`, `lnode.<id>`, `gnode`, …) that record
//!   elapsed wall time into histograms named
//!   `<scope>.span.<phase>`, giving the per-phase cost breakdowns the
//!   paper's Fig 2 / Fig 5d / Fig 10c are built from;
//! * immutable [`TelemetrySnapshot`]s with `merge` / `since` algebra
//!   and a dependency-free JSON codec, so snapshots can be shipped
//!   from bench harnesses and the CLI, diffed per backup version, and
//!   aggregated across L-nodes.
//!
//! # Example
//!
//! ```
//! use slim_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let oss = registry.scope("oss");
//! let puts = oss.counter("put_requests");
//! puts.add(3);
//!
//! {
//!     let _span = oss.span("flush"); // records on drop
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("oss.put_requests"), 3);
//! assert_eq!(snap.histogram("oss.span.flush").unwrap().count, 1);
//! let round_trip = slim_telemetry::TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(round_trip, snap);
//! ```

mod json;
mod metric;
mod registry;
mod snapshot;
mod span;

pub use json::JsonError;
pub use metric::{bucket_ceiling, bucket_of, Counter, Gauge, Histogram, BUCKETS};
pub use registry::{Registry, Scope};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};
pub use span::Span;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = Registry::new();
        let c = registry.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns a handle to the same cell.
        assert_eq!(registry.counter("hits").get(), 5);

        let g = registry.gauge("depth");
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.gauge("depth"), 8);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn kind_collision_returns_detached_handle() {
        let registry = Registry::new();
        let c = registry.counter("x");
        c.add(2);
        // Asking for the same name as a different kind must not panic
        // and must not clobber the registered counter.
        let g = registry.gauge("x");
        g.set(99);
        let h = registry.histogram("x");
        h.record(1);
        assert_eq!(registry.snapshot().counter("x"), 2);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..=63u32 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i as usize, "low edge of bucket {i}");
            assert_eq!(bucket_of(hi), i as usize, "high edge of bucket {i}");
        }
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(1), 1);
        assert_eq!(bucket_ceiling(5), 31);
        assert_eq!(bucket_ceiling(64), u64::MAX);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::detached();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 221);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
        assert!(s.quantile(0.0) >= s.min);

        let empty = HistogramSnapshot::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.mean(), 0);
    }

    #[test]
    fn histogram_merge_is_associative_with_empty_identity() {
        let mk = |values: &[u64]| {
            let h = Histogram::detached();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[2, 1_000_000]);
        let c = mk(&[0, 0, 7]);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        let empty = HistogramSnapshot::default();
        assert_eq!(a.merge(&empty), a);
        assert_eq!(empty.merge(&a), a);
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count, 8);
        assert_eq!(all.min, 0);
        assert_eq!(all.max, 1_000_000);
    }

    #[test]
    fn histogram_since_recovers_interval() {
        let h = Histogram::detached();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(30);
        h.record(40);
        let after = h.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 70);
        // Buckets: 30 and 40 both land in bucket [32,64) except 30 in [16,32).
        assert_eq!(
            delta.buckets[bucket_of(30)] + delta.buckets[bucket_of(40)],
            2
        );
        // Identical snapshots produce an empty delta with the invariant intact.
        let zero = after.since(&after);
        assert!(zero.is_empty());
        assert_eq!(zero, HistogramSnapshot::default().merge(&zero));
        assert_eq!(zero.min, u64::MAX);
        assert_eq!(zero.max, 0);
    }

    #[test]
    fn scopes_prefix_names_and_nest() {
        let registry = Registry::new();
        let root = registry.scope("");
        root.counter("top").inc();
        let lnode = registry.scope("lnode").child("3");
        assert_eq!(lnode.prefix(), "lnode.3");
        lnode.counter("chunks").add(10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("top"), 1);
        assert_eq!(snap.counter("lnode.3.chunks"), 10);
    }

    #[test]
    fn spans_record_on_drop_finish_and_cancel() {
        let registry = Registry::new();
        let gnode = registry.scope("gnode");
        {
            let _cycle = gnode.span("cycle");
        }
        let elapsed = gnode.span("cycle").finish();
        let child = gnode.span("cycle").child("scc");
        assert_eq!(child.path(), "cycle.scc");
        drop(child);
        gnode.span("collect").cancel();
        gnode.record_span("collect", Duration::from_nanos(500));

        let snap = registry.snapshot();
        // Two dropped/finished cycle spans (the parent of `child` also
        // records when dropped — three total for "cycle").
        assert_eq!(snap.span("gnode", "cycle").unwrap().count, 3);
        assert_eq!(snap.span("gnode", "cycle.scc").unwrap().count, 1);
        // Cancelled span records nothing; record_span adds exactly one.
        let collect = snap.span("gnode", "collect").unwrap();
        assert_eq!(collect.count, 1);
        assert_eq!(collect.sum, 500);
        assert!(elapsed <= Duration::from_secs(1));
    }

    #[test]
    fn snapshot_merge_and_since() {
        let r1 = Registry::new();
        r1.counter("a").add(3);
        r1.gauge("g").set(5);
        r1.histogram("h").record(8);
        let r2 = Registry::new();
        r2.counter("a").add(4);
        r2.counter("b").inc();
        r2.histogram("h").record(16);

        let merged = r1.snapshot().merge(&r2.snapshot());
        assert_eq!(merged.counter("a"), 7);
        assert_eq!(merged.counter("b"), 1);
        assert_eq!(merged.gauge("g"), 5);
        assert_eq!(merged.histogram("h").unwrap().count, 2);

        let before = r1.snapshot();
        r1.counter("a").add(10);
        r1.histogram("h").record(32);
        r1.gauge("g").set(-2);
        let delta = r1.snapshot().since(&before);
        assert_eq!(delta.counter("a"), 10);
        assert_eq!(delta.gauge("g"), -2);
        assert_eq!(delta.histogram("h").unwrap().count, 1);
        assert_eq!(delta.histogram("h").unwrap().sum, 32);
    }

    #[test]
    fn json_round_trip_preserves_equality() {
        let registry = Registry::new();
        let scope = registry.scope("oss");
        scope.counter("get_requests").add(12);
        scope.counter("weird \"name\"\n").add(1);
        registry.gauge("rocks.memtable_bytes").set(-7);
        scope.histogram("latency").record(0);
        scope.histogram("latency").record(u64::MAX);
        // An empty histogram exercises the min == u64::MAX sentinel.
        registry.histogram("empty");

        let snap = registry.snapshot();
        let json = snap.to_json();
        let parsed = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snap);
        // Deterministic rendering: same snapshot, same string.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(TelemetrySnapshot::from_json("").is_err());
        assert!(TelemetrySnapshot::from_json("{").is_err());
        assert!(TelemetrySnapshot::from_json("[]").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\":{\"a\":1.5}}").is_err());
        assert!(TelemetrySnapshot::from_json(
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}} trailing"
        )
        .is_err());
        // Missing sections are an error (snapshots are self-contained).
        assert!(TelemetrySnapshot::from_json("{\"counters\":{}}").is_err());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let registry = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let registry = registry.clone();
                let barrier = barrier.clone();
                thread::spawn(move || {
                    // Half the threads race on registration of the same
                    // names; all race on the cells.
                    let c = registry.counter("shared");
                    let own = registry.counter(&format!("own.{t}"));
                    let h = registry.histogram("lat");
                    barrier.wait();
                    for i in 0..per_thread {
                        c.inc();
                        own.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("shared"), threads as u64 * per_thread);
        for t in 0..threads {
            assert_eq!(snap.counter(&format!("own.{t}")), per_thread);
        }
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, threads as u64 * per_thread);
        assert_eq!(lat.buckets.iter().sum::<u64>(), lat.count);
    }
}
