//! Hierarchical span timers.

use std::time::{Duration, Instant};

use crate::metric::Histogram;
use crate::registry::Scope;

/// A running phase timer.
///
/// Created via [`Scope::span`]; records its elapsed wall time (in
/// nanoseconds) into the histogram `"<scope>.span.<path>"` when
/// dropped or explicitly [`finish`](Span::finish)ed. Spans nest:
/// [`Span::child`] starts a sub-phase whose dotted path extends the
/// parent's, e.g. `gnode.span.cycle` → `gnode.span.cycle.reverse_dedup`.
#[derive(Debug)]
pub struct Span {
    scope: Scope,
    path: String,
    histogram: Histogram,
    start: Instant,
    finished: bool,
}

impl Span {
    pub(crate) fn start(scope: Scope, path: String) -> Self {
        let histogram = scope.span_histogram(&path);
        Span {
            scope,
            path,
            histogram,
            start: Instant::now(),
            finished: false,
        }
    }

    /// The dotted phase path relative to the owning scope.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Elapsed time so far, without stopping the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Start a sub-phase span `"<path>.<phase>"` under the same scope.
    pub fn child(&self, phase: &str) -> Span {
        Span::start(self.scope.clone(), format!("{}.{}", self.path, phase))
    }

    /// Stop the span now, record it, and return the elapsed time.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.histogram.record_duration(elapsed);
        self.finished = true;
        elapsed
    }

    /// Drop the span without recording anything (e.g. a phase that
    /// failed and should not pollute latency quantiles).
    pub fn cancel(mut self) {
        self.finished = true;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.histogram.record_duration(self.start.elapsed());
        }
    }
}
