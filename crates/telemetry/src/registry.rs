//! The metric registry and component scopes.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::TelemetrySnapshot;
use crate::span::Span;

#[derive(Clone, Debug)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A shared, concurrency-safe collection of named metrics.
///
/// The registry itself is only locked during registration (get-or-create
/// of a named instrument) and snapshotting; the returned handles update
/// atomics directly, so steady-state recording is lock-free.
///
/// Cloning a `Registry` yields another handle to the same underlying
/// metric set.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Arc<RwLock<BTreeMap<String, Entry>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Two handles are *the same registry* iff they share storage.
    pub fn same_registry(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Get or create the counter registered under `name`.
    ///
    /// If `name` is already registered as a different metric kind, a
    /// *detached* counter is returned instead: recording still works
    /// (the caller keeps a usable handle) but the values do not appear
    /// in snapshots. Telemetry never panics on a naming collision.
    pub fn counter(&self, name: &str) -> Counter {
        {
            let entries = self.entries.read().unwrap();
            match entries.get(name) {
                Some(Entry::Counter(c)) => return c.clone(),
                Some(_) => return Counter::detached(),
                None => {}
            }
        }
        let mut entries = self.entries.write().unwrap();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Counter::detached()))
        {
            Entry::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// Get or create the gauge registered under `name` (see
    /// [`Registry::counter`] for the collision policy).
    pub fn gauge(&self, name: &str) -> Gauge {
        {
            let entries = self.entries.read().unwrap();
            match entries.get(name) {
                Some(Entry::Gauge(g)) => return g.clone(),
                Some(_) => return Gauge::detached(),
                None => {}
            }
        }
        let mut entries = self.entries.write().unwrap();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Gauge::detached()))
        {
            Entry::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// Get or create the histogram registered under `name` (see
    /// [`Registry::counter`] for the collision policy).
    pub fn histogram(&self, name: &str) -> Histogram {
        {
            let entries = self.entries.read().unwrap();
            match entries.get(name) {
                Some(Entry::Histogram(h)) => return h.clone(),
                Some(_) => return Histogram::detached(),
                None => {}
            }
        }
        let mut entries = self.entries.write().unwrap();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Histogram::detached()))
        {
            Entry::Histogram(h) => h.clone(),
            _ => Histogram::detached(),
        }
    }

    /// Whether any metric is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().unwrap().contains_key(name)
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let entries = self.entries.read().unwrap();
        let mut snap = TelemetrySnapshot::default();
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Entry::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Entry::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// A view of the registry under a dotted name prefix; an empty
    /// prefix scopes to the registry root.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }
}

/// A component-scoped view of a [`Registry`].
///
/// All metric names created through a scope are prefixed with the
/// scope's dotted path (`oss`, `retry`, `lnode.3`, `gnode`, …), which
/// keeps naming consistent across components and lets snapshots be
/// filtered per component.
#[derive(Clone, Debug)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Child scope `"<prefix>.<name>"`.
    pub fn child(&self, name: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: self.full_name(name),
        }
    }

    /// The fully-qualified metric name for `name` under this scope.
    pub fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.full_name(name))
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.full_name(name))
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.full_name(name))
    }

    /// Start a span timer for a pipeline phase. The elapsed wall time
    /// is recorded (in nanoseconds) into the histogram
    /// `"<prefix>.span.<phase>"` when the span is dropped or
    /// [`Span::finish`]ed.
    pub fn span(&self, phase: &str) -> Span {
        Span::start(self.clone(), phase.to_string())
    }

    /// Record an externally-measured phase duration into the same
    /// histogram a [`Scope::span`] of that phase would use. This is
    /// how accumulated per-job timings (e.g. `BackupStats`' scattered
    /// chunking/fingerprint timers) are folded into the span taxonomy.
    pub fn record_span(&self, phase: &str, elapsed: Duration) {
        self.span_histogram(phase).record_duration(elapsed);
    }

    /// The histogram backing spans of `phase` under this scope.
    pub fn span_histogram(&self, phase: &str) -> crate::Histogram {
        self.registry
            .histogram(&format!("{}.{}", self.full_name("span"), phase))
    }
}
