//! Individual metric instruments: counters, gauges, and log-bucketed
//! histograms. All instruments are `Arc`-backed handles; cloning a
//! handle is cheap and every clone observes the same underlying cell.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::snapshot::HistogramSnapshot;

/// Number of histogram buckets: bucket `0` holds the value `0`,
/// bucket `i` (for `1 <= i <= 64`) holds values in `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value (see [`BUCKETS`]).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket, used when reporting quantiles.
#[inline]
pub fn bucket_ceiling(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry. Used as the fallback
    /// when a name is already registered under a different metric
    /// kind, and by metric holders that default to a private registry.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::detached()
    }
}

/// Signed instantaneous value (queue depths, cache sizes, table counts).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::detached()
    }
}

/// Lock-free histogram over power-of-two buckets.
///
/// Values are typically latencies in nanoseconds, but any `u64`
/// distribution (chunk sizes, batch lengths) fits. Relaxed atomics are
/// used throughout: a snapshot taken concurrently with writers is a
/// consistent-enough view (each cell individually up to date), which
/// is the usual contract for monitoring data.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record; see [`HistogramSnapshot::min`].
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    pub(crate) fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Handle to a histogram registered in a [`crate::Registry`].
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::detached()
    }
}
