//! Minimal dependency-free JSON codec for telemetry snapshots.
//!
//! Only the subset snapshots need is supported: objects, arrays,
//! strings, and *integer* numbers. Integers are carried as `i128` so
//! the full `u64` range (including the `u64::MAX` sentinel used for an
//! empty histogram's `min`) round-trips exactly — a float-based codec
//! would silently lose precision above 2^53.

use std::fmt;

/// Error produced while parsing or interpreting snapshot JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum JsonValue {
    Int(i128),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered; snapshot maps are `BTreeMap`s so rendering is
    /// deterministic.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn field(&self, key: &str) -> Result<&JsonValue, JsonError> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field {key:?}"))),
            _ => Err(JsonError::new(format!(
                "expected object while looking up {key:?}"
            ))),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::Int(i) => {
                u64::try_from(*i).map_err(|_| JsonError::new(format!("{i} out of u64 range")))
            }
            _ => Err(JsonError::new("expected integer")),
        }
    }

    pub(crate) fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            JsonValue::Int(i) => {
                i64::try_from(*i).map_err(|_| JsonError::new(format!("{i} out of i64 range")))
            }
            _ => Err(JsonError::new("expected integer")),
        }
    }

    pub(crate) fn get_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?.as_u64()
    }

    pub(crate) fn get_array(&self, key: &str) -> Result<&[JsonValue], JsonError> {
        match self.field(key)? {
            JsonValue::Array(items) => Ok(items),
            _ => Err(JsonError::new(format!("field {key:?} is not an array"))),
        }
    }

    pub(crate) fn get_object(&self, key: &str) -> Result<&[(String, JsonValue)], JsonError> {
        match self.field(key)? {
            JsonValue::Object(fields) => Ok(fields),
            _ => Err(JsonError::new(format!("field {key:?} is not an object"))),
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::new("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, JsonError> {
        let b = self
            .peek()
            .ok_or_else(|| JsonError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        let got = self.bump()?;
        if got != b {
            return Err(JsonError::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected character {:?}",
                other as char
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(JsonValue::Object(fields)),
                other => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(JsonValue::Array(items)),
                other => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain ASCII / UTF-8 bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| JsonError::new("invalid \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(JsonError::new(format!(
                            "invalid escape \\{:?}",
                            other as char
                        )))
                    }
                },
                _ => unreachable!("loop above stops only at quote or backslash"),
            }
        }
    }

    fn integer(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::new(
                "floating point numbers are not used in telemetry snapshots",
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(JsonValue::Int)
            .map_err(|_| JsonError::new(format!("invalid integer {text:?}")))
    }
}
