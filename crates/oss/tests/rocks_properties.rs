//! Property and concurrency tests of Rocks-OSS: random workloads must match
//! a BTreeMap model across flush/compaction/reopen, and concurrent readers
//! must never observe corruption while writers flush and compact.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use slim_oss::rocks::{RocksConfig, RocksOss};
use slim_oss::{ObjectStore, Oss};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u32),
    Delete(u16),
    Flush,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Put(k % 128, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 128)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let mut db = RocksOss::create(oss.clone(), "p/", RocksConfig::small_for_tests());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let val = v.to_be_bytes().to_vec();
                    db.put(&key, &val).unwrap();
                    model.insert(key, val);
                }
                Op::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    db.delete(&key).unwrap();
                    model.remove(&key);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    db.flush().unwrap();
                    db = RocksOss::open(oss.clone(), "p/", RocksConfig::small_for_tests()).unwrap();
                }
            }
        }
        // Full agreement with the model, including absent keys.
        for k in 0u16..128 {
            let key = k.to_be_bytes().to_vec();
            prop_assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned(), "key {}", k);
        }
        let scanned = db.scan_prefix(&[]).unwrap();
        prop_assert_eq!(scanned.len(), model.len());
    }
}

#[test]
fn concurrent_readers_with_flush_and_compaction() {
    let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
    let db = Arc::new(RocksOss::create(oss, "c/", RocksConfig::small_for_tests()));
    // Seed a stable key set readers will hammer.
    for k in 0u32..200 {
        db.put(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
    }
    db.flush().unwrap();

    std::thread::scope(|s| {
        // Writers: keep inserting fresh keys, forcing flushes + compactions.
        for w in 0..2 {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..400u32 {
                    let k = 1_000_000 + w * 10_000 + i;
                    db.put(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
                }
                db.compact().unwrap();
            });
        }
        // Readers: the seeded keys must always resolve to their values.
        for _ in 0..3 {
            let db = db.clone();
            s.spawn(move || {
                for round in 0..50u32 {
                    for k in 0u32..200 {
                        let got = db.get(&k.to_be_bytes()).unwrap();
                        assert_eq!(
                            got,
                            Some(k.to_le_bytes().to_vec()),
                            "key {k} corrupted in round {round}"
                        );
                    }
                }
            });
        }
    });
}
