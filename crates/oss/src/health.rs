//! Per-endpoint health scoring for the gray-failure resilience plane.
//!
//! A gray failure is an endpoint that still answers — just slowly, or with
//! an elevated error rate — so binary up/down checks never trip. The
//! [`HealthTracker`] keeps, per simulated endpoint, an exponentially
//! weighted moving average of observed request latency and of the error
//! rate, folds them into a single *score* (lower is healthier), and exposes
//! all three as `oss.health.<endpoint>.*` gauges. The hedging layer uses the
//! scores to route primaries to the healthiest endpoint, and the pooled
//! latency histogram to derive its hedge delay from a live quantile.
//!
//! All state is relaxed atomics: health is monitoring data, and a slightly
//! stale score only shifts which endpoint serves the *next* request — never
//! correctness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use slim_telemetry::{Gauge, Histogram, Scope};

/// EWMA smoothing: each sample moves the average by 1/8 of the distance.
const EWMA_SHIFT: u32 = 3;

struct EndpointHealth {
    /// Latency EWMA in nanoseconds (0 until the first sample).
    latency_ewma: AtomicU64,
    /// Error-rate EWMA in permille (0..=1000).
    error_permille: AtomicU64,
    ops: AtomicU64,
    latency_gauge: Gauge,
    error_gauge: Gauge,
    score_gauge: Gauge,
}

impl EndpointHealth {
    fn new(scope: Option<&Scope>, endpoint: usize) -> Self {
        let gauge = |name: &str| match scope {
            Some(scope) => scope.gauge(&format!("health.{endpoint}.{name}")),
            None => Gauge::detached(),
        };
        EndpointHealth {
            latency_ewma: AtomicU64::new(0),
            error_permille: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            latency_gauge: gauge("latency_ewma_nanos"),
            error_gauge: gauge("error_permille"),
            score_gauge: gauge("score"),
        }
    }

    fn fold(&self, cell: &AtomicU64, sample: u64) -> u64 {
        // Racy read-modify-write on purpose: a lost update skews the EWMA
        // by one sample, which monitoring tolerates; a CAS loop would put
        // contention on the hot read path.
        let old = cell.load(Ordering::Relaxed);
        let new = if self.ops.load(Ordering::Relaxed) == 0 {
            sample
        } else {
            (old - (old >> EWMA_SHIFT)).saturating_add(sample >> EWMA_SHIFT)
        };
        cell.store(new, Ordering::Relaxed);
        new
    }

    fn record(&self, latency: Duration, ok: bool) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let lat = self.fold(&self.latency_ewma, nanos);
        let err = self.fold(&self.error_permille, if ok { 0 } else { 1000 });
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.latency_gauge
            .set(i64::try_from(lat).unwrap_or(i64::MAX));
        self.error_gauge.set(err as i64);
        self.score_gauge
            .set(i64::try_from(score(lat, err)).unwrap_or(i64::MAX));
    }

    fn score(&self) -> u64 {
        score(
            self.latency_ewma.load(Ordering::Relaxed),
            self.error_permille.load(Ordering::Relaxed),
        )
    }
}

/// Latency EWMA inflated by the error rate: a fully erroring endpoint
/// scores 10× its latency, so sick-but-fast never outranks healthy-but-
/// ordinary. Lower is healthier.
fn score(latency_ewma_nanos: u64, error_permille: u64) -> u64 {
    let inflated =
        latency_ewma_nanos as u128 * (1000 + 9 * error_permille.min(1000) as u128) / 1000;
    u64::try_from(inflated).unwrap_or(u64::MAX)
}

/// Health state for a fixed set of endpoints plus the pooled latency
/// distribution the hedge delay is derived from.
pub struct HealthTracker {
    endpoints: Vec<EndpointHealth>,
    /// Pooled latency of *successful* primary-path requests across all
    /// endpoints; the hedge-delay quantile reads this.
    latency: Histogram,
    /// Cached hedge delay in nanos (0 = not yet computed / inactive),
    /// refreshed every [`HealthTracker::REFRESH_EVERY`] samples.
    cached_delay: AtomicU64,
    cached_generation: AtomicU64,
}

impl HealthTracker {
    const REFRESH_EVERY: u64 = 32;

    /// A tracker for `endpoints` endpoints with detached (unregistered)
    /// gauges.
    pub fn new(endpoints: usize) -> Self {
        HealthTracker::build(endpoints, None)
    }

    /// A tracker whose gauges live under `scope` (canonically `"oss"`,
    /// yielding `oss.health.<endpoint>.{latency_ewma_nanos,error_permille,
    /// score}`) and whose pooled latency histogram is
    /// `<scope>.health.latency_nanos`.
    pub fn with_telemetry(endpoints: usize, scope: &Scope) -> Self {
        HealthTracker::build(endpoints, Some(scope))
    }

    fn build(endpoints: usize, scope: Option<&Scope>) -> Self {
        let n = endpoints.max(1);
        HealthTracker {
            endpoints: (0..n).map(|i| EndpointHealth::new(scope, i)).collect(),
            latency: match scope {
                Some(scope) => scope.histogram("health.latency_nanos"),
                None => Histogram::detached(),
            },
            cached_delay: AtomicU64::new(0),
            cached_generation: AtomicU64::new(0),
        }
    }

    /// Number of endpoints tracked.
    pub fn endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Fold one observed request into an endpoint's health.
    pub fn record(&self, endpoint: usize, latency: Duration, ok: bool) {
        self.record_unpooled(endpoint, latency, ok);
        if ok {
            self.latency
                .record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Like [`HealthTracker::record`] but without pooling the latency into
    /// the hedge-delay distribution — for batched and write requests, whose
    /// durations are not comparable to a single read.
    pub fn record_unpooled(&self, endpoint: usize, latency: Duration, ok: bool) {
        if let Some(ep) = self.endpoints.get(endpoint) {
            ep.record(latency, ok);
        }
    }

    /// Samples folded into endpoint `endpoint` so far.
    pub fn observations(&self, endpoint: usize) -> u64 {
        self.endpoints
            .get(endpoint)
            .map_or(0, |ep| ep.ops.load(Ordering::Relaxed))
    }

    /// Current score of one endpoint (lower is healthier).
    pub fn score(&self, endpoint: usize) -> u64 {
        self.endpoints
            .get(endpoint)
            .map_or(u64::MAX, |ep| ep.score())
    }

    /// Endpoints ordered healthiest-first. Ties break deterministically on
    /// the lower index, so a fresh tracker (all scores zero) always ranks
    /// `0, 1, 2, …` — no hidden randomness in routing.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.endpoints.len()).collect();
        order.sort_by_key(|&i| (self.endpoints[i].score(), i));
        order
    }

    /// The healthiest endpoint satisfying `admitted`, if any.
    pub fn healthiest(&self, admitted: impl Fn(usize) -> bool) -> Option<usize> {
        self.ranked().into_iter().find(|&i| admitted(i))
    }

    /// The hedge delay derived from the pooled latency distribution: the
    /// `quantile` latency clamped to `[min, max]`. Returns `None` until
    /// `min_observations` successful requests have been pooled or while the
    /// quantile sits below `activation_floor` — on a fast store, hedging
    /// would only add load, so the plane stays inert. The quantile is
    /// recomputed every 32 samples and cached in between.
    pub fn hedge_delay(
        &self,
        quantile: f64,
        min: Duration,
        max: Duration,
        min_observations: u64,
        activation_floor: Duration,
    ) -> Option<Duration> {
        let snap = self.latency.snapshot();
        if snap.count < min_observations {
            return None;
        }
        let generation = snap.count / HealthTracker::REFRESH_EVERY;
        if self.cached_generation.swap(generation, Ordering::Relaxed) != generation
            || self.cached_delay.load(Ordering::Relaxed) == 0
        {
            let q = snap.quantile(quantile);
            let delay = if (q as u128) < activation_floor.as_nanos() {
                0 // inactive sentinel: distribution too fast to hedge
            } else {
                q.clamp(
                    u64::try_from(min.as_nanos()).unwrap_or(u64::MAX),
                    u64::try_from(max.as_nanos()).unwrap_or(u64::MAX),
                )
            };
            self.cached_delay.store(delay, Ordering::Relaxed);
        }
        match self.cached_delay.load(Ordering::Relaxed) {
            0 => None,
            nanos => Some(Duration::from_nanos(nanos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_rank_slow_and_erroring_endpoints_worse() {
        let t = HealthTracker::new(3);
        for _ in 0..64 {
            t.record(0, Duration::from_micros(100), true);
            t.record(1, Duration::from_micros(900), true);
            t.record(2, Duration::from_micros(100), false);
        }
        assert!(t.score(0) < t.score(1), "slow endpoint scores worse");
        assert!(t.score(0) < t.score(2), "erroring endpoint scores worse");
        assert_eq!(t.ranked()[0], 0);
        assert_eq!(t.healthiest(|_| true), Some(0));
        assert_eq!(t.healthiest(|i| i != 0), Some(t.ranked()[1]));
        assert_eq!(t.healthiest(|_| false), None);
        assert_eq!(t.observations(0), 64);
    }

    #[test]
    fn fresh_tracker_ranks_by_index() {
        let t = HealthTracker::new(4);
        assert_eq!(t.ranked(), vec![0, 1, 2, 3]);
        assert_eq!(t.healthiest(|i| i >= 2), Some(2));
    }

    #[test]
    fn hedge_delay_needs_observations_and_a_slow_quantile() {
        let t = HealthTracker::new(2);
        let delay = |t: &HealthTracker| {
            t.hedge_delay(
                0.95,
                Duration::from_micros(50),
                Duration::from_millis(10),
                32,
                Duration::from_micros(200),
            )
        };
        assert_eq!(delay(&t), None, "no data yet");
        for _ in 0..64 {
            t.record(0, Duration::from_micros(10), true);
        }
        assert_eq!(delay(&t), None, "fast store stays below activation floor");
        let t = HealthTracker::new(2);
        for _ in 0..64 {
            t.record(0, Duration::from_millis(1), true);
        }
        let d = delay(&t).expect("slow store activates hedging");
        assert!(d >= Duration::from_micros(50) && d <= Duration::from_millis(10));
    }

    #[test]
    fn failed_requests_do_not_pollute_the_latency_pool() {
        let t = HealthTracker::new(1);
        for _ in 0..64 {
            t.record(0, Duration::from_secs(5), false);
        }
        assert_eq!(
            t.hedge_delay(
                0.95,
                Duration::ZERO,
                Duration::from_secs(10),
                1,
                Duration::ZERO,
            ),
            None,
            "only successes feed the hedge-delay quantile"
        );
    }

    #[test]
    fn telemetry_gauges_reflect_health() {
        let registry = slim_telemetry::Registry::new();
        let t = HealthTracker::with_telemetry(2, &registry.scope("oss"));
        t.record(1, Duration::from_micros(500), true);
        let snap = registry.snapshot();
        assert!(snap.gauges["oss.health.1.latency_ewma_nanos"] > 0);
        assert_eq!(snap.gauges["oss.health.1.error_permille"], 0);
        assert!(snap.gauges.contains_key("oss.health.0.score"));
        assert_eq!(snap.histograms["oss.health.latency_nanos"].count, 1);
    }
}
