//! Retrying object-store wrapper.
//!
//! Real object stores fail transiently (5xx, throttling, slow requests);
//! SLIMSTORE's L-nodes are stateless, so the OSS client is the single place
//! where those failures must be absorbed. [`RetryingStore`] wraps any
//! [`ObjectStore`] and re-issues operations that fail with a retryable
//! [`SlimError`] (see [`SlimError::is_retryable`]) under a [`RetryPolicy`]:
//! exponential backoff, deterministic jitter (seeded, so chaos tests are
//! replayable), an attempt budget, and an optional wall-clock deadline.
//!
//! Non-retryable errors (missing objects, corruption, injected hard faults)
//! pass through unchanged on the first attempt. When the budget is exhausted
//! the wrapper reports [`SlimError::Timeout`] carrying the operation, the
//! attempt count, and the last underlying error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use slim_telemetry::{Counter, Histogram, Registry, Scope};
use slim_types::{Deadline, Result, SlimError};

use crate::fault::{splitmix64, unit_f64};
use crate::metrics::MetricsSnapshot;
use crate::store::ObjectStore;

/// Backoff/budget parameters of a [`RetryingStore`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum total attempts per operation (first try included). Zero is
    /// treated as one.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on a single backoff step.
    pub max_delay: Duration,
    /// Optional wall-clock budget per operation, covering all attempts and
    /// backoff. When the next backoff would cross it, the store gives up.
    pub deadline: Option<Duration>,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(30)),
            jitter_seed: 0x51e5_7041,
        }
    }
}

impl RetryPolicy {
    /// This policy with its jitter stream re-seeded by `salt`, so several
    /// wrapper instances built from one config draw *distinct* (still
    /// deterministic) jitter sequences and never back off in lockstep.
    pub fn salted(mut self, salt: u64) -> Self {
        self.jitter_seed = splitmix64(self.jitter_seed ^ salt);
        self
    }

    /// A policy that retries without sleeping — for tests, where the fault
    /// schedule (not wall time) is the variable under study.
    pub fn no_delay(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            deadline: None,
            jitter_seed: 0,
        }
    }

    /// Backoff before retry number `retry` (1-based): exponential growth
    /// capped at `max_delay`, scaled by a deterministic jitter factor in
    /// `[0.5, 1.0)` drawn from `jitter_seed` and the retry ordinal.
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(32);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_delay);
        let jitter = 0.5 + 0.5 * unit_f64(splitmix64(self.jitter_seed.wrapping_add(retry as u64)));
        raw.mul_f64(jitter)
    }
}

/// A process-wide salt source for [`RetryPolicy::salted`]: each call yields
/// a fresh ordinal, so every retry wrapper a builder wires gets its own
/// jitter stream while replays of the whole process stay deterministic.
pub fn next_jitter_salt() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Retry counters of a [`RetryingStore`], shared across clones.
///
/// Registry-backed since PR 2: construct with [`RetryMetrics::new`] to
/// expose the counters under a shared telemetry scope (canonically
/// `"retry"`); the `Default` instance registers in a private registry.
#[derive(Debug, Clone)]
pub struct RetryMetrics {
    /// Attempts issued to the inner store (successes and failures).
    pub attempts: Counter,
    /// Re-issued operations (attempts beyond the first per operation).
    pub retries: Counter,
    /// Operations abandoned after exhausting the attempt/deadline budget.
    pub giveups: Counter,
    /// Nanoseconds spent sleeping in backoff.
    pub backoff_nanos: Counter,
    /// Payload bytes re-uploaded by retried PUT attempts. Attributed here —
    /// never to the inner store's `bytes_written` — so transient faults do
    /// not inflate the dedup-cost byte counters the paper's figures report.
    pub retry_bytes: Counter,
    /// Distribution of individual backoff sleeps. Named `backoff_wait_nanos`
    /// (not `backoff_nanos`) because the registry keeps one name per metric
    /// kind and `backoff_nanos` is already the cumulative counter above.
    pub backoff_wait: Histogram,
}

impl RetryMetrics {
    /// Register (or re-attach to) the retry counters under `scope`.
    pub fn new(scope: &Scope) -> Self {
        RetryMetrics {
            attempts: scope.counter("attempts"),
            retries: scope.counter("retries"),
            giveups: scope.counter("giveups"),
            backoff_nanos: scope.counter("backoff_nanos"),
            retry_bytes: scope.counter("retry_bytes"),
            backoff_wait: scope.histogram("backoff_wait_nanos"),
        }
    }

    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    pub fn giveups(&self) -> u64 {
        self.giveups.get()
    }

    pub fn attempts(&self) -> u64 {
        self.attempts.get()
    }

    pub fn retry_bytes(&self) -> u64 {
        self.retry_bytes.get()
    }

    pub fn backoff_time(&self) -> Duration {
        Duration::from_nanos(self.backoff_nanos.get())
    }
}

impl Default for RetryMetrics {
    fn default() -> Self {
        RetryMetrics::new(&Registry::new().scope("retry"))
    }
}

/// An [`ObjectStore`] decorator that retries retryable failures.
///
/// Composes with every other store in the crate: wrap a bare [`crate::Oss`],
/// a [`crate::NamespacedStore`], or a [`crate::LocalDiskOss`]; or wrap the
/// retrying store itself in a namespace. Cheap to clone (shared handle).
///
/// ```
/// use std::sync::Arc;
/// use slim_oss::{ObjectStore, Oss, RetryPolicy, RetryingStore};
/// let oss = Oss::in_memory();
/// let store = RetryingStore::new(Arc::new(oss), RetryPolicy::default());
/// store.put("k", bytes::Bytes::from_static(b"v")).unwrap();
/// assert_eq!(store.metrics_snapshot().unwrap().retries, 0);
/// ```
#[derive(Clone)]
pub struct RetryingStore {
    inner: Arc<dyn ObjectStore>,
    policy: RetryPolicy,
    metrics: Arc<RetryMetrics>,
}

impl RetryingStore {
    pub fn new(inner: Arc<dyn ObjectStore>, policy: RetryPolicy) -> Self {
        RetryingStore {
            inner,
            policy,
            metrics: Arc::new(RetryMetrics::default()),
        }
    }

    /// Like [`RetryingStore::new`], but the retry counters are registered
    /// under `scope` (canonically a `"retry"` scope of the shared
    /// registry) instead of a private one.
    pub fn with_telemetry(inner: Arc<dyn ObjectStore>, policy: RetryPolicy, scope: &Scope) -> Self {
        RetryingStore {
            inner,
            policy,
            metrics: Arc::new(RetryMetrics::new(scope)),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn ObjectStore> {
        &self.inner
    }

    /// Live retry counters.
    pub fn retry_metrics(&self) -> &RetryMetrics {
        &self.metrics
    }

    /// Run `f` under the retry policy. `op` labels the operation in
    /// [`SlimError::Timeout`] reports. `upload_bytes` is the request
    /// payload size (non-zero only for PUT): every re-issued attempt
    /// sends the body again, and that re-upload volume is charged to
    /// `retry_bytes` rather than the inner store's byte counters.
    fn run<T>(
        &self,
        op: &str,
        key: &str,
        upload_bytes: u64,
        f: impl Fn() -> Result<T>,
    ) -> Result<T> {
        let start = Instant::now();
        let ambient = Deadline::current();
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            // Ambient request deadline already spent: give up without
            // issuing (another) attempt — the caller's budget is gone, so
            // any further OSS traffic is pure waste.
            if ambient.expired() {
                self.metrics.giveups.inc();
                return Err(SlimError::Timeout {
                    op: format!("{op} {key}"),
                    attempts: attempt,
                    last: "request deadline expired".into(),
                });
            }
            attempt += 1;
            self.metrics.attempts.inc();
            let err = match f() {
                Ok(value) => return Ok(value),
                Err(err) if err.is_retryable() => err,
                Err(err) => return Err(err),
            };
            let give_up = |last: &SlimError| SlimError::Timeout {
                op: format!("{op} {key}"),
                attempts: attempt,
                last: last.to_string(),
            };
            if attempt >= max_attempts {
                self.metrics.giveups.inc();
                return Err(give_up(&err));
            }
            let delay = self.policy.backoff(attempt);
            if let Some(deadline) = self.policy.deadline {
                if start.elapsed() + delay >= deadline {
                    self.metrics.giveups.inc();
                    return Err(give_up(&err));
                }
            }
            // Sleeping past the ambient deadline cannot help either: the
            // retry would start with the budget already gone.
            if ambient.would_exceed(delay) {
                self.metrics.giveups.inc();
                return Err(give_up(&err));
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
                self.metrics.backoff_nanos.add(delay.as_nanos() as u64);
                self.metrics.backoff_wait.record_duration(delay);
            }
            self.metrics.retries.inc();
            self.metrics.retry_bytes.add(upload_bytes);
        }
    }

    /// Run a batched operation under the retry policy with a *per-item*
    /// budget: each round re-issues only the still-retryable items as one
    /// batch to the inner store, so the fan-out below stays saturated while
    /// every item individually observes the sequential retry contract —
    /// non-retryable errors pass through on first sight, and an item that
    /// exhausts `max_attempts` (or the shared deadline) reports
    /// [`SlimError::Timeout`] with its own attempt count and last cause.
    /// Backoff is slept once per round, not once per pending item.
    fn run_many<I: Clone, T>(
        &self,
        op: &str,
        items: &[I],
        key_of: impl Fn(&I) -> &str,
        f: impl Fn(&[I]) -> Vec<Result<T>>,
    ) -> Vec<Result<T>> {
        let start = Instant::now();
        let ambient = Deadline::current();
        let max_attempts = self.policy.max_attempts.max(1);
        let n = items.len();
        let mut out: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut last_err: Vec<Option<SlimError>> = (0..n).map(|_| None).collect();
        let mut attempt = 0u32;
        while !pending.is_empty() {
            // Ambient request deadline exhausted: resolve every still-
            // pending item without issuing another batch.
            if ambient.expired() {
                for &i in &pending {
                    self.metrics.giveups.inc();
                    let last = last_err[i]
                        .take()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "request deadline expired".into());
                    out[i] = Some(Err(SlimError::Timeout {
                        op: format!("{op} {}", key_of(&items[i])),
                        attempts: attempt,
                        last,
                    }));
                }
                break;
            }
            attempt += 1;
            let batch: Vec<I> = pending.iter().map(|&i| items[i].clone()).collect();
            self.metrics.attempts.add(batch.len() as u64);
            let results = f(&batch);
            debug_assert_eq!(results.len(), batch.len());
            let mut still = Vec::new();
            for (result, &i) in results.into_iter().zip(&pending) {
                match result {
                    Ok(value) => out[i] = Some(Ok(value)),
                    Err(err) if err.is_retryable() => {
                        last_err[i] = Some(err);
                        still.push(i);
                    }
                    Err(err) => out[i] = Some(Err(err)),
                }
            }
            pending = still;
            if pending.is_empty() {
                break;
            }
            let delay = self.policy.backoff(attempt);
            let out_of_budget = attempt >= max_attempts
                || self
                    .policy
                    .deadline
                    .is_some_and(|deadline| start.elapsed() + delay >= deadline)
                || ambient.would_exceed(delay);
            if out_of_budget {
                for &i in &pending {
                    self.metrics.giveups.inc();
                    let last = last_err[i].take().expect("pending item has a last error");
                    out[i] = Some(Err(SlimError::Timeout {
                        op: format!("{op} {}", key_of(&items[i])),
                        attempts: attempt,
                        last: last.to_string(),
                    }));
                }
                break;
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
                self.metrics.backoff_nanos.add(delay.as_nanos() as u64);
                self.metrics.backoff_wait.record_duration(delay);
            }
            self.metrics.retries.add(pending.len() as u64);
        }
        out.into_iter()
            .map(|slot| slot.expect("every item resolved"))
            .collect()
    }
}

impl ObjectStore for RetryingStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        // Bytes clones are refcount bumps, so retrying a PUT is free.
        let upload = value.len() as u64;
        self.run("put", key, upload, || self.inner.put(key, value.clone()))
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.run("get", key, 0, || self.inner.get(key))
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        self.run("get_range", key, 0, || {
            self.inner.get_range(key, start, len)
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.run("delete", key, 0, || self.inner.delete(key))
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.run("head", key, 0, || self.inner.exists(key))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.run("head", key, 0, || self.inner.len(key))
    }

    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        self.run_many(
            "get",
            keys,
            |k| k.as_str(),
            |batch| self.inner.get_many(batch),
        )
    }

    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        self.run_many(
            "get_range",
            ranges,
            |(key, _, _)| key.as_str(),
            |batch| self.inner.get_range_many(batch),
        )
    }

    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        self.run_many(
            "head",
            keys,
            |k| k.as_str(),
            |batch| self.inner.len_many(batch),
        )
    }

    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        self.run_many(
            "delete",
            keys,
            |k| k.as_str(),
            |batch| self.inner.delete_many(batch),
        )
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    /// Inner traffic counters overlaid with this wrapper's retry/giveup
    /// counts and re-upload volume, so one snapshot carries the whole story.
    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let mut snapshot = self.inner.metrics_snapshot().unwrap_or_default();
        snapshot.retries += self.metrics.retries();
        snapshot.giveups += self.metrics.giveups();
        snapshot.retry_bytes += self.metrics.retry_bytes();
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::store::Oss;

    fn retrying(oss: &Oss, max_attempts: u32) -> RetryingStore {
        RetryingStore::new(Arc::new(oss.clone()), RetryPolicy::no_delay(max_attempts))
    }

    #[test]
    fn passes_through_without_faults() {
        let oss = Oss::in_memory();
        let store = retrying(&oss, 4);
        store.put("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
        assert!(store.exists("k").unwrap());
        assert_eq!(store.len("k").unwrap(), Some(1));
        assert_eq!(store.list(""), vec!["k".to_string()]);
        store.delete("k").unwrap();
        assert_eq!(store.retry_metrics().retries(), 0);
        assert_eq!(store.retry_metrics().giveups(), 0);
    }

    #[test]
    fn retries_transient_failures_to_success() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = retrying(&oss, 4);
        // Throttle every 2nd op: the first store attempt lands on op 2 and
        // fails; the retry lands on op 3 and succeeds.
        oss.inject_fault(FaultPlan::Throttle { every_nth: 2 });
        oss.get("k").unwrap(); // op 1: advance the throttle counter
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(store.retry_metrics().retries(), 1);
        assert_eq!(store.retry_metrics().giveups(), 0);
        let snap = store.metrics_snapshot().unwrap();
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.giveups, 0);
        assert!(snap.injected_faults >= 1);
    }

    #[test]
    fn gives_up_after_attempt_budget_with_timeout() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 9,
        });
        let store = retrying(&oss, 3);
        let err = store.get("k").unwrap_err();
        match &err {
            SlimError::Timeout { attempts, last, .. } => {
                assert_eq!(*attempts, 3);
                assert!(last.contains("transient"), "last cause preserved: {last}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(err.is_retryable(), "outer layers may still retry");
        assert_eq!(store.retry_metrics().giveups(), 1);
        assert_eq!(store.retry_metrics().retries(), 2);
    }

    #[test]
    fn non_retryable_errors_pass_through_immediately() {
        let oss = Oss::in_memory();
        let store = retrying(&oss, 5);
        assert!(matches!(
            store.get("missing"),
            Err(SlimError::ObjectNotFound(_))
        ));
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        assert!(matches!(
            store.get("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        assert_eq!(store.retry_metrics().retries(), 0);
        assert_eq!(store.retry_metrics().giveups(), 0);
    }

    #[test]
    fn corrupt_errors_are_not_retried() {
        // Corruption is durable state, not a transient fault: re-issuing the
        // request downloads the same damaged object. The wrapper must
        // surface `SlimError::Corrupt` on the first attempt and leave
        // healing to the G-node's quarantine/recovery plane.
        struct AlwaysCorrupt;
        impl ObjectStore for AlwaysCorrupt {
            fn put(&self, _: &str, _: Bytes) -> Result<()> {
                Ok(())
            }
            fn get(&self, key: &str) -> Result<Bytes> {
                Err(SlimError::corrupt("get", format!("bad checksum on {key}")))
            }
            fn get_range(&self, key: &str, _: u64, _: u64) -> Result<Bytes> {
                Err(SlimError::corrupt(
                    "get_range",
                    format!("bad checksum on {key}"),
                ))
            }
            fn delete(&self, _: &str) -> Result<()> {
                Ok(())
            }
            fn exists(&self, _: &str) -> Result<bool> {
                Ok(true)
            }
            fn len(&self, _: &str) -> Result<Option<u64>> {
                Ok(None)
            }
            fn list(&self, _: &str) -> Vec<String> {
                Vec::new()
            }
        }
        let store = RetryingStore::new(Arc::new(AlwaysCorrupt), RetryPolicy::no_delay(8));
        assert!(matches!(
            store.get("containers/1/data"),
            Err(SlimError::Corrupt { .. })
        ));
        let results = store.get_many(&["a".into(), "b".into()]);
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(SlimError::Corrupt { .. }))));
        assert_eq!(store.retry_metrics().retries(), 0, "never retried");
        assert_eq!(store.retry_metrics().attempts(), 3, "one attempt per item");
        assert_eq!(store.retry_metrics().giveups(), 0);
    }

    #[test]
    fn deadline_bounds_total_time() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 1,
        });
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(20),
            deadline: Some(Duration::from_millis(30)),
            jitter_seed: 0,
        };
        let store = RetryingStore::new(Arc::new(oss.clone()), policy);
        let t0 = Instant::now();
        let err = store.get("k").unwrap_err();
        assert!(matches!(err, SlimError::Timeout { .. }));
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(store.retry_metrics().giveups(), 1);
    }

    #[test]
    fn backoff_grows_capped_and_jittered_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            deadline: None,
            jitter_seed: 42,
        };
        let d1 = policy.backoff(1);
        let d2 = policy.backoff(2);
        let d5 = policy.backoff(5);
        assert!(d1 >= Duration::from_millis(5) && d1 < Duration::from_millis(10));
        assert!(d2 >= Duration::from_millis(10) && d2 < Duration::from_millis(20));
        assert!(d5 <= Duration::from_millis(100), "capped at max_delay");
        assert_eq!(
            policy.backoff(3),
            policy.backoff(3),
            "jitter is deterministic"
        );
        assert_eq!(RetryPolicy::no_delay(3).backoff(7), Duration::ZERO);
    }

    #[test]
    fn retried_put_bytes_go_to_retry_bytes_not_bytes_written() {
        // Regression (PR 2 satellite): under a seeded TransientProb plan,
        // re-uploaded PUT payloads must land in `retry_bytes`; the
        // `bytes_written` dedup-cost counter stays the exact logical
        // volume, as if no fault had ever fired.
        const N: u64 = 200;
        const L: u64 = 64;
        let oss = Oss::in_memory();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 0.3,
            seed: 0xfeed,
        });
        let store = retrying(&oss, 50);
        let payload = Bytes::from(vec![7u8; L as usize]);
        for i in 0..N {
            store.put(&format!("obj/{i}"), payload.clone()).unwrap();
        }
        oss.clear_faults();

        let retries = store.retry_metrics().retries();
        assert!(retries > 0, "seeded plan must trigger retries");
        assert_eq!(store.retry_metrics().giveups(), 0);
        let snap = store.metrics_snapshot().unwrap();
        assert_eq!(snap.bytes_written, N * L, "no inflation from retries");
        assert_eq!(snap.retry_bytes, retries * L, "each re-issue re-sends L");
        // GET retries carry no payload.
        oss.inject_fault(FaultPlan::Throttle { every_nth: 2 });
        oss.get("obj/0").unwrap(); // advance counter so the next op faults
        store.get("obj/0").unwrap();
        assert_eq!(store.retry_metrics().retries(), retries + 1);
        assert_eq!(store.retry_metrics().retry_bytes(), retries * L);
    }

    #[test]
    fn telemetry_scope_exposes_retry_counters() {
        let registry = slim_telemetry::Registry::new();
        let oss = Oss::in_memory();
        oss.inject_fault(FaultPlan::Throttle { every_nth: 2 });
        let store = RetryingStore::with_telemetry(
            Arc::new(oss.clone()),
            RetryPolicy::no_delay(4),
            &registry.scope("retry"),
        );
        oss.put("warmup", Bytes::new()).unwrap();
        store.put("k", Bytes::from_static(b"payload")).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("retry.retries"), 1);
        assert_eq!(snap.counter("retry.retry_bytes"), 7);
        assert!(snap.counter("retry.attempts") >= 2);
    }

    #[test]
    fn get_many_retries_per_item_to_success() {
        let oss = Oss::in_memory();
        let keys: Vec<String> = (0..8).map(|i| format!("b/{i}")).collect();
        for k in &keys[..7] {
            oss.put(k, Bytes::from_static(b"v")).unwrap();
        }
        // Ops on `b/` fail transiently about half the time; `b/7` is also
        // missing entirely, which must surface as the non-retryable
        // ObjectNotFound once the fault schedule lets the request through.
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: "b/".into(),
            prob: 0.5,
            seed: 0x1234,
        });
        let store = retrying(&oss, 20);
        let results = store.get_many(&keys);
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                assert!(
                    matches!(r, Err(SlimError::ObjectNotFound(_))),
                    "item 7: {r:?}"
                );
            } else {
                assert_eq!(r.as_ref().unwrap(), &Bytes::from_static(b"v"));
            }
        }
        assert_eq!(store.retry_metrics().giveups(), 0);
    }

    #[test]
    fn batched_giveups_report_per_item_timeouts() {
        let oss = Oss::in_memory();
        let keys: Vec<String> = (0..4).map(|i| format!("b/{i}")).collect();
        for k in &keys {
            oss.put(k, Bytes::from_static(b"v")).unwrap();
        }
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 5,
        });
        let store = retrying(&oss, 3);
        let results = store.get_many(&keys);
        for (r, k) in results.iter().zip(&keys) {
            match r {
                Err(SlimError::Timeout { op, attempts, .. }) => {
                    assert_eq!(*attempts, 3, "per-item budget honored");
                    assert_eq!(op, &format!("get {k}"));
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
        assert_eq!(store.retry_metrics().giveups(), 4);
        assert_eq!(store.retry_metrics().attempts(), 12, "4 items x 3 rounds");
        assert_eq!(
            store.retry_metrics().retries(),
            8,
            "rounds 2 and 3 re-issue all 4"
        );
    }

    #[test]
    fn batched_delete_and_len_pass_through_retry_layer() {
        let oss = Oss::in_memory();
        let keys: Vec<String> = (0..3).map(|i| format!("b/{i}")).collect();
        for k in &keys {
            oss.put(k, Bytes::from_static(b"xy")).unwrap();
        }
        let store = retrying(&oss, 4);
        let lens = store.len_many(&keys);
        assert!(lens.iter().all(|l| *l.as_ref().unwrap() == Some(2)));
        for r in store.delete_many(&keys) {
            r.unwrap();
        }
        assert_eq!(oss.object_count(), 0);
    }

    #[test]
    fn ambient_deadline_short_circuits_before_any_attempt() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = retrying(&oss, 8);
        let before = oss.metrics().snapshot().get_requests;
        Deadline::within(Duration::ZERO).scope(|| {
            let err = store.get("k").unwrap_err();
            match err {
                SlimError::Timeout { attempts, .. } => assert_eq!(attempts, 0),
                other => panic!("expected Timeout, got {other:?}"),
            }
            let many = store.get_many(&["k".to_string()]);
            assert!(matches!(many[0], Err(SlimError::Timeout { .. })));
        });
        assert_eq!(
            oss.metrics().snapshot().get_requests,
            before,
            "expired deadline issued no OSS calls"
        );
        assert_eq!(store.retry_metrics().giveups(), 2);
        // Outside the scope the store works normally again.
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn ambient_deadline_bounds_backoff_sleeps() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 2,
        });
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_secs(5),
            max_delay: Duration::from_secs(5),
            deadline: None,
            jitter_seed: 0,
        };
        let store = RetryingStore::new(Arc::new(oss.clone()), policy);
        let t0 = Instant::now();
        let err = Deadline::within(Duration::from_millis(50)).scope(|| store.get("k").unwrap_err());
        assert!(matches!(err, SlimError::Timeout { .. }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "never slept a 5s backoff into a 50ms budget"
        );
        assert_eq!(store.retry_metrics().giveups(), 1);
    }

    #[test]
    fn salted_policies_draw_distinct_jitter_streams() {
        let base = RetryPolicy::default();
        let a = base.clone().salted(next_jitter_salt());
        let b = base.clone().salted(next_jitter_salt());
        assert_ne!(a.jitter_seed, b.jitter_seed, "salts differ per wrapper");
        assert_ne!(a.jitter_seed, base.jitter_seed);
        assert!(
            (1..=8).any(|r| a.backoff(r) != b.backoff(r)),
            "distinct streams decorrelate backoff"
        );
        // Still deterministic: the same salt reproduces the same stream.
        let c = base.clone().salted(7);
        let d = base.clone().salted(7);
        assert_eq!(c.jitter_seed, d.jitter_seed);
    }

    #[test]
    fn backoff_sleeps_feed_the_wait_histogram() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::Throttle { every_nth: 2 });
        let registry = slim_telemetry::Registry::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(1),
            deadline: None,
            jitter_seed: 3,
        };
        let store =
            RetryingStore::with_telemetry(Arc::new(oss.clone()), policy, &registry.scope("retry"));
        oss.get("k").unwrap(); // advance the throttle counter to op 1
        store.get("k").unwrap(); // fails at op 2, retried at op 3
        let snap = registry.snapshot();
        let hist = &snap.histograms["retry.backoff_wait_nanos"];
        assert_eq!(hist.count, 1, "one backoff sleep recorded");
        assert!(snap.counter("retry.backoff_nanos") > 0);
    }

    #[test]
    fn put_retry_rewrites_value() {
        let oss = Oss::in_memory();
        oss.inject_fault(FaultPlan::Throttle { every_nth: 2 });
        let store = retrying(&oss, 4);
        oss.put("warmup", Bytes::new()).unwrap(); // counter: 1
        store.put("k", Bytes::from_static(b"payload")).unwrap(); // fails at 2, lands at 3
        oss.clear_faults();
        assert_eq!(oss.get("k").unwrap(), Bytes::from_static(b"payload"));
        assert_eq!(store.retry_metrics().retries(), 1);
    }
}
