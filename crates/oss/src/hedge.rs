//! Hedged requests and per-endpoint circuit breakers — the gray-failure
//! resilience plane.
//!
//! [`HedgedStore`] wraps any [`ObjectStore`] and treats the simulated
//! endpoints of the underlying [`crate::Oss`] as independently healthy
//! replicas of one service:
//!
//! * **Routing** — every operation is pinned to the healthiest endpoint
//!   whose circuit breaker admits it ([`crate::HealthTracker`] scores,
//!   deterministic lowest-index tie-break).
//! * **Hedging** — idempotent reads (`get`, `get_range`, `len` and their
//!   batch forms) issue a *backup* request on the next-healthiest endpoint
//!   once the primary has been outstanding longer than a live quantile of
//!   observed read latency; the first success wins and the loser is left to
//!   finish detached. A read that fails fast with a retryable error fails
//!   over to the backup immediately instead of waiting out the delay.
//! * **Breaking** — consecutive endpoint-level failures open that
//!   endpoint's breaker (Closed → Open → HalfOpen with seeded probe
//!   admission); calls are shed with [`SlimError::CircuitOpen`] only when
//!   *every* endpoint refuses.
//! * **Deadlines** — the ambient [`Deadline`] bounds everything: an expired
//!   deadline refuses the call before any request is issued, and hedge
//!   waits never sleep past the remaining budget.
//!
//! The plane deliberately stays inert on fast stores: until
//! [`HedgePolicy::min_observations`] reads have been pooled *and* the
//! hedge quantile clears [`HedgePolicy::activation_floor`], reads take the
//! direct single-attempt path — hedging a store that answers in
//! microseconds only adds load. Writes and deletes are routed and health-
//! scored but never hedged (one attempt, no duplication).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use slim_telemetry::{Counter, Histogram, Scope};
use slim_types::{Deadline, Result, SlimError};

use crate::endpoint;
use crate::fault::{splitmix64, unit_f64};
use crate::health::HealthTracker;
use crate::store::ObjectStore;

/// Tuning of one endpoint's circuit breaker.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive endpoint-level failures that open the breaker.
    pub failure_threshold: u32,
    /// Consultations shed while Open before the breaker half-opens.
    pub open_ops: u64,
    /// Probability a HalfOpen consultation is admitted as a probe
    /// (seeded, deterministic per consultation ordinal).
    pub probe_prob: f64,
    /// Consecutive successful probes that close the breaker again.
    pub success_to_close: u32,
    /// Seed of the probe-admission stream.
    pub seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 8,
            open_ops: 16,
            probe_prob: 0.5,
            success_to_close: 3,
            seed: 0x5EED_B4EA_4E85_0001,
        }
    }
}

/// Observable state of one endpoint's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerStage {
    /// Healthy: every call admitted.
    Closed,
    /// Sick: calls shed until `open_ops` consultations have passed.
    Open,
    /// Recovering: seeded fraction of calls admitted as probes.
    HalfOpen,
}

#[derive(Debug)]
struct EndpointBreaker {
    stage: BreakerStage,
    /// Consecutive failures while Closed.
    failures: u32,
    /// Consultations seen while Open.
    waited: u64,
    /// Consecutive probe successes while HalfOpen.
    successes: u32,
    /// Probe-admission draw ordinal (per endpoint, monotonic).
    draws: u64,
}

/// Per-endpoint circuit breakers with deterministic, op-count-driven
/// transitions (no wall clocks: simulation runs replay exactly).
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    states: Vec<Mutex<EndpointBreaker>>,
    opened: Counter,
    closed: Counter,
    probes: Counter,
    shed: Counter,
}

impl CircuitBreaker {
    /// Breakers for `endpoints` endpoints with detached counters.
    pub fn new(endpoints: usize, policy: BreakerPolicy) -> Self {
        CircuitBreaker::build(endpoints, policy, None)
    }

    /// Breakers whose counters live under `scope` as `breaker.{opened,
    /// closed,probes,shed}` (canonically `oss.breaker.*`).
    pub fn with_telemetry(endpoints: usize, policy: BreakerPolicy, scope: &Scope) -> Self {
        CircuitBreaker::build(endpoints, policy, Some(scope))
    }

    fn build(endpoints: usize, mut policy: BreakerPolicy, scope: Option<&Scope>) -> Self {
        policy.failure_threshold = policy.failure_threshold.max(1);
        policy.open_ops = policy.open_ops.max(1);
        policy.success_to_close = policy.success_to_close.max(1);
        let counter = |name: &str| match scope {
            Some(scope) => scope.counter(&format!("breaker.{name}")),
            None => Counter::detached(),
        };
        CircuitBreaker {
            states: (0..endpoints.max(1))
                .map(|_| {
                    Mutex::new(EndpointBreaker {
                        stage: BreakerStage::Closed,
                        failures: 0,
                        waited: 0,
                        successes: 0,
                        draws: 0,
                    })
                })
                .collect(),
            policy,
            opened: counter("opened"),
            closed: counter("closed"),
            probes: counter("probes"),
            shed: counter("shed"),
        }
    }

    /// Current stage of one endpoint's breaker.
    pub fn stage(&self, endpoint: usize) -> BreakerStage {
        self.states
            .get(endpoint)
            .map_or(BreakerStage::Closed, |s| s.lock().stage)
    }

    /// Consult the breaker for one prospective call. Open breakers count
    /// the consultation toward half-opening; HalfOpen breakers draw the
    /// seeded probe-admission stream. Stateful by design — every
    /// consultation advances the deterministic schedule.
    pub fn admits(&self, endpoint: usize) -> bool {
        let Some(state) = self.states.get(endpoint) else {
            return true;
        };
        let mut st = state.lock();
        match st.stage {
            BreakerStage::Closed => true,
            BreakerStage::Open => {
                st.waited += 1;
                if st.waited < self.policy.open_ops {
                    return false;
                }
                st.stage = BreakerStage::HalfOpen;
                st.successes = 0;
                self.probe_draw(endpoint, &mut st)
            }
            BreakerStage::HalfOpen => self.probe_draw(endpoint, &mut st),
        }
    }

    fn probe_draw(&self, endpoint: usize, st: &mut EndpointBreaker) -> bool {
        st.draws += 1;
        let x = self
            .policy
            .seed
            .wrapping_add((endpoint as u64) << 32)
            .wrapping_add(st.draws);
        let admit = unit_f64(splitmix64(x)) < self.policy.probe_prob;
        if admit {
            self.probes.inc();
        }
        admit
    }

    /// Fold the outcome of an admitted call back into the breaker.
    /// `healthy` means the *endpoint* behaved (data-level misses like
    /// `ObjectNotFound` count as healthy).
    pub fn record(&self, endpoint: usize, healthy: bool) {
        let Some(state) = self.states.get(endpoint) else {
            return;
        };
        let mut st = state.lock();
        match st.stage {
            BreakerStage::Closed => {
                if healthy {
                    st.failures = 0;
                } else {
                    st.failures += 1;
                    if st.failures >= self.policy.failure_threshold {
                        st.stage = BreakerStage::Open;
                        st.waited = 0;
                        self.opened.inc();
                    }
                }
            }
            BreakerStage::HalfOpen => {
                if healthy {
                    st.successes += 1;
                    if st.successes >= self.policy.success_to_close {
                        st.stage = BreakerStage::Closed;
                        st.failures = 0;
                        self.closed.inc();
                    }
                } else {
                    st.stage = BreakerStage::Open;
                    st.waited = 0;
                    self.opened.inc();
                }
            }
            // A late result from a call admitted before the breaker opened;
            // the Open countdown is consultation-driven, so nothing to do.
            BreakerStage::Open => {}
        }
    }

    /// Count one call shed because every endpoint refused.
    fn record_shed(&self) {
        self.shed.inc();
    }
}

/// Tuning of the hedged-read plane.
#[derive(Debug, Clone)]
pub struct HedgePolicy {
    /// Master switch; `false` makes the wrapper a recording pass-through.
    pub enabled: bool,
    /// Endpoints the underlying store models (must match
    /// [`crate::Oss::set_endpoints`]). Hedging needs at least two.
    pub endpoints: usize,
    /// Latency quantile the hedge delay tracks.
    pub hedge_quantile: f64,
    /// Clamp bounds of the derived hedge delay.
    pub min_delay: Duration,
    pub max_delay: Duration,
    /// Pooled successful reads required before hedging can activate.
    pub min_observations: u64,
    /// Hedging stays inert while the hedge quantile sits below this floor —
    /// a store this fast only loses capacity to duplicate requests.
    pub activation_floor: Duration,
    /// Seed of the tie-break stream (both attempts succeeded in the same
    /// scheduling quantum).
    pub seed: u64,
    /// Per-endpoint circuit-breaker tuning.
    pub breaker: BreakerPolicy,
}

impl HedgePolicy {
    /// Defaults for a store modelling `n` endpoints; hedging enabled iff
    /// there are at least two.
    pub fn for_endpoints(n: usize) -> Self {
        HedgePolicy {
            enabled: n > 1,
            endpoints: n.max(1),
            hedge_quantile: 0.95,
            min_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(20),
            min_observations: 32,
            activation_floor: Duration::from_millis(1),
            seed: 0x5EED_4ED6_E000_0001,
            breaker: BreakerPolicy::default(),
        }
    }
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy::for_endpoints(2)
    }
}

struct HedgeMetrics {
    issued: Counter,
    won: Counter,
    wasted: Counter,
    failovers: Counter,
    deadline_refused: Counter,
    delay_nanos: Histogram,
    read_nanos: Histogram,
}

impl HedgeMetrics {
    fn new(scope: Option<&Scope>) -> Self {
        let counter = |name: &str| match scope {
            Some(scope) => scope.counter(&format!("hedge.{name}")),
            None => Counter::detached(),
        };
        let histogram = |name: &str| match scope {
            Some(scope) => scope.histogram(&format!("hedge.{name}")),
            None => Histogram::detached(),
        };
        HedgeMetrics {
            issued: counter("issued"),
            won: counter("won"),
            wasted: counter("wasted"),
            failovers: counter("failovers"),
            deadline_refused: counter("deadline_refused"),
            delay_nanos: histogram("delay_nanos"),
            read_nanos: histogram("read_nanos"),
        }
    }
}

/// Whether an error indicts the *endpoint* (retryable elsewhere) rather
/// than the data. Data-level outcomes — missing objects, bad ranges,
/// corrupt payloads — would fail identically on every endpoint.
fn endpoint_sick(err: &SlimError) -> bool {
    matches!(
        err,
        SlimError::Transient(_)
            | SlimError::Throttled(_)
            | SlimError::Timeout { .. }
            | SlimError::Overloaded(_)
            | SlimError::InjectedFault(_)
    )
}

fn expired_err(op: &str) -> SlimError {
    SlimError::Timeout {
        op: op.to_string(),
        attempts: 0,
        last: "deadline expired before issuing the request".into(),
    }
}

fn sick_count<T>(results: &[Result<T>]) -> usize {
    results
        .iter()
        .filter(|r| matches!(r, Err(e) if endpoint_sick(e)))
        .count()
}

struct Shared {
    inner: Arc<dyn ObjectStore>,
    policy: HedgePolicy,
    health: HealthTracker,
    breaker: CircuitBreaker,
    metrics: HedgeMetrics,
    /// Tie-break draw ordinal.
    ties: AtomicU64,
}

impl Shared {
    /// Run one attempt pinned to `endpoint`, folding latency and endpoint
    /// health into the tracker and breaker. `pooled` feeds the hedge-delay
    /// quantile (single-op reads only).
    fn attempt<T>(
        &self,
        endpoint: usize,
        pooled: bool,
        call: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let _pin = endpoint::pin(endpoint);
        let start = Instant::now();
        let result = call();
        let elapsed = start.elapsed();
        let healthy = result.as_ref().err().is_none_or(|e| !endpoint_sick(e));
        if pooled {
            self.health.record(endpoint, elapsed, healthy);
        } else {
            self.health.record_unpooled(endpoint, elapsed, healthy);
        }
        self.breaker.record(endpoint, healthy);
        result
    }

    /// Run one whole-batch attempt pinned to `endpoint`; health sees the
    /// per-item latency so batch size does not distort endpoint scores.
    fn attempt_batch<T>(
        &self,
        endpoint: usize,
        items: usize,
        call: impl FnOnce() -> Vec<Result<T>>,
    ) -> Vec<Result<T>> {
        let _pin = endpoint::pin(endpoint);
        let start = Instant::now();
        let results = call();
        let elapsed = start.elapsed();
        let healthy = sick_count(&results) == 0;
        self.health
            .record_unpooled(endpoint, elapsed / items.max(1) as u32, healthy);
        self.breaker.record(endpoint, healthy);
        results
    }

    /// Healthiest admitted endpoint (primary) and the next one (backup).
    fn route(&self) -> (Option<usize>, Option<usize>) {
        let mut admitted = self
            .health
            .ranked()
            .into_iter()
            .filter(|&e| self.breaker.admits(e));
        let primary = admitted.next();
        let backup = admitted.next();
        (primary, backup)
    }

    /// Current hedge delay, if the plane has warmed up past its
    /// activation thresholds.
    fn hedge_delay(&self) -> Option<Duration> {
        self.health.hedge_delay(
            self.policy.hedge_quantile,
            self.policy.min_delay,
            self.policy.max_delay,
            self.policy.min_observations,
            self.policy.activation_floor,
        )
    }
}

/// Hedging/breaker wrapper around any [`ObjectStore`]. Cheap to clone.
#[derive(Clone)]
pub struct HedgedStore {
    shared: Arc<Shared>,
}

impl HedgedStore {
    /// Wrap `inner` with detached (unregistered) metrics.
    pub fn new(inner: Arc<dyn ObjectStore>, policy: HedgePolicy) -> Self {
        HedgedStore::build(inner, policy, None)
    }

    /// Wrap `inner` with metrics under `scope` (canonically `"oss"`,
    /// yielding `oss.hedge.*`, `oss.breaker.*` and `oss.health.*`).
    pub fn with_telemetry(inner: Arc<dyn ObjectStore>, policy: HedgePolicy, scope: &Scope) -> Self {
        HedgedStore::build(inner, policy, Some(scope))
    }

    fn build(inner: Arc<dyn ObjectStore>, policy: HedgePolicy, scope: Option<&Scope>) -> Self {
        let endpoints = policy.endpoints.max(1);
        HedgedStore {
            shared: Arc::new(Shared {
                inner,
                health: match scope {
                    Some(scope) => HealthTracker::with_telemetry(endpoints, scope),
                    None => HealthTracker::new(endpoints),
                },
                breaker: match scope {
                    Some(scope) => {
                        CircuitBreaker::with_telemetry(endpoints, policy.breaker.clone(), scope)
                    }
                    None => CircuitBreaker::new(endpoints, policy.breaker.clone()),
                },
                metrics: HedgeMetrics::new(scope),
                policy,
                ties: AtomicU64::new(0),
            }),
        }
    }

    /// The endpoint health tracker (scores, hedge-delay pool).
    pub fn health(&self) -> &HealthTracker {
        &self.shared.health
    }

    /// The per-endpoint circuit breakers.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.shared.breaker
    }

    /// A hedgeable single read: deadline gate, health routing, and —
    /// once the delay quantile is live — the primary/backup race.
    fn read<T: Send + 'static>(
        &self,
        op: &'static str,
        call: impl Fn() -> Result<T> + Send + Sync + 'static,
    ) -> Result<T> {
        let deadline = Deadline::current();
        if deadline.expired() {
            self.shared.metrics.deadline_refused.inc();
            return Err(expired_err(op));
        }
        let started = Instant::now();
        let result = self.read_raced(op, deadline, call);
        self.shared
            .metrics
            .read_nanos
            .record_duration(started.elapsed());
        result
    }

    fn read_raced<T: Send + 'static>(
        &self,
        op: &'static str,
        deadline: Deadline,
        call: impl Fn() -> Result<T> + Send + Sync + 'static,
    ) -> Result<T> {
        let shared = &self.shared;
        if !shared.policy.enabled || shared.policy.endpoints <= 1 {
            return call();
        }
        let (primary, backup) = shared.route();
        let Some(primary) = primary else {
            shared.breaker.record_shed();
            return Err(SlimError::CircuitOpen(format!(
                "{op}: every endpoint's breaker refused the call"
            )));
        };
        let (delay, backup) = match (shared.hedge_delay(), backup) {
            (Some(delay), Some(backup)) => (delay, backup),
            // Cold/fast store, or no second endpoint admitted: single
            // attempt on the chosen endpoint, in the caller's thread.
            _ => return shared.attempt(primary, true, call),
        };
        let shared = self.shared.clone();
        let call = Arc::new(call);
        let (tx, rx) = mpsc::channel::<(bool, Result<T>)>();
        {
            let shared = shared.clone();
            let call = call.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let result = shared.attempt(primary, true, || call());
                let _ = tx.send((false, result));
            });
        }
        let wait = deadline.remaining().map_or(delay, |rem| delay.min(rem));
        match rx.recv_timeout(wait) {
            Ok((_, Ok(value))) => return Ok(value),
            Ok((_, Err(err))) if endpoint_sick(&err) => {
                // Primary failed fast with a retryable error: fail over to
                // the backup immediately instead of waiting out the delay.
                shared.metrics.failovers.inc();
                {
                    let shared = shared.clone();
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let result = shared.attempt(backup, true, || call());
                        let _ = tx.send((true, result));
                    });
                }
                drop(tx);
                let msg = match deadline.remaining() {
                    None => rx.recv().ok(),
                    Some(rem) if rem.is_zero() => None,
                    Some(rem) => rx.recv_timeout(rem).ok(),
                };
                return match msg {
                    Some((_, Ok(value))) => Ok(value),
                    // Surface the backup's data-level error (the primary's
                    // transient masked it), the primary's error otherwise.
                    Some((_, Err(be))) if !endpoint_sick(&be) => Err(be),
                    Some(_) => Err(err),
                    None => Err(expired_err(op)),
                };
            }
            Ok((_, Err(err))) => return Err(err), // data-level: hedging won't help
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary sender held until after the race")
            }
        }
        // The primary has been outstanding past the hedge delay: race it.
        shared.metrics.issued.inc();
        shared.metrics.delay_nanos.record_duration(wait);
        {
            let shared = shared.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let result = shared.attempt(backup, true, || call());
                let _ = tx.send((true, result));
            });
        }
        drop(tx);
        let mut sick_primary: Option<SlimError> = None;
        let mut sick_hedge: Option<SlimError> = None;
        loop {
            let received = match deadline.remaining() {
                None => rx.recv().ok(),
                Some(rem) if rem.is_zero() => return Err(expired_err(op)),
                Some(rem) => match rx.recv_timeout(rem) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => return Err(expired_err(op)),
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                },
            };
            let Some((from_hedge, result)) = received else {
                // Both attempts reported, neither produced a winner.
                shared.metrics.wasted.inc();
                return Err(sick_primary
                    .take()
                    .or_else(|| sick_hedge.take())
                    .unwrap_or_else(|| expired_err(op)));
            };
            match result {
                Ok(value) => {
                    let (mut value, mut from_hedge) = (value, from_hedge);
                    // Both results already queued: a seeded coin decides so
                    // the tie-break replays deterministically.
                    if let Ok((other_hedge, Ok(other))) = rx.try_recv() {
                        let ordinal = shared.ties.fetch_add(1, Ordering::Relaxed);
                        let pick_hedge =
                            splitmix64(shared.policy.seed.wrapping_add(ordinal)) & 1 == 1;
                        if pick_hedge != from_hedge {
                            value = other;
                            from_hedge = other_hedge;
                        }
                    }
                    if from_hedge {
                        shared.metrics.won.inc();
                    } else {
                        shared.metrics.wasted.inc();
                    }
                    return Ok(value);
                }
                Err(err) if endpoint_sick(&err) => {
                    // Keep waiting: the other attempt may still succeed.
                    if from_hedge {
                        sick_hedge = Some(err);
                    } else {
                        sick_primary = Some(err);
                    }
                }
                Err(err) => {
                    // Data-level error: every endpoint would answer the same.
                    if from_hedge {
                        shared.metrics.won.inc();
                    } else {
                        shared.metrics.wasted.inc();
                    }
                    return Err(err);
                }
            }
        }
    }

    /// A hedgeable batch read: the whole batch races, first completed
    /// batch wins; a batch that completes with retryable per-item errors
    /// waits for (or triggers) its twin and the cleaner batch is returned.
    fn read_many<T: Send + 'static>(
        &self,
        op: &'static str,
        items: usize,
        call: impl Fn() -> Vec<Result<T>> + Send + Sync + 'static,
    ) -> Vec<Result<T>> {
        let deadline = Deadline::current();
        if deadline.expired() {
            self.shared.metrics.deadline_refused.inc();
            return (0..items).map(|_| Err(expired_err(op))).collect();
        }
        let shared = &self.shared;
        if !shared.policy.enabled || shared.policy.endpoints <= 1 || items == 0 {
            return call();
        }
        let (primary, backup) = shared.route();
        let Some(primary) = primary else {
            shared.breaker.record_shed();
            return (0..items)
                .map(|_| {
                    Err(SlimError::CircuitOpen(format!(
                        "{op}: every endpoint's breaker refused the call"
                    )))
                })
                .collect();
        };
        let (delay, backup) = match (shared.hedge_delay(), backup) {
            (Some(delay), Some(backup)) => (delay, backup),
            _ => return shared.attempt_batch(primary, items, call),
        };
        let shared = self.shared.clone();
        let call = Arc::new(call);
        let (tx, rx) = mpsc::channel::<(bool, Vec<Result<T>>)>();
        let spawn = |endpoint: usize, is_hedge: bool| {
            let shared = shared.clone();
            let call = call.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let results = shared.attempt_batch(endpoint, items, || call());
                let _ = tx.send((is_hedge, results));
            });
        };
        spawn(primary, false);
        // A batch amortizes its round-trips over parallel channels, so the
        // single-read quantile is scaled by the expected number of waves.
        let wait = delay
            .saturating_mul(items.div_ceil(8).min(u32::MAX as usize) as u32)
            .min(shared.policy.max_delay.saturating_mul(8));
        let wait = deadline.remaining().map_or(wait, |rem| wait.min(rem));
        let recv_bounded = |rx: &mpsc::Receiver<(bool, Vec<Result<T>>)>| match deadline.remaining()
        {
            None => rx.recv().ok(),
            Some(rem) if rem.is_zero() => None,
            Some(rem) => rx.recv_timeout(rem).ok(),
        };
        match rx.recv_timeout(wait) {
            Ok((_, results)) if sick_count(&results) == 0 => results,
            Ok((_, results)) => {
                // Primary completed but some items hit retryable errors:
                // fail the whole batch over and keep the cleaner outcome.
                shared.metrics.failovers.inc();
                spawn(backup, true);
                drop(tx);
                match recv_bounded(&rx) {
                    Some((_, twin)) if sick_count(&twin) < sick_count(&results) => twin,
                    _ => results,
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                shared.metrics.issued.inc();
                shared.metrics.delay_nanos.record_duration(wait);
                spawn(backup, true);
                drop(tx);
                let Some((from_hedge, first)) = recv_bounded(&rx) else {
                    return (0..items).map(|_| Err(expired_err(op))).collect();
                };
                if sick_count(&first) == 0 {
                    if from_hedge {
                        shared.metrics.won.inc();
                    } else {
                        shared.metrics.wasted.inc();
                    }
                    return first;
                }
                match recv_bounded(&rx) {
                    Some((twin_hedge, twin)) => {
                        let use_twin = sick_count(&twin) < sick_count(&first);
                        let won = if use_twin { twin_hedge } else { from_hedge };
                        if won {
                            shared.metrics.won.inc();
                        } else {
                            shared.metrics.wasted.inc();
                        }
                        if use_twin {
                            twin
                        } else {
                            first
                        }
                    }
                    None => {
                        if from_hedge {
                            shared.metrics.won.inc();
                        } else {
                            shared.metrics.wasted.inc();
                        }
                        first
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary batch sender held until after the race")
            }
        }
    }

    /// A routed, non-hedged operation (writes, deletes, metadata probes):
    /// deadline gate, endpoint selection, one attempt.
    fn routed<T>(&self, op: &'static str, call: impl FnOnce() -> Result<T>) -> Result<T> {
        let deadline = Deadline::current();
        if deadline.expired() {
            self.shared.metrics.deadline_refused.inc();
            return Err(expired_err(op));
        }
        let shared = &self.shared;
        if !shared.policy.enabled || shared.policy.endpoints <= 1 {
            return call();
        }
        match shared.route().0 {
            Some(endpoint) => shared.attempt(endpoint, false, call),
            None => {
                shared.breaker.record_shed();
                Err(SlimError::CircuitOpen(format!(
                    "{op}: every endpoint's breaker refused the call"
                )))
            }
        }
    }

    /// A routed, non-hedged batch (deletes).
    fn routed_many<T>(
        &self,
        op: &'static str,
        items: usize,
        call: impl FnOnce() -> Vec<Result<T>>,
    ) -> Vec<Result<T>> {
        let deadline = Deadline::current();
        if deadline.expired() {
            self.shared.metrics.deadline_refused.inc();
            return (0..items).map(|_| Err(expired_err(op))).collect();
        }
        let shared = &self.shared;
        if !shared.policy.enabled || shared.policy.endpoints <= 1 || items == 0 {
            return call();
        }
        match shared.route().0 {
            Some(endpoint) => shared.attempt_batch(endpoint, items, call),
            None => {
                shared.breaker.record_shed();
                (0..items)
                    .map(|_| {
                        Err(SlimError::CircuitOpen(format!(
                            "{op}: every endpoint's breaker refused the call"
                        )))
                    })
                    .collect()
            }
        }
    }
}

impl ObjectStore for HedgedStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.routed("put", || self.shared.inner.put(key, value))
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let inner = self.shared.inner.clone();
        let key = key.to_string();
        self.read("get", move || inner.get(&key))
    }

    fn get_raw(&self, key: &str) -> Result<Bytes> {
        // Integrity sweeps want the primary's exact bytes; no routing, no
        // hedging, no health accounting.
        self.shared.inner.get_raw(key)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        let inner = self.shared.inner.clone();
        let key = key.to_string();
        self.read("get", move || inner.get_range(&key, start, len))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.routed("delete", || self.shared.inner.delete(key))
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.routed("head", || self.shared.inner.exists(key))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        let inner = self.shared.inner.clone();
        let key = key.to_string();
        self.read("head", move || inner.len(&key))
    }

    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        let inner = self.shared.inner.clone();
        let keys = keys.to_vec();
        self.read_many("get", keys.len(), move || inner.get_many(&keys))
    }

    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        let inner = self.shared.inner.clone();
        let ranges = ranges.to_vec();
        self.read_many("get", ranges.len(), move || inner.get_range_many(&ranges))
    }

    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        let inner = self.shared.inner.clone();
        let keys = keys.to_vec();
        self.read_many("head", keys.len(), move || inner.len_many(&keys))
    }

    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        self.routed_many("delete", keys.len(), || self.shared.inner.delete_many(keys))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.shared.inner.list(prefix)
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        self.shared.inner.metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::store::Oss;

    fn oss_with_endpoints(n: usize) -> Oss {
        let oss = Oss::in_memory();
        oss.set_endpoints(n);
        oss
    }

    #[test]
    fn breaker_trips_half_opens_and_closes() {
        let policy = BreakerPolicy {
            failure_threshold: 3,
            open_ops: 4,
            probe_prob: 1.0, // every half-open consultation probes
            success_to_close: 2,
            seed: 1,
        };
        let br = CircuitBreaker::new(1, policy);
        assert_eq!(br.stage(0), BreakerStage::Closed);
        for _ in 0..3 {
            assert!(br.admits(0));
            br.record(0, false);
        }
        assert_eq!(br.stage(0), BreakerStage::Open);
        for _ in 0..3 {
            assert!(!br.admits(0), "open breaker sheds");
        }
        assert!(br.admits(0), "4th consultation half-opens and probes");
        assert_eq!(br.stage(0), BreakerStage::HalfOpen);
        br.record(0, true);
        assert!(br.admits(0));
        br.record(0, true);
        assert_eq!(br.stage(0), BreakerStage::Closed, "two successes close");
        // A failed probe reopens.
        for _ in 0..3 {
            br.record(0, false);
        }
        assert_eq!(br.stage(0), BreakerStage::Open);
        for _ in 0..3 {
            br.admits(0);
        }
        assert!(br.admits(0));
        br.record(0, false);
        assert_eq!(br.stage(0), BreakerStage::Open, "failed probe reopens");
    }

    #[test]
    fn breaker_probe_admission_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let br = CircuitBreaker::new(
                1,
                BreakerPolicy {
                    failure_threshold: 1,
                    open_ops: 1,
                    probe_prob: 0.5,
                    success_to_close: u32::MAX, // stay HalfOpen
                    seed,
                },
            );
            br.record(0, false); // trip
            (0..64).map(|_| br.admits(0)).collect()
        };
        let a = run(11);
        assert_eq!(a, run(11), "same seed replays the same probe schedule");
        assert_ne!(a, run(12), "different seeds differ");
        assert!(a.iter().any(|x| *x) && a.iter().any(|x| !*x));
    }

    #[test]
    fn disabled_wrapper_is_a_pass_through() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = HedgedStore::new(
            Arc::new(oss.clone()),
            HedgePolicy {
                enabled: false,
                ..HedgePolicy::for_endpoints(2)
            },
        );
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(store.len("k").unwrap(), Some(1));
        store.put("k2", Bytes::from_static(b"w")).unwrap();
        assert_eq!(store.list(""), vec!["k".to_string(), "k2".to_string()]);
        assert_eq!(store.shared.metrics.issued.get(), 0);
    }

    #[test]
    fn cold_store_reads_take_the_direct_path() {
        let oss = oss_with_endpoints(2);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = HedgedStore::new(Arc::new(oss.clone()), HedgePolicy::for_endpoints(2));
        for _ in 0..8 {
            assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
        }
        assert_eq!(
            store.shared.metrics.issued.get(),
            0,
            "in-memory latencies never clear the activation floor"
        );
        assert_eq!(
            oss.metrics().snapshot().get_requests,
            8,
            "one call per read"
        );
        assert!(store.health().observations(0) + store.health().observations(1) == 8);
    }

    #[test]
    fn expired_deadline_refuses_without_touching_the_store() {
        let oss = oss_with_endpoints(2);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = HedgedStore::new(Arc::new(oss.clone()), HedgePolicy::for_endpoints(2));
        let before = oss.metrics().snapshot();
        Deadline::within(Duration::ZERO).scope(|| {
            assert!(matches!(store.get("k"), Err(SlimError::Timeout { .. })));
            assert!(matches!(
                store.put("k2", Bytes::new()),
                Err(SlimError::Timeout { .. })
            ));
            let many = store.get_many(&["k".to_string()]);
            assert!(matches!(many[0], Err(SlimError::Timeout { .. })));
        });
        let after = oss.metrics().snapshot();
        assert_eq!(before.get_requests, after.get_requests);
        assert_eq!(before.put_requests, after.put_requests);
        assert_eq!(store.shared.metrics.deadline_refused.get(), 3);
        // Outside the scope everything works again.
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn all_breakers_open_sheds_with_circuit_open() {
        let oss = oss_with_endpoints(2);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let store = HedgedStore::new(Arc::new(oss.clone()), HedgePolicy::for_endpoints(2));
        for e in 0..2 {
            for _ in 0..store.shared.policy.breaker.failure_threshold {
                store.breaker().record(e, false);
            }
            assert_eq!(store.breaker().stage(e), BreakerStage::Open);
        }
        let before = oss.metrics().snapshot();
        let err = store.get("k").unwrap_err();
        assert!(matches!(err, SlimError::CircuitOpen(_)), "{err}");
        assert!(err.is_retryable());
        assert_eq!(
            oss.metrics().snapshot().get_requests,
            before.get_requests,
            "shed call never reached the store"
        );
        assert!(store.shared.breaker.shed.get() >= 1);
    }

    #[test]
    fn hedge_fires_and_wins_under_heavy_tail_latency() {
        let oss = oss_with_endpoints(2);
        oss.put("k", Bytes::from(vec![7u8; 256])).unwrap();
        // Every endpoint draws a heavy-tail delay: most reads land near the
        // 300µs scale, a seeded minority blows past the 1ms hedge ceiling.
        // (Not endpoint-scoped: health routing would simply learn to avoid
        // a single straggler and the hedge path would stay cold.)
        oss.inject_fault(FaultPlan::LatencyPareto {
            prefix: String::new(),
            endpoint: None,
            scale: Duration::from_micros(300),
            shape: 1.1,
            cap: Duration::from_millis(10),
            seed: 9,
        });
        let policy = HedgePolicy {
            min_observations: 4,
            activation_floor: Duration::ZERO,
            min_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(1),
            ..HedgePolicy::for_endpoints(2)
        };
        let store = HedgedStore::new(Arc::new(oss.clone()), policy);
        for _ in 0..96 {
            let got = store.get("k").unwrap();
            assert_eq!(got, Bytes::from(vec![7u8; 256]), "hedged bytes identical");
        }
        let m = &store.shared.metrics;
        assert!(m.issued.get() > 0, "tail reads outlived the hedge delay");
        assert!(m.won.get() > 0, "some hedges beat their straggling primary");
        assert_eq!(m.delay_nanos.snapshot().count, m.issued.get());
    }

    #[test]
    fn transient_primary_fails_over_to_backup() {
        let oss = oss_with_endpoints(2);
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        let policy = HedgePolicy {
            min_observations: 4,
            activation_floor: Duration::ZERO,
            min_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(1),
            ..HedgePolicy::for_endpoints(2)
        };
        let store = HedgedStore::new(Arc::new(oss.clone()), policy);
        // Warm the delay pool, then teach the tracker that endpoint 1 is
        // slow so routing deterministically picks endpoint 0 as primary —
        // which is exactly the endpoint about to start failing.
        for _ in 0..8 {
            store.get("k").unwrap();
        }
        for _ in 0..16 {
            store.health().record(1, Duration::from_millis(5), true);
        }
        assert_eq!(store.health().ranked()[0], 0);
        oss.inject_fault(FaultPlan::EndpointTransient {
            endpoint: 0,
            prob: 1.0,
            seed: 3,
        });
        // Reads must keep succeeding throughout: the sick primary fails
        // over to the backup, and once health/breaker state catches up the
        // healthy endpoint serves directly.
        for _ in 0..16 {
            assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v"));
        }
        let m = &store.shared.metrics;
        assert!(m.failovers.get() > 0, "sick primary failed over");
    }
}
