//! A filesystem-backed object store.
//!
//! Persists objects as files under a root directory, mapping the flat OSS
//! keyspace onto directories. This is the backend a real deployment of the
//! library would use against a FUSE-mounted bucket (the paper's OSSFS) or
//! local disk; the simulated [`crate::Oss`] remains the default for tests
//! and experiments because it carries the network cost model.
//!
//! Keys are sanitized path segments (`a/b/c` → `<root>/a/b/c.obj`); the
//! `.obj` suffix keeps files distinguishable from directories so `a` and
//! `a/b` can both be keys. Writes go through a temp file + rename so a crash
//! never leaves a half-written object visible.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bytes::Bytes;
use slim_types::{Result, SlimError};

use crate::metrics::{MetricsSnapshot, OssMetrics};
use crate::store::ObjectStore;

/// Object store persisting to a local directory.
pub struct LocalDiskOss {
    root: PathBuf,
    tmp_counter: AtomicU64,
    metrics: OssMetrics,
}

impl LocalDiskOss {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with_metrics(root, OssMetrics::default())
    }

    /// Open a store whose traffic counters are registered under `scope`
    /// (canonically `"oss"`), so disk-backed repositories report the same
    /// telemetry names as the simulated [`crate::Oss`].
    pub fn open_with_telemetry(
        root: impl Into<PathBuf>,
        scope: &slim_telemetry::Scope,
    ) -> Result<Self> {
        Self::open_with_metrics(root, OssMetrics::new(scope))
    }

    fn open_with_metrics(root: impl Into<PathBuf>, metrics: OssMetrics) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalDiskOss {
            root,
            tmp_counter: AtomicU64::new(0),
            metrics,
        })
    }

    /// Traffic counters (request counts, payload bytes, I/O wall time).
    pub fn metrics(&self) -> &OssMetrics {
        &self.metrics
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() {
            return Err(SlimError::InvalidConfig("empty object key".into()));
        }
        let mut path = self.root.clone();
        for segment in key.split('/') {
            if segment.is_empty() || segment == "." || segment == ".." {
                return Err(SlimError::InvalidConfig(format!(
                    "object key {key:?} has an invalid path segment"
                )));
            }
            path.push(segment);
        }
        path.set_file_name(format!(
            "{}.obj",
            path.file_name()
                .and_then(|s| s.to_str())
                .expect("validated utf-8 segment")
        ));
        Ok(path)
    }

    fn key_of(&self, path: &Path) -> Option<String> {
        let rel = path.strip_prefix(&self.root).ok()?;
        let mut segments: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let last = segments.pop()?;
        let last = last.strip_suffix(".obj")?;
        segments.push(last.to_string());
        Some(segments.join("/"))
    }

    fn walk(&self, dir: &Path, out: &mut Vec<String>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                self.walk(&path, out);
            } else if let Some(key) = self.key_of(&path) {
                out.push(key);
            }
        }
    }
}

impl ObjectStore for LocalDiskOss {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        let start = Instant::now();
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Atomic publish: write a temp file, then rename over the target.
        let tmp = path.with_extension(format!(
            "tmp{}",
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&value)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.metrics.record_put(value.len() as u64, start.elapsed());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let start = Instant::now();
        let path = self.path_of(key)?;
        match fs::read(&path) {
            Ok(buf) => {
                self.metrics.record_get(buf.len() as u64, start.elapsed());
                Ok(Bytes::from(buf))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(SlimError::ObjectNotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        use std::io::{Read, Seek, SeekFrom};
        let t0 = Instant::now();
        let path = self.path_of(key)?;
        let mut f = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SlimError::ObjectNotFound(key.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        let total = f.metadata()?.len();
        // checked_add: `start + len` can exceed u64::MAX, and a wrapped end
        // would pass the bounds check.
        if start.checked_add(len).is_none_or(|end| end > total) {
            return Err(SlimError::RangeOutOfBounds {
                key: key.to_string(),
                start,
                end: start.saturating_add(len),
                len: total,
            });
        }
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        self.metrics.record_get(len, t0.elapsed());
        Ok(Bytes::from(buf))
    }

    fn delete(&self, key: &str) -> Result<()> {
        let start = Instant::now();
        let path = self.path_of(key)?;
        match fs::remove_file(&path) {
            Ok(()) => {
                self.metrics.record_delete(start.elapsed());
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.metrics.record_delete(start.elapsed());
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> Result<bool> {
        // An invalid key cannot name an object, so it simply doesn't exist.
        Ok(self.path_of(key).map(|p| p.exists()).unwrap_or(false))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        let Ok(path) = self.path_of(key) else {
            return Ok(None);
        };
        Ok(fs::metadata(path).ok().map(|m| m.len()))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut keys = Vec::new();
        self.walk(&self.root, &mut keys);
        keys.retain(|k| k.starts_with(prefix));
        keys.sort();
        keys
    }

    fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, LocalDiskOss) {
        let dir = std::env::temp_dir().join(format!("slim-disk-oss-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = LocalDiskOss::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn roundtrip_and_listing() {
        let (dir, store) = temp_store("rt");
        store.put("a/b/c", Bytes::from_static(b"hello")).unwrap();
        store.put("a/d", Bytes::from_static(b"x")).unwrap();
        store.put("z", Bytes::from_static(b"y")).unwrap();
        assert_eq!(store.get("a/b/c").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(store.len("a/b/c").unwrap(), Some(5));
        assert!(store.exists("a/d").unwrap());
        assert_eq!(
            store.list("a/"),
            vec!["a/b/c".to_string(), "a/d".to_string()]
        );
        assert_eq!(store.list("").len(), 3);
        let snap = store.metrics_snapshot().unwrap();
        assert_eq!(snap.put_requests, 3);
        assert_eq!(snap.get_requests, 1);
        assert_eq!(snap.bytes_written, 7);
        assert_eq!(snap.bytes_read, 5);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn range_reads_and_errors() {
        let (dir, store) = temp_store("range");
        store.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(
            store.get_range("obj", 3, 4).unwrap(),
            Bytes::from_static(b"3456")
        );
        assert!(matches!(
            store.get_range("obj", 8, 5),
            Err(SlimError::RangeOutOfBounds { .. })
        ));
        // Regression: start + len overflowing u64 must be an error, not a
        // wrapped end that passes the bounds check (or a debug panic).
        assert!(matches!(
            store.get_range("obj", u64::MAX - 2, 5),
            Err(SlimError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            store.get("missing"),
            Err(SlimError::ObjectNotFound(_))
        ));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn delete_is_idempotent_and_overwrite_works() {
        let (dir, store) = temp_store("del");
        store.put("k", Bytes::from_static(b"v1")).unwrap();
        store.put("k", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(store.get("k").unwrap(), Bytes::from_static(b"v2"));
        store.delete("k").unwrap();
        store.delete("k").unwrap();
        assert!(!store.exists("k").unwrap());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_path_escapes() {
        let (dir, store) = temp_store("esc");
        assert!(store.put("../escape", Bytes::new()).is_err());
        assert!(store.put("a//b", Bytes::new()).is_err());
        assert!(store.put("", Bytes::new()).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn survives_reopen() {
        let (dir, store) = temp_store("reopen");
        store
            .put("persist/me", Bytes::from_static(b"data"))
            .unwrap();
        drop(store);
        let store = LocalDiskOss::open(&dir).unwrap();
        assert_eq!(
            store.get("persist/me").unwrap(),
            Bytes::from_static(b"data")
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn whole_slimstore_runs_on_disk() {
        use slim_types::FileId;
        let (dir, _probe) = temp_store("sys");
        let oss: std::sync::Arc<dyn ObjectStore> =
            std::sync::Arc::new(LocalDiskOss::open(&dir).unwrap());
        // Smoke-test the full storage layer contract on real files.
        oss.put("containers/000000000000/data", Bytes::from(vec![7u8; 100]))
            .unwrap();
        assert_eq!(
            oss.get_range("containers/000000000000/data", 10, 5)
                .unwrap(),
            Bytes::from(vec![7u8; 5])
        );
        let _ = FileId::new("x");
        let _ = fs::remove_dir_all(dir);
    }
}
