//! Thread-local endpoint pinning for the simulated multi-endpoint OSS.
//!
//! The simulated [`crate::Oss`] can model several service endpoints (think
//! distinct front-end nodes of one object store: same data, independent
//! health). By default each operation is spread across endpoints round-robin;
//! a caller that needs a *specific* endpoint — the hedging layer racing a
//! primary against a backup, or a test provoking one sick node — pins the
//! current thread with [`pin`] and every OSS call made under the guard
//! resolves to that endpoint.
//!
//! Pinning is advisory and purely a simulation concern: endpoints share the
//! same backing object map, so routing only affects fault injection and
//! health accounting, never data placement.

use std::cell::Cell;

thread_local! {
    static PIN: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The endpoint the current thread is pinned to, if any.
pub fn pinned() -> Option<usize> {
    PIN.with(|p| p.get())
}

/// Pin the current thread to `endpoint` until the guard drops; the previous
/// pin (if any) is restored, so pins nest.
pub fn pin(endpoint: usize) -> PinGuard {
    let previous = PIN.with(|p| p.replace(Some(endpoint)));
    PinGuard { previous }
}

/// Restores the previous endpoint pin on drop.
#[must_use = "dropping the guard immediately unpins the endpoint"]
pub struct PinGuard {
    previous: Option<usize>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        PIN.with(|p| p.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_nests_and_restores() {
        assert_eq!(pinned(), None);
        {
            let _outer = pin(2);
            assert_eq!(pinned(), Some(2));
            {
                let _inner = pin(5);
                assert_eq!(pinned(), Some(5));
            }
            assert_eq!(pinned(), Some(2));
        }
        assert_eq!(pinned(), None);
    }

    #[test]
    fn pin_is_per_thread() {
        let _pin = pin(3);
        let seen = std::thread::spawn(pinned).join().unwrap();
        assert_eq!(seen, None, "fresh threads start unpinned");
    }
}
