//! The OSS network cost model.
//!
//! Models the three properties of cloud object storage that SLIMSTORE's
//! design reacts to (§III-A, §V-A):
//!
//! 1. every request pays a round-trip **latency**;
//! 2. a single transfer is limited to the **per-channel bandwidth**;
//! 3. up to `channels` transfers may run **in parallel**, so aggregate
//!    bandwidth scales with concurrency until the channel limit.
//!
//! Costs are levied by actually sleeping the calling thread, so concurrency
//! effects (prefetch threads hiding latency, parallel restore jobs) emerge
//! naturally. For unit tests [`NetworkModel::instant`] makes every operation
//! free while the byte accounting still happens.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Network cost parameters of the simulated OSS.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Round-trip latency charged to every request.
    pub request_latency: Duration,
    /// Sustained transfer rate of one channel, bytes per second.
    pub channel_bandwidth: u64,
    /// Maximum concurrent transfers before queueing.
    pub channels: usize,
}

impl NetworkModel {
    /// Zero-cost model: no latency, no bandwidth limit (unit tests).
    pub fn instant() -> Self {
        NetworkModel {
            request_latency: Duration::ZERO,
            channel_bandwidth: u64::MAX,
            channels: usize::MAX,
        }
    }

    /// A scaled-down OSS-like model usable inside benchmarks: noticeable
    /// per-request latency, modest single-channel bandwidth, wide parallelism.
    ///
    /// The absolute values are smaller than a real OSS so experiments finish
    /// in seconds; the *ratios* (latency ≫ local access, multi-channel
    /// scaling) match the paper's environment.
    pub fn oss_like() -> Self {
        NetworkModel {
            request_latency: Duration::from_micros(400),
            channel_bandwidth: 400 * 1024 * 1024,
            channels: 64,
        }
    }

    /// Whether this model performs any waiting at all.
    pub fn is_instant(&self) -> bool {
        self.request_latency.is_zero() && self.channel_bandwidth == u64::MAX
    }

    /// The pure transfer duration for `bytes` on one channel.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.channel_bandwidth == u64::MAX {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.channel_bandwidth as f64)
    }

    /// Suggested `backup_pipeline_threads` for a deployment on this network:
    /// the same coupling idea as `FrontendConfig::coupled_to_network`, from
    /// the other side. One backup job cannot usefully keep more uploads in
    /// flight than the network has channels, and past a handful of CPU-side
    /// workers the in-order dedup stage is the bottleneck anyway, so the
    /// suggestion is the channel count clamped to a small constant.
    pub fn suggested_pipeline_threads(&self) -> usize {
        self.channels.clamp(1, 8)
    }
}

/// A counting semaphore bounding concurrent transfers ("channels").
pub(crate) struct ChannelPool {
    capacity: usize,
    state: Mutex<usize>, // channels currently in use
    cond: Condvar,
}

impl ChannelPool {
    pub fn new(capacity: usize) -> Self {
        ChannelPool {
            // A zero-channel pool can never admit anyone and every acquire
            // would block forever; the narrowest meaningful network has one
            // channel.
            capacity: capacity.max(1),
            state: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Acquire a channel, blocking while all are busy.
    pub fn acquire(&self) -> ChannelGuard<'_> {
        if self.capacity == usize::MAX {
            return ChannelGuard { pool: None };
        }
        let mut used = self.state.lock();
        while *used >= self.capacity {
            self.cond.wait(&mut used);
        }
        *used += 1;
        ChannelGuard { pool: Some(self) }
    }
}

/// RAII guard returning the channel on drop.
pub(crate) struct ChannelGuard<'a> {
    pool: Option<&'a ChannelPool>,
}

impl Drop for ChannelGuard<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            let mut used = pool.state.lock();
            *used -= 1;
            pool.cond.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn instant_model_costs_nothing() {
        let m = NetworkModel::instant();
        assert!(m.is_instant());
        assert_eq!(m.transfer_time(u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel {
            request_latency: Duration::ZERO,
            channel_bandwidth: 1024,
            channels: 1,
        };
        assert_eq!(m.transfer_time(1024), Duration::from_secs(1));
        assert_eq!(m.transfer_time(512), Duration::from_millis(500));
    }

    #[test]
    fn suggested_pipeline_threads_tracks_channels() {
        assert_eq!(NetworkModel::oss_like().suggested_pipeline_threads(), 8);
        assert_eq!(NetworkModel::instant().suggested_pipeline_threads(), 8);
        let narrow = NetworkModel {
            request_latency: Duration::ZERO,
            channel_bandwidth: 1024,
            channels: 3,
        };
        assert_eq!(narrow.suggested_pipeline_threads(), 3);
    }

    #[test]
    fn channel_pool_bounds_concurrency() {
        let pool = Arc::new(ChannelPool::new(2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let live = live.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                let _g = pool.acquire();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "semaphore exceeded");
    }

    #[test]
    fn unlimited_pool_never_blocks() {
        let pool = ChannelPool::new(usize::MAX);
        let _a = pool.acquire();
        let _b = pool.acquire();
    }

    #[test]
    fn zero_capacity_pool_is_clamped_to_one() {
        // Regression: `ChannelPool::new(0)` used to build a pool no acquire
        // could ever pass (`used >= capacity` holds at 0), so the first
        // request on a `channels == 0` model deadlocked forever. The clamp
        // makes such a model behave as a single serial channel.
        let pool = ChannelPool::new(0);
        let first = pool.acquire();
        drop(first);
        let _second = pool.acquire();
    }
}
