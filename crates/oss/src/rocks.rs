//! Rocks-OSS: an LSM key-value store whose persistent runs are OSS objects.
//!
//! The paper stores the global fingerprint index in "Rocks-OSS, which is a
//! RocksDB that is adapted to suit the OSS" (§III-B). This module is a
//! from-scratch LSM with the same access profile:
//!
//! * writes buffer in an in-memory **memtable** and flush to immutable,
//!   sorted **SSTable** objects on OSS;
//! * every SSTable carries a **bloom filter** (skips point reads) and a
//!   **sparse index** (one key every few entries), so a point read costs at
//!   most one OSS range read per consulted table;
//! * reads consult the memtable, then tables newest-to-oldest;
//! * **size-tiered compaction** merges all tables into one when the run
//!   count exceeds a threshold, dropping tombstones and shadowed versions;
//! * a **MANIFEST** object makes the store reopenable;
//! * every SSTable object carries a whole-object **CRC32** in its trailer,
//!   verified by [`RocksOss::quarantine_corrupt_tables`] — point reads are
//!   range reads and cannot check it, so integrity is a sweep, not a
//!   per-read cost.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use slim_types::bloom::{hash_bytes, BloomFilter};
use slim_types::codec::{Reader, Writer};
use slim_types::{crc, layout, Result, SlimError};

use crate::store::ObjectStore;

const SST_MAGIC: &[u8; 4] = b"SLST";
const SST_VERSION: u8 = 2;
const MANIFEST_MAGIC: &[u8; 4] = b"SLMF";
const MANIFEST_VERSION: u8 = 1;

/// Tuning knobs for a [`RocksOss`] instance.
#[derive(Debug, Clone)]
pub struct RocksConfig {
    /// Flush the memtable once its payload exceeds this many bytes.
    pub memtable_flush_bytes: usize,
    /// Keep one sparse-index entry every this many SSTable entries.
    pub sparse_index_interval: usize,
    /// Compact when the number of SSTables exceeds this.
    pub max_tables: usize,
    /// Bloom filter target false-positive rate.
    pub bloom_fp_rate: f64,
}

impl Default for RocksConfig {
    fn default() -> Self {
        RocksConfig {
            memtable_flush_bytes: 4 * 1024 * 1024,
            sparse_index_interval: 16,
            max_tables: 8,
            bloom_fp_rate: 0.01,
        }
    }
}

impl RocksConfig {
    /// Small thresholds so unit tests exercise flush and compaction.
    pub fn small_for_tests() -> Self {
        RocksConfig {
            memtable_flush_bytes: 512,
            sparse_index_interval: 4,
            max_tables: 3,
            bloom_fp_rate: 0.01,
        }
    }
}

/// In-memory handle to one SSTable object.
struct SstHandle {
    id: u64,
    object_key: String,
    bloom: BloomFilter,
    /// (first key of block, offset of that entry) every `interval` entries,
    /// plus a final sentinel offset = entries region end.
    sparse_index: Vec<(Vec<u8>, u64)>,
    entries_end: u64,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
}

impl SstHandle {
    /// Whether `key` can possibly be in this table.
    fn may_contain(&self, key: &[u8]) -> bool {
        if key < self.min_key.as_slice() || key > self.max_key.as_slice() {
            return false;
        }
        self.bloom.may_contain(hash_bytes(key))
    }

    /// Byte range of the block that could contain `key`.
    fn block_range(&self, key: &[u8]) -> (u64, u64) {
        // partition_point: first sparse entry with first_key > key.
        let idx = self
            .sparse_index
            .partition_point(|(k, _)| k.as_slice() <= key);
        let start = if idx == 0 {
            0
        } else {
            self.sparse_index[idx - 1].1
        };
        let end = self
            .sparse_index
            .get(idx)
            .map(|(_, off)| *off)
            .unwrap_or(self.entries_end);
        (start, end)
    }
}

struct Inner {
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    mem_bytes: usize,
    /// Oldest first; reads walk it in reverse.
    tables: Vec<SstHandle>,
    next_table_id: u64,
}

/// The Rocks-OSS key-value store.
///
/// ```
/// use std::sync::Arc;
/// use slim_oss::rocks::{RocksConfig, RocksOss};
/// use slim_oss::{ObjectStore, Oss};
/// let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
/// let db = RocksOss::create(oss.clone(), "kv/", RocksConfig::default());
/// db.put(b"fp-1", b"container-9").unwrap();
/// db.flush().unwrap();
/// // A reopened handle replays the MANIFEST and sees the data.
/// let db2 = RocksOss::open(oss, "kv/", RocksConfig::default()).unwrap();
/// assert_eq!(db2.get(b"fp-1").unwrap().as_deref(), Some(&b"container-9"[..]));
/// ```
pub struct RocksOss {
    oss: Arc<dyn ObjectStore>,
    prefix: String,
    config: RocksConfig,
    inner: Mutex<Inner>,
}

impl RocksOss {
    /// Create a fresh store under `prefix` (e.g. `"rocks/global-index/"`).
    pub fn create(
        oss: Arc<dyn ObjectStore>,
        prefix: impl Into<String>,
        config: RocksConfig,
    ) -> Self {
        RocksOss {
            oss,
            prefix: prefix.into(),
            config,
            inner: Mutex::new(Inner {
                memtable: BTreeMap::new(),
                mem_bytes: 0,
                tables: Vec::new(),
                next_table_id: 0,
            }),
        }
    }

    /// Reopen a store persisted under `prefix` by replaying the MANIFEST.
    /// A missing manifest yields an empty store (first open).
    pub fn open(
        oss: Arc<dyn ObjectStore>,
        prefix: impl Into<String>,
        config: RocksConfig,
    ) -> Result<Self> {
        let prefix = prefix.into();
        let store = RocksOss::create(oss.clone(), prefix.clone(), config);
        let manifest_key = format!("{prefix}MANIFEST");
        if !oss.exists(&manifest_key)? {
            return Ok(store);
        }
        let buf = oss.get(&manifest_key)?;
        let mut r = Reader::new(&buf, "rocks manifest");
        r.expect_header(MANIFEST_MAGIC, MANIFEST_VERSION)?;
        let next_table_id = r.u64()?;
        let n = r.u32()? as usize;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u64()?);
        }
        r.finish()?;
        {
            let mut inner = store.inner.lock();
            inner.next_table_id = next_table_id;
            inner.tables = store.load_tables(&ids)?;
        }
        Ok(store)
    }

    fn table_key(&self, id: u64) -> String {
        format!("{}sst/{:012}", self.prefix, id)
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.mem_bytes += key.len() + value.len();
        inner.memtable.insert(key.to_vec(), Some(value.to_vec()));
        if inner.mem_bytes >= self.config.memtable_flush_bytes {
            self.flush_locked(&mut inner)?;
        }
        self.maybe_compact_locked(&mut inner)
    }

    /// Delete a key (tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.mem_bytes += key.len();
        inner.memtable.insert(key.to_vec(), None);
        if inner.mem_bytes >= self.config.memtable_flush_bytes {
            self.flush_locked(&mut inner)?;
        }
        self.maybe_compact_locked(&mut inner)
    }

    /// Point lookup.
    ///
    /// The state mutex is only held while snapshotting the candidate block
    /// ranges — OSS range reads (which sleep under the network model) happen
    /// outside it, so concurrent lookups don't serialize. SSTables are
    /// immutable; if a compaction deletes one mid-read, the lookup retries
    /// against the fresh table set.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        for _attempt in 0..3 {
            // Snapshot the plan under the lock.
            let plan: Vec<(String, u64, u64)> = {
                let inner = self.inner.lock();
                if let Some(entry) = inner.memtable.get(key) {
                    return Ok(entry.clone());
                }
                inner
                    .tables
                    .iter()
                    .rev()
                    .filter(|t| t.may_contain(key))
                    .map(|t| {
                        let (start, end) = t.block_range(key);
                        // saturating_sub: a corrupt sparse index could place
                        // end before start; an empty read then surfaces as a
                        // clean miss instead of an underflow panic.
                        (t.object_key.clone(), start, end.saturating_sub(start))
                    })
                    .collect()
            };
            // Execute it lock-free.
            let mut stale = false;
            let mut result = None;
            for (object_key, start, len) in plan {
                match self.oss.get_range(&object_key, start, len) {
                    Ok(block) => {
                        if let Some(found) = scan_block_for(&block, key)? {
                            result = Some(found);
                            break;
                        }
                    }
                    Err(SlimError::ObjectNotFound(_)) => {
                        // Compacted away mid-read: retry with a new plan.
                        stale = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if stale {
                continue;
            }
            return Ok(result.flatten());
        }
        Err(SlimError::corrupt(
            "rocks get",
            "table set kept changing during lookup (3 retries)",
        ))
    }

    /// All live key/value pairs whose key starts with `prefix`, merged across
    /// the memtable and every table (newest version wins, tombstones hidden).
    /// Reads entire tables — intended for offline (G-node) use.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // One batched sweep over every table's entries region; the results
        // come back oldest-first so newer entries overwrite.
        let ranges: Vec<(String, u64, u64)> = inner
            .tables
            .iter()
            .map(|t| (t.object_key.clone(), 0, t.entries_end))
            .collect();
        for block in self.oss.get_range_many(&ranges) {
            for (k, v) in decode_entries(&block?)? {
                if k.starts_with(prefix) {
                    merged.insert(k, v);
                }
            }
        }
        for (k, v) in &inner.memtable {
            if k.starts_with(prefix) {
                merged.insert(k.clone(), v.clone());
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Force-flush the memtable to a new SSTable.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    /// Force a full compaction (merge all tables into one).
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)?;
        self.compact_locked(&mut inner)
    }

    /// Number of SSTables currently live.
    pub fn table_count(&self) -> usize {
        self.inner.lock().tables.len()
    }

    /// Approximate bytes buffered in the memtable.
    pub fn memtable_bytes(&self) -> usize {
        self.inner.lock().mem_bytes
    }

    fn maybe_compact_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.tables.len() > self.config.max_tables {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            std::mem::take(&mut inner.memtable).into_iter().collect();
        inner.mem_bytes = 0;
        let id = inner.next_table_id;
        inner.next_table_id += 1;
        let handle = self.write_table(id, &entries)?;
        inner.tables.push(handle);
        self.persist_manifest(inner)?;
        Ok(())
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.tables.len() <= 1 {
            return Ok(());
        }
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let old: Vec<SstHandle> = std::mem::take(&mut inner.tables);
        // Compaction reads every input table in full — the dominant I/O of
        // the offline pass — so fetch all entries regions as one batch.
        let ranges: Vec<(String, u64, u64)> = old
            .iter()
            .map(|t| (t.object_key.clone(), 0, t.entries_end))
            .collect();
        for block in self.oss.get_range_many(&ranges) {
            for (k, v) in decode_entries(&block?)? {
                merged.insert(k, v); // newer tables come later → overwrite
            }
        }
        // Tombstones can be dropped entirely: after a full merge nothing
        // older can resurrect the key.
        let live: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        if !live.is_empty() {
            let id = inner.next_table_id;
            inner.next_table_id += 1;
            let handle = self.write_table(id, &live)?;
            inner.tables.push(handle);
        }
        self.persist_manifest(inner)?;
        // The manifest flip above is the commit point: the inputs are dead
        // the moment it lands. Deleting them is garbage collection, so a
        // failed delete must not fail a compaction that already succeeded —
        // stragglers sit unreferenced until `retire_unreferenced_tables`
        // sweeps them on recovery.
        let dead: Vec<String> = old.into_iter().map(|t| t.object_key).collect();
        let _ = self.oss.delete_many(&dead);
        Ok(())
    }

    /// Delete SSTable objects under this store's prefix that the durable
    /// manifest no longer references — leftovers of a compaction whose
    /// post-flip deletes failed. Returns how many objects were retired.
    pub fn retire_unreferenced_tables(&self) -> Result<usize> {
        let inner = self.inner.lock();
        let live: HashSet<&str> = inner.tables.iter().map(|t| t.object_key.as_str()).collect();
        let sst_prefix = format!("{}sst/", self.prefix);
        let dead: Vec<String> = self
            .oss
            .list(&sst_prefix)
            .into_iter()
            .filter(|k| !live.contains(k.as_str()))
            .collect();
        for result in self.oss.delete_many(&dead) {
            result?;
        }
        Ok(dead.len())
    }

    /// Verify the whole-object CRC32 of every live SSTable.
    ///
    /// Corrupted (or missing) tables are dropped from the table set, the
    /// manifest is re-persisted without them, and the damaged bytes are
    /// parked under [`layout::QUARANTINE_PREFIX`] for forensics. Returns the
    /// original object keys of every quarantined table; the entries they
    /// held are *lost* from the index and the caller is expected to
    /// re-derive them from primary data (container metadata).
    pub fn quarantine_corrupt_tables(&self) -> Result<Vec<String>> {
        let mut inner = self.inner.lock();
        let keys: Vec<String> = inner.tables.iter().map(|t| t.object_key.clone()).collect();
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut bad = Vec::new();
        for (key, object) in keys.iter().zip(self.oss.get_many(&keys)) {
            match object {
                Ok(buf) if sst_object_intact(&buf) => {}
                Ok(buf) => {
                    self.oss.put(&layout::quarantine_key(key), buf)?;
                    self.oss.delete(key)?;
                    bad.push(key.clone());
                }
                Err(SlimError::ObjectNotFound(_)) => bad.push(key.clone()),
                Err(e) => return Err(e),
            }
        }
        if !bad.is_empty() {
            inner.tables.retain(|t| !bad.contains(&t.object_key));
            self.persist_manifest(&inner)?;
        }
        Ok(bad)
    }

    fn persist_manifest(&self, inner: &Inner) -> Result<()> {
        let mut w = Writer::with_header(MANIFEST_MAGIC, MANIFEST_VERSION);
        w.u64(inner.next_table_id);
        w.u32(inner.tables.len() as u32);
        for t in &inner.tables {
            w.u64(t.id);
        }
        self.oss
            .put(&format!("{}MANIFEST", self.prefix), w.freeze())
    }

    /// Serialize sorted entries into an SSTable object and return its handle.
    ///
    /// Layout: entries region | footer | u32 crc32 | u64 footer_offset.
    /// Footer: header | min/max key | entry spans of sparse index | bloom.
    /// The CRC covers everything before the 12-byte trailer; the trailing
    /// footer offset itself is validated structurally on load (bounds check
    /// plus footer magic), since the CRC cannot cover bytes written after it.
    fn write_table(&self, id: u64, entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<SstHandle> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut body = Writer::new();
        let mut sparse_index = Vec::new();
        let mut bloom = BloomFilter::with_rate(entries.len(), self.config.bloom_fp_rate);
        for (i, (k, v)) in entries.iter().enumerate() {
            if i % self.config.sparse_index_interval == 0 {
                sparse_index.push((k.clone(), body.len() as u64));
            }
            bloom.insert(hash_bytes(k));
            encode_entry(&mut body, k, v.as_deref());
        }
        let entries_end = body.len() as u64;
        let min_key = entries.first().map(|(k, _)| k.clone()).unwrap_or_default();
        let max_key = entries.last().map(|(k, _)| k.clone()).unwrap_or_default();

        let mut footer = Writer::with_header(SST_MAGIC, SST_VERSION);
        footer.bytes(&min_key);
        footer.bytes(&max_key);
        footer.u32(sparse_index.len() as u32);
        for (k, off) in &sparse_index {
            footer.bytes(k);
            footer.u64(*off);
        }
        footer.bytes(&bloom.encode());

        let body = body.freeze();
        let footer = footer.freeze();
        let mut object = bytes::BytesMut::with_capacity(body.len() + footer.len() + 12);
        object.extend_from_slice(&body);
        object.extend_from_slice(&footer);
        let checksum = crc::crc32(&object);
        object.extend_from_slice(&checksum.to_le_bytes());
        object.extend_from_slice(&entries_end.to_le_bytes());
        let object_key = self.table_key(id);
        self.oss.put(&object_key, object.freeze())?;
        Ok(SstHandle {
            id,
            object_key,
            bloom,
            sparse_index,
            entries_end,
            min_key,
            max_key,
        })
    }

    /// Load table handles for `ids`, in order, by reading object footers.
    ///
    /// The OSS traffic is batched into three sweeps across all tables — the
    /// length probes, the footer-offset words, and the footers themselves —
    /// so reopening a store with many runs pays three round-trip latencies
    /// instead of three per table.
    fn load_tables(&self, ids: &[u64]) -> Result<Vec<SstHandle>> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let keys: Vec<String> = ids.iter().map(|id| self.table_key(*id)).collect();
        let mut totals = Vec::with_capacity(ids.len());
        for (key, total) in keys.iter().zip(self.oss.len_many(&keys)) {
            let total = total?.ok_or_else(|| SlimError::ObjectNotFound(key.clone()))?;
            if total < 12 {
                return Err(SlimError::corrupt("sstable", "object too small"));
            }
            totals.push(total);
        }
        let tail_ranges: Vec<(String, u64, u64)> = keys
            .iter()
            .zip(&totals)
            .map(|(key, total)| (key.clone(), total - 8, 8))
            .collect();
        let mut entries_ends = Vec::with_capacity(ids.len());
        for (tail, total) in self
            .oss
            .get_range_many(&tail_ranges)
            .into_iter()
            .zip(&totals)
        {
            let tail = tail?;
            let tail: [u8; 8] = tail[..]
                .try_into()
                .map_err(|_| SlimError::corrupt("sstable", "short footer length word"))?;
            let entries_end = u64::from_le_bytes(tail);
            if entries_end > total - 12 {
                return Err(SlimError::corrupt("sstable", "bad footer offset"));
            }
            entries_ends.push(entries_end);
        }
        let footer_ranges: Vec<(String, u64, u64)> = keys
            .iter()
            .zip(&totals)
            .zip(&entries_ends)
            .map(|((key, total), end)| (key.clone(), *end, total - 12 - end))
            .collect();
        let footers = self.oss.get_range_many(&footer_ranges);
        let mut handles = Vec::with_capacity(ids.len());
        for (((id, key), entries_end), footer) in
            ids.iter().zip(keys).zip(entries_ends).zip(footers)
        {
            handles.push(parse_sst_footer(*id, key, entries_end, &footer?)?);
        }
        Ok(handles)
    }
}

/// Whole-object SSTable integrity check: the stored CRC32 must match the
/// bytes before the 12-byte trailer, and the trailing footer offset must
/// stay inside them. Truncation, bit flips and short objects all fail here.
fn sst_object_intact(buf: &[u8]) -> bool {
    if buf.len() < 12 {
        return false;
    }
    let crc_at = buf.len() - 12;
    let stored = u32::from_le_bytes(buf[crc_at..crc_at + 4].try_into().unwrap());
    let entries_end = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    entries_end <= crc_at as u64 && crc::crc32(&buf[..crc_at]) == stored
}

/// Parse an SSTable footer region into a handle.
fn parse_sst_footer(
    id: u64,
    object_key: String,
    entries_end: u64,
    footer: &[u8],
) -> Result<SstHandle> {
    let mut r = Reader::new(footer, "sstable footer");
    r.expect_header(SST_MAGIC, SST_VERSION)?;
    let min_key = r.bytes()?;
    let max_key = r.bytes()?;
    let n = r.u32()? as usize;
    let mut sparse_index = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.bytes()?;
        let off = r.u64()?;
        sparse_index.push((k, off));
    }
    let bloom_bytes = r.bytes()?;
    r.finish()?;
    let bloom = BloomFilter::decode(&bloom_bytes)
        .ok_or_else(|| SlimError::corrupt("sstable", "bad bloom encoding"))?;
    Ok(SstHandle {
        id,
        object_key,
        bloom,
        sparse_index,
        entries_end,
        min_key,
        max_key,
    })
}

fn encode_entry(w: &mut Writer, key: &[u8], value: Option<&[u8]>) {
    w.bytes(key);
    match value {
        Some(v) => {
            w.u8(1);
            w.bytes(v);
        }
        None => {
            w.u8(0);
        }
    }
}

/// Decode all entries in a block.
fn decode_entries(block: &[u8]) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
    let mut r = Reader::new(block, "sstable block");
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let key = r.bytes()?;
        let value = match r.u8()? {
            0 => None,
            _ => Some(r.bytes()?),
        };
        out.push((key, value));
    }
    Ok(out)
}

/// Scan a block for `key`. Returns `Some(Some(v))` if live, `Some(None)` if
/// tombstoned, `None` if absent from the block.
fn scan_block_for(block: &[u8], key: &[u8]) -> Result<Option<Option<Vec<u8>>>> {
    let mut r = Reader::new(block, "sstable block");
    while r.remaining() > 0 {
        let k = r.bytes()?;
        let value = match r.u8()? {
            0 => None,
            _ => Some(r.bytes()?),
        };
        if k == key {
            return Ok(Some(value));
        }
        if k.as_slice() > key {
            return Ok(None); // sorted: passed the slot
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Oss;

    fn new_store() -> RocksOss {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        RocksOss::create(oss, "rocks/", RocksConfig::small_for_tests())
    }

    #[test]
    fn put_get_memtable_only() {
        let db = new_store();
        db.put(b"k1", b"v1").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(db.get(b"k2").unwrap(), None);
    }

    #[test]
    fn get_after_flush_reads_sstable() {
        let db = new_store();
        for i in 0..50u32 {
            db.put(
                format!("key{i:03}").as_bytes(),
                format!("val{i}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        assert!(db.table_count() >= 1);
        assert_eq!(db.memtable_bytes(), 0);
        for i in 0..50u32 {
            assert_eq!(
                db.get(format!("key{i:03}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes()),
                "key{i}"
            );
        }
        assert_eq!(db.get(b"key999").unwrap(), None);
    }

    #[test]
    fn newer_write_shadows_older_table() {
        let db = new_store();
        db.put(b"k", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"new").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn tombstones_hide_older_values() {
        let db = new_store();
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.compact().unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
    }

    #[test]
    fn compaction_merges_and_prunes() {
        let db = new_store();
        for round in 0..5u32 {
            for i in 0..20u32 {
                db.put(
                    format!("key{i:03}").as_bytes(),
                    format!("r{round}v{i}").as_bytes(),
                )
                .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        for i in 0..20u32 {
            assert_eq!(
                db.get(format!("key{i:03}").as_bytes()).unwrap(),
                Some(format!("r4v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn auto_flush_and_auto_compact() {
        let db = new_store();
        // 512-byte memtable + 3-table cap: a few hundred writes must trigger
        // both automatically.
        for i in 0..400u32 {
            db.put(format!("key{i:06}").as_bytes(), &[7u8; 32]).unwrap();
        }
        assert!(db.table_count() <= RocksConfig::small_for_tests().max_tables + 1);
        for i in (0..400u32).step_by(37) {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(vec![7u8; 32])
            );
        }
    }

    #[test]
    fn scan_prefix_merges_layers() {
        let db = new_store();
        db.put(b"a/1", b"1").unwrap();
        db.put(b"a/2", b"2").unwrap();
        db.put(b"b/1", b"x").unwrap();
        db.flush().unwrap();
        db.put(b"a/2", b"2new").unwrap();
        db.delete(b"a/1").unwrap();
        db.put(b"a/3", b"3").unwrap();
        let rows = db.scan_prefix(b"a/").unwrap();
        assert_eq!(
            rows,
            vec![
                (b"a/2".to_vec(), b"2new".to_vec()),
                (b"a/3".to_vec(), b"3".to_vec()),
            ]
        );
    }

    #[test]
    fn reopen_from_manifest() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        {
            let db = RocksOss::create(oss.clone(), "r/", RocksConfig::small_for_tests());
            for i in 0..60u32 {
                db.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let db = RocksOss::open(oss, "r/", RocksConfig::small_for_tests()).unwrap();
        for i in 0..60u32 {
            assert_eq!(
                db.get(format!("k{i:03}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "k{i:03} after reopen"
            );
        }
    }

    #[test]
    fn reopen_with_many_tables_loads_all_handles() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        {
            let db = RocksOss::create(oss.clone(), "m/", RocksConfig::small_for_tests());
            for t in 0..3u32 {
                for i in 0..10u32 {
                    db.put(
                        format!("t{t}k{i}").as_bytes(),
                        format!("v{t}.{i}").as_bytes(),
                    )
                    .unwrap();
                }
                db.flush().unwrap();
            }
        }
        let db = RocksOss::open(oss, "m/", RocksConfig::small_for_tests()).unwrap();
        assert_eq!(db.table_count(), 3, "all runs loaded via the batched path");
        for t in 0..3u32 {
            for i in 0..10u32 {
                assert_eq!(
                    db.get(format!("t{t}k{i}").as_bytes()).unwrap(),
                    Some(format!("v{t}.{i}").into_bytes())
                );
            }
        }
    }

    #[test]
    fn compaction_survives_failed_input_deletes_and_recovery_retires_them() {
        // Regression: a failed delete of a dead input table used to fail the
        // whole compaction, even though the merged run and its manifest were
        // already durable — and the undeleted object leaked forever.
        let oss = Oss::in_memory();
        let store: Arc<dyn ObjectStore> = Arc::new(oss.clone());
        let db = RocksOss::create(store, "r/", RocksConfig::small_for_tests());
        for t in 0..2u32 {
            for i in 0..10u32 {
                db.put(format!("t{t}k{i}").as_bytes(), b"v").unwrap();
            }
            db.flush().unwrap();
        }
        assert_eq!(db.table_count(), 2);
        // Ops on the sst prefix during compact: 2 input reads, 1 merged-run
        // write, then the input deletes. Fail the first delete.
        oss.inject_fault(crate::fault::FaultPlan::NthOnPrefix {
            prefix: "r/sst/".into(),
            nth: 4,
        });
        db.compact().unwrap();
        oss.clear_faults();
        assert_eq!(db.table_count(), 1);
        // The undeleted input is unreferenced by the durable manifest; the
        // recovery sweep retires it.
        assert_eq!(oss.list("r/sst/").len(), 2);
        assert_eq!(db.retire_unreferenced_tables().unwrap(), 1);
        assert_eq!(oss.list("r/sst/").len(), 1);
        assert_eq!(db.retire_unreferenced_tables().unwrap(), 0, "idempotent");
        for t in 0..2u32 {
            for i in 0..10u32 {
                assert_eq!(
                    db.get(format!("t{t}k{i}").as_bytes()).unwrap(),
                    Some(b"v".to_vec())
                );
            }
        }
    }

    #[test]
    fn corrupt_sstable_is_quarantined_not_served() {
        let oss = Oss::in_memory();
        let store: Arc<dyn ObjectStore> = Arc::new(oss.clone());
        let db = RocksOss::create(store, "q/", RocksConfig::small_for_tests());
        for i in 0..20u32 {
            db.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.table_count(), 1);
        assert_eq!(
            db.quarantine_corrupt_tables().unwrap(),
            Vec::<String>::new(),
            "intact table passes the sweep"
        );
        let key = oss.list("q/sst/")[0].clone();
        let mut buf = oss.get(&key).unwrap().to_vec();
        buf[10] ^= 0x10;
        oss.put(&key, bytes::Bytes::from(buf)).unwrap();
        let bad = db.quarantine_corrupt_tables().unwrap();
        assert_eq!(bad, vec![key.clone()]);
        assert_eq!(db.table_count(), 0);
        assert!(oss.exists(&layout::quarantine_key(&key)).unwrap());
        assert!(!oss.exists(&key).unwrap());
        // The drop is durable: a reopen agrees.
        let db2 = RocksOss::open(Arc::new(oss), "q/", RocksConfig::small_for_tests()).unwrap();
        assert_eq!(db2.table_count(), 0);
        assert_eq!(db2.get(b"k00").unwrap(), None);
    }

    #[test]
    fn truncated_sstable_fails_the_integrity_sweep() {
        let oss = Oss::in_memory();
        let store: Arc<dyn ObjectStore> = Arc::new(oss.clone());
        let db = RocksOss::create(store, "t/", RocksConfig::small_for_tests());
        for i in 0..10u32 {
            db.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        let key = oss.list("t/sst/")[0].clone();
        let buf = oss.get(&key).unwrap();
        oss.put(&key, buf.slice(..buf.len() - 3)).unwrap();
        assert_eq!(db.quarantine_corrupt_tables().unwrap(), vec![key]);
        assert_eq!(db.table_count(), 0);
    }

    #[test]
    fn open_missing_manifest_is_empty_store() {
        let oss: Arc<dyn ObjectStore> = Arc::new(Oss::in_memory());
        let db = RocksOss::open(oss, "fresh/", RocksConfig::default()).unwrap();
        assert_eq!(db.get(b"anything").unwrap(), None);
        assert_eq!(db.table_count(), 0);
    }

    #[test]
    fn large_random_workload_matches_btreemap_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let db = new_store();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..2000 {
            let key = format!("key{:04}", rng.gen_range(0..300)).into_bytes();
            match rng.gen_range(0..10) {
                0..=6 => {
                    let val = format!("v{}", rng.gen::<u32>()).into_bytes();
                    db.put(&key, &val).unwrap();
                    model.insert(key, val);
                }
                7..=8 => {
                    db.delete(&key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned());
                }
            }
        }
        db.compact().unwrap();
        for (k, v) in &model {
            assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
        let all = db.scan_prefix(b"key").unwrap();
        assert_eq!(all.len(), model.len());
    }
}
