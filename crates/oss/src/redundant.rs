//! Self-healing redundancy wrapper over any [`ObjectStore`].
//!
//! Deduplication concentrates risk: one container can hold the only copy of
//! chunks referenced by many backup versions, so with plain CRC framing a
//! single bit-flip is an honest-but-permanent loss. [`RedundantStore`] turns
//! detection into recovery. It serves every key class transparently, but for
//! *protected* keys (container objects) a full `get`/`get_many` that comes
//! back corrupt or missing is reconstructed from the redundancy plane and
//! served byte-identical, and the primary is rewritten in place
//! (read-repair) so the damage does not survive the read.
//!
//! Reconstruction sources, in order of preference:
//!
//! 1. a full replica under [`layout::REPLICA_PREFIX`];
//! 2. an intact copy parked under [`layout::QUARANTINE_PREFIX`] (integrity
//!    sweeps quarantine whole containers, so one corrupt twin often drags an
//!    intact sibling object with it);
//! 3. XOR parity: the group manifest under [`layout::PARITY_GROUP_PREFIX`]
//!    names the members, and the missing member is the XOR of the parity
//!    block with every other member, truncated to its recorded length.
//!
//! Every reconstruction is verified against the object's own CRC trailer
//! before it is trusted or served, so a stale replica or a mismatched group
//! can never resurrect plausible garbage. All steps are individual OSS
//! operations: fault plans (and therefore kill-point sweeps) cover each one,
//! and every mutation is an idempotent rewrite of byte-identical data, so a
//! crash at any step leaves a state the next read or repair sweep converges
//! from.
//!
//! *Which* keys carry which protection is decided elsewhere: the G-node's
//! dedup-aware policy writes replicas and seals parity groups during
//! maintenance. This wrapper only consumes them.

use std::sync::Arc;

use bytes::Bytes;
use slim_telemetry::{Counter, Registry, Scope};
use slim_types::redundancy::reconstruct_member;
use slim_types::{crc, layout, ParityGroup, Result, SlimError};

use crate::store::ObjectStore;

/// Whether the redundancy plane protects `key` (container objects only;
/// recipes and manifests are tiny and versioned, the index self-repairs).
pub fn is_protected(key: &str) -> bool {
    key.starts_with(layout::CONTAINER_PREFIX)
}

/// Where a successful reconstruction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSource {
    /// Full replica under `redundancy/replica/`.
    Replica,
    /// Intact copy parked under `quarantine/`.
    Quarantine,
    /// XOR of the parity block with the other group members.
    Parity,
}

/// Counters of the self-healing read path, registered as
/// `oss.redundancy.*` when constructed from the shared `oss` scope.
#[derive(Debug, Clone)]
pub struct RedundancyMetrics {
    /// Successful reconstructions served to callers.
    pub reconstructions: Counter,
    /// Reconstructions satisfied by a full replica.
    pub replica_hits: Counter,
    /// Reconstructions satisfied by an intact quarantined copy.
    pub quarantine_hits: Counter,
    /// Reconstructions that XOR-ed a parity group back together.
    pub parity_rebuilds: Counter,
    /// Read-repairs durably rewritten over the damaged primary.
    pub repairs_written: Counter,
    /// Read-repair rewrites that failed (served data was still good; the
    /// next read or repair sweep retries).
    pub repair_failures: Counter,
    /// Damaged protected reads with no usable reconstruction source.
    pub unrepairable_reads: Counter,
}

impl RedundancyMetrics {
    /// Register (or re-attach to) the counters under `scope` (canonically
    /// the shared `"oss"` scope).
    pub fn new(scope: &Scope) -> Self {
        RedundancyMetrics {
            reconstructions: scope.counter("redundancy.reconstructions"),
            replica_hits: scope.counter("redundancy.replica_hits"),
            quarantine_hits: scope.counter("redundancy.quarantine_hits"),
            parity_rebuilds: scope.counter("redundancy.parity_rebuilds"),
            repairs_written: scope.counter("redundancy.repairs_written"),
            repair_failures: scope.counter("redundancy.repair_failures"),
            unrepairable_reads: scope.counter("redundancy.unrepairable_reads"),
        }
    }
}

impl Default for RedundancyMetrics {
    fn default() -> Self {
        RedundancyMetrics::new(&Registry::new().scope("oss"))
    }
}

/// Read one candidate source and accept it only if its CRC trailer checks
/// out. Any failure (missing, transient, corrupt) disqualifies the source.
fn intact_copy(store: &dyn ObjectStore, key: &str) -> Option<Bytes> {
    match store.get_raw(key) {
        Ok(buf) if crc::verified_payload_len(&buf, "redundancy source").is_ok() => Some(buf),
        _ => None,
    }
}

/// Best available bytes for a parity-group member: primary, then replica,
/// then quarantined copy — whichever first passes its CRC check.
fn member_bytes(store: &dyn ObjectStore, key: &str) -> Option<Bytes> {
    intact_copy(store, key)
        .or_else(|| intact_copy(store, &layout::replica_key(key)))
        .or_else(|| intact_copy(store, &layout::quarantine_key(key)))
}

/// Reconstruct the sealed bytes of `key` from the redundancy plane, without
/// touching the (possibly damaged) primary. Returns `Ok(None)` when no
/// source can produce a CRC-verified copy. Never heals in place — callers
/// decide whether to rewrite the primary.
pub fn reconstruct_object(
    store: &dyn ObjectStore,
    key: &str,
) -> Result<Option<(Bytes, RepairSource)>> {
    if let Some(buf) = intact_copy(store, &layout::replica_key(key)) {
        return Ok(Some((buf, RepairSource::Replica)));
    }
    if let Some(buf) = intact_copy(store, &layout::quarantine_key(key)) {
        return Ok(Some((buf, RepairSource::Quarantine)));
    }
    // Parity: scan group manifests for one naming this key. Groups are few
    // and heals are rare, so the scan is an acceptable cold-path cost.
    for gkey in store.list(layout::PARITY_GROUP_PREFIX) {
        let Ok(buf) = store.get_raw(&gkey) else {
            continue;
        };
        let Ok(group) = ParityGroup::decode(&buf) else {
            continue; // corrupt manifest: useless as a source, skip
        };
        let Some(target) = group.member(key) else {
            continue;
        };
        let Some(parity) = intact_copy(store, &layout::parity_data(group.id)) else {
            continue;
        };
        let Ok(parity_payload) = crc::unseal(&parity, "parity block") else {
            continue;
        };
        let mut others = Vec::with_capacity(group.members.len() - 1);
        let mut complete = true;
        for m in group.members.iter().filter(|m| m.key != key) {
            match member_bytes(store, &m.key) {
                Some(buf) => others.push(buf),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        let rebuilt = reconstruct_member(
            &parity_payload,
            others.iter().map(|b| b.as_ref()),
            target.len as usize,
        );
        // The rebuilt object carries its own CRC trailer: verify before
        // trusting, so stale members or a mismatched manifest cannot
        // resurrect plausible garbage.
        if crc::verified_payload_len(&rebuilt, "reconstructed object").is_ok() {
            return Ok(Some((Bytes::from(rebuilt), RepairSource::Parity)));
        }
    }
    Ok(None)
}

/// A self-healing [`ObjectStore`] wrapper (see the module docs).
pub struct RedundantStore {
    inner: Arc<dyn ObjectStore>,
    metrics: RedundancyMetrics,
}

impl RedundantStore {
    /// Wrap `inner` with a private metric registry.
    pub fn new(inner: Arc<dyn ObjectStore>) -> Self {
        RedundantStore {
            inner,
            metrics: RedundancyMetrics::default(),
        }
    }

    /// Wrap `inner`, registering the `redundancy.*` counters under `scope`.
    pub fn with_telemetry(inner: Arc<dyn ObjectStore>, scope: &Scope) -> Self {
        RedundantStore {
            inner,
            metrics: RedundancyMetrics::new(scope),
        }
    }

    /// Live counters of the healing read path.
    pub fn metrics(&self) -> &RedundancyMetrics {
        &self.metrics
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn ObjectStore> {
        &self.inner
    }

    /// Serve a damaged protected read: reconstruct, read-repair the
    /// primary, and return the verified bytes; fall back to the primary's
    /// own (corrupt or missing) outcome when no source helps.
    fn heal_read(&self, key: &str, fallback: Result<Bytes>) -> Result<Bytes> {
        match reconstruct_object(self.inner.as_ref(), key) {
            Ok(Some((bytes, source))) => {
                self.metrics.reconstructions.inc();
                match source {
                    RepairSource::Replica => self.metrics.replica_hits.inc(),
                    RepairSource::Quarantine => self.metrics.quarantine_hits.inc(),
                    RepairSource::Parity => self.metrics.parity_rebuilds.inc(),
                }
                // Read-repair, decoupled from serving: the rewrite is an
                // idempotent put of byte-identical sealed data, so a failure
                // (or a kill-point) here only defers healing to the next
                // read or repair sweep — the caller still gets good bytes.
                match self.inner.put(key, bytes.clone()) {
                    Ok(()) => self.metrics.repairs_written.inc(),
                    Err(_) => self.metrics.repair_failures.inc(),
                }
                Ok(bytes)
            }
            _ => {
                self.metrics.unrepairable_reads.inc();
                fallback
            }
        }
    }

    /// Whether this read outcome of a protected key needs healing.
    fn damaged(item: &Result<Bytes>) -> bool {
        match item {
            Ok(buf) => crc::verified_payload_len(buf, "container object").is_err(),
            Err(SlimError::ObjectNotFound(_)) => true,
            Err(_) => false,
        }
    }
}

impl ObjectStore for RedundantStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.inner.put(key, value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let outcome = self.inner.get(key);
        if is_protected(key) && Self::damaged(&outcome) {
            self.heal_read(key, outcome)
        } else {
            outcome
        }
    }

    fn get_raw(&self, key: &str) -> Result<Bytes> {
        self.inner.get_raw(key)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        // Range reads cannot be CRC-verified without the whole object, so
        // they pass through; whole-object reads and repair sweeps heal.
        self.inner.get_range(key, start, len)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.inner.exists(key)
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.inner.len(key)
    }

    fn get_many(&self, keys: &[String]) -> Vec<Result<Bytes>> {
        // One batched pass against the inner store first (identical fault
        // schedule and counters to the sequential loop), then heal the
        // damaged items individually on the cold path.
        let mut out = self.inner.get_many(keys);
        for (key, item) in keys.iter().zip(out.iter_mut()) {
            if is_protected(key) && Self::damaged(item) {
                let fallback = std::mem::replace(item, Err(SlimError::ObjectNotFound(key.clone())));
                *item = self.heal_read(key, fallback);
            }
        }
        out
    }

    fn get_range_many(&self, ranges: &[(String, u64, u64)]) -> Vec<Result<Bytes>> {
        self.inner.get_range_many(ranges)
    }

    fn len_many(&self, keys: &[String]) -> Vec<Result<Option<u64>>> {
        self.inner.len_many(keys)
    }

    fn delete_many(&self, keys: &[String]) -> Vec<Result<()>> {
        self.inner.delete_many(keys)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        self.inner.metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oss;
    use slim_types::redundancy::{parity_of, GroupMember};

    fn sealed(tag: u8, len: usize) -> Bytes {
        crc::seal(&vec![tag; len])
    }

    fn data_key(n: u64) -> String {
        layout::container_data(slim_types::ContainerId(n))
    }

    fn store() -> (Oss, RedundantStore) {
        let oss = Oss::in_memory();
        let wrapped = RedundantStore::new(Arc::new(oss.clone()));
        (oss, wrapped)
    }

    fn seal_group(oss: &Oss, gid: u64, members: &[(String, Bytes)]) {
        let parity = parity_of(members.iter().map(|(_, b)| b.as_ref()));
        oss.put(&layout::parity_data(gid), crc::seal(&parity))
            .unwrap();
        let manifest = ParityGroup {
            id: gid,
            members: members
                .iter()
                .map(|(k, b)| GroupMember {
                    key: k.clone(),
                    len: b.len() as u64,
                })
                .collect(),
        };
        oss.put(&layout::parity_group_manifest(gid), manifest.encode())
            .unwrap();
    }

    #[test]
    fn corrupt_primary_heals_from_replica() {
        let (oss, wrapped) = store();
        let key = data_key(1);
        let good = sealed(0xAB, 100);
        oss.put(&key, good.clone()).unwrap();
        oss.put(&layout::replica_key(&key), good.clone()).unwrap();
        // Flip a payload byte in the primary.
        let mut bad = good.to_vec();
        bad[10] ^= 0xFF;
        oss.put(&key, Bytes::from(bad)).unwrap();

        assert_eq!(wrapped.get(&key).unwrap(), good, "served byte-identical");
        assert_eq!(oss.get(&key).unwrap(), good, "primary read-repaired");
        assert_eq!(wrapped.metrics().reconstructions.get(), 1);
        assert_eq!(wrapped.metrics().replica_hits.get(), 1);
        assert_eq!(wrapped.metrics().repairs_written.get(), 1);
        // Subsequent reads are clean and cost no further healing.
        assert_eq!(wrapped.get(&key).unwrap(), good);
        assert_eq!(wrapped.metrics().reconstructions.get(), 1);
    }

    #[test]
    fn missing_primary_heals_from_parity_group() {
        let (oss, wrapped) = store();
        let members: Vec<(String, Bytes)> = (1..=3)
            .map(|n| (data_key(n), sealed(n as u8, 50 + n as usize * 7)))
            .collect();
        for (k, b) in &members {
            oss.put(k, b.clone()).unwrap();
        }
        seal_group(&oss, 0, &members);

        for (k, b) in &members {
            oss.delete(k).unwrap();
            assert_eq!(&wrapped.get(k).unwrap(), b, "member {k} reconstructed");
            assert_eq!(oss.get(k).unwrap(), b, "member {k} read-repaired");
        }
        assert_eq!(wrapped.metrics().parity_rebuilds.get(), 3);
    }

    #[test]
    fn intact_quarantined_copy_heals_missing_primary() {
        let (oss, wrapped) = store();
        let key = data_key(4);
        let good = sealed(0x44, 64);
        oss.put(&layout::quarantine_key(&key), good.clone())
            .unwrap();

        assert_eq!(wrapped.get(&key).unwrap(), good);
        assert_eq!(wrapped.metrics().quarantine_hits.get(), 1);
        // The quarantined copy is left in place for `scrub --purge`.
        assert!(oss.exists(&layout::quarantine_key(&key)).unwrap());
    }

    #[test]
    fn unprotected_and_unrepairable_outcomes_pass_through() {
        let (oss, wrapped) = store();
        // Unprotected key class: corrupt bytes are served as stored.
        let mangled = Bytes::from_static(b"not a sealed object");
        oss.put("recipes/f/00000001", mangled.clone()).unwrap();
        assert_eq!(wrapped.get("recipes/f/00000001").unwrap(), mangled);
        // Protected but without any redundancy: original outcomes survive.
        let key = data_key(9);
        assert!(matches!(
            wrapped.get(&key),
            Err(SlimError::ObjectNotFound(_))
        ));
        let corrupt = Bytes::from_static(b"garbage");
        oss.put(&key, corrupt.clone()).unwrap();
        assert_eq!(wrapped.get(&key).unwrap(), corrupt);
        assert_eq!(wrapped.metrics().unrepairable_reads.get(), 2);
        // get_raw never heals.
        oss.delete(&key).unwrap();
        oss.put(&layout::replica_key(&key), sealed(9, 10)).unwrap();
        assert!(wrapped.get_raw(&key).is_err());
    }

    #[test]
    fn get_many_heals_damaged_items_in_place() {
        let (oss, wrapped) = store();
        let members: Vec<(String, Bytes)> = (1..=3)
            .map(|n| (data_key(n), sealed(n as u8, 40)))
            .collect();
        for (k, b) in &members {
            oss.put(k, b.clone()).unwrap();
        }
        seal_group(&oss, 0, &members);
        let replica_only = data_key(7);
        let good = sealed(0x77, 33);
        oss.put(&replica_only, good.clone()).unwrap();
        oss.put(&layout::replica_key(&replica_only), good.clone())
            .unwrap();

        // Damage one parity member and the replicated object.
        oss.delete(&members[1].0).unwrap();
        let mut bad = good.to_vec();
        bad[5] ^= 0x01;
        oss.put(&replica_only, Bytes::from(bad)).unwrap();

        let keys: Vec<String> = members
            .iter()
            .map(|(k, _)| k.clone())
            .chain([replica_only.clone(), data_key(8)])
            .collect();
        let out = wrapped.get_many(&keys);
        for ((_, want), got) in members.iter().zip(&out) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
        assert_eq!(out[3].as_ref().unwrap(), &good);
        assert!(matches!(&out[4], Err(SlimError::ObjectNotFound(_))));
        assert_eq!(wrapped.metrics().reconstructions.get(), 2);
    }

    #[test]
    fn stale_source_is_rejected_not_served() {
        let (oss, wrapped) = store();
        let key = data_key(2);
        // A "replica" whose trailer does not verify must never be served.
        oss.put(&layout::replica_key(&key), Bytes::from_static(b"junk"))
            .unwrap();
        assert!(matches!(
            wrapped.get(&key),
            Err(SlimError::ObjectNotFound(_))
        ));
        assert_eq!(wrapped.metrics().reconstructions.get(), 0);
        assert_eq!(wrapped.metrics().unrepairable_reads.get(), 1);
    }
}
