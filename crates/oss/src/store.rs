//! The object store.
//!
//! [`Oss`] is an in-process object store with the interface and cost profile
//! of a cloud OSS: flat keyspace, whole-object PUT, full and range GET,
//! DELETE, prefix LIST. All payloads are [`Bytes`], so GETs are zero-copy
//! clones of the stored buffer (the *network model* is where the cost lives,
//! not memcpy).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::RwLock;
use slim_types::{Result, SlimError};

use crate::fault::{FaultErrorKind, FaultPlan, FaultState};
use crate::metrics::OssMetrics;
use crate::network::{ChannelPool, NetworkModel};

/// Object-store interface used by every SLIMSTORE component.
///
/// Trait rather than concrete type so tests can interpose wrappers and so a
/// real S3/OSS client could be dropped in behind the same API.
pub trait ObjectStore: Send + Sync {
    /// Store an object, replacing any existing value.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetch `[start, start+len)` of an object.
    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes>;

    /// Delete an object (idempotent; deleting a missing key is not an error,
    /// matching S3/OSS semantics).
    fn delete(&self, key: &str) -> Result<()>;

    /// Whether an object exists. Free of network cost in this simulation
    /// (real systems use HEAD; SLIMSTORE only calls this on metadata paths),
    /// but fallible like any other request — HEAD hits the same endpoint
    /// that PUT/GET do, so fault plans cover it too.
    fn exists(&self, key: &str) -> Result<bool>;

    /// Object length in bytes, if it exists.
    fn len(&self, key: &str) -> Result<Option<u64>>;

    /// All keys with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Traffic counters, if this store keeps them (the simulated OSS does;
    /// a plain wrapper may not). Jobs use snapshot deltas to attribute
    /// network time.
    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        None
    }
}

struct Inner {
    objects: RwLock<BTreeMap<String, Bytes>>,
    network: NetworkModel,
    channels: ChannelPool,
    metrics: OssMetrics,
    faults: FaultState,
}

/// The simulated OSS. Cheap to clone (shared handle).
///
/// ```
/// use slim_oss::{ObjectStore, Oss};
/// let oss = Oss::in_memory();
/// oss.put("bucket/key", bytes::Bytes::from_static(b"payload")).unwrap();
/// assert_eq!(oss.get_range("bucket/key", 0, 3).unwrap().as_ref(), b"pay");
/// assert_eq!(oss.metrics().snapshot().get_requests, 1);
/// ```
#[derive(Clone)]
pub struct Oss {
    inner: Arc<Inner>,
}

impl Oss {
    /// An OSS with the given network model.
    pub fn new(network: NetworkModel) -> Self {
        Oss::build(network, OssMetrics::default())
    }

    /// An OSS whose traffic counters are registered under `scope`
    /// (canonically an `"oss"` scope of a shared telemetry registry), so
    /// they appear directly in [`slim_telemetry::Registry::snapshot`]s
    /// alongside every other component's metrics.
    pub fn with_telemetry(network: NetworkModel, scope: &slim_telemetry::Scope) -> Self {
        Oss::build(network, OssMetrics::new(scope))
    }

    fn build(network: NetworkModel, metrics: OssMetrics) -> Self {
        let channels = ChannelPool::new(network.channels);
        Oss {
            inner: Arc::new(Inner {
                objects: RwLock::new(BTreeMap::new()),
                network,
                channels,
                metrics,
                faults: FaultState::default(),
            }),
        }
    }

    /// A free (no latency) OSS for unit tests.
    pub fn in_memory() -> Self {
        Oss::new(NetworkModel::instant())
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &OssMetrics {
        &self.inner.metrics
    }

    /// The network model in force.
    pub fn network(&self) -> &NetworkModel {
        &self.inner.network
    }

    /// Arm fault injection, replacing any armed plans.
    pub fn inject_fault(&self, plan: FaultPlan) {
        self.inner.faults.arm(plan);
    }

    /// Arm an additional fault plan alongside the already-armed ones (e.g.
    /// latency plus transient failures).
    pub fn inject_fault_also(&self, plan: FaultPlan) {
        self.inner.faults.arm_also(plan);
    }

    /// Disarm fault injection.
    pub fn clear_faults(&self) {
        self.inner.faults.clear();
    }

    /// Total bytes currently stored (sum of object sizes). This is the
    /// "occupied space" series of Fig 9 / Fig 10(c).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .objects
            .read()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Total bytes stored under a key prefix.
    pub fn stored_bytes_prefix(&self, prefix: &str) -> u64 {
        self.inner
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Number of objects stored.
    pub fn object_count(&self) -> usize {
        self.inner.objects.read().len()
    }

    fn check_fault(&self, op: &str, key: &str) -> Result<()> {
        let decision = self.inner.faults.decide(key);
        if !decision.delay.is_zero() {
            std::thread::sleep(decision.delay);
            self.inner.metrics.record_injected_delay(decision.delay);
        }
        let Some(kind) = decision.error else {
            return Ok(());
        };
        self.inner.metrics.record_injected_fault();
        Err(match kind {
            FaultErrorKind::Permanent => SlimError::InjectedFault(format!("{op} {key}")),
            FaultErrorKind::Transient => SlimError::Transient(format!("injected: {op} {key}")),
            FaultErrorKind::Throttled => SlimError::Throttled(format!("injected: {op} {key}")),
        })
    }

    /// Charge latency + transfer time for `bytes`, bounded by channel
    /// availability; returns elapsed wall time.
    fn charge(&self, bytes: u64) -> std::time::Duration {
        let start = Instant::now();
        if self.inner.network.is_instant() {
            return start.elapsed();
        }
        let _channel = self.inner.channels.acquire();
        let cost = self.inner.network.request_latency + self.inner.network.transfer_time(bytes);
        std::thread::sleep(cost);
        start.elapsed()
    }
}

impl ObjectStore for Oss {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.check_fault("put", key)?;
        let elapsed = self.charge(value.len() as u64);
        self.inner.metrics.record_put(value.len() as u64, elapsed);
        self.inner.objects.write().insert(key.to_string(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.check_fault("get", key)?;
        let value = self
            .inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| SlimError::ObjectNotFound(key.to_string()))?;
        let elapsed = self.charge(value.len() as u64);
        self.inner.metrics.record_get(value.len() as u64, elapsed);
        Ok(value)
    }

    fn get_range(&self, key: &str, start: u64, len: u64) -> Result<Bytes> {
        self.check_fault("get", key)?;
        let value = self
            .inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| SlimError::ObjectNotFound(key.to_string()))?;
        let end = start + len;
        if end > value.len() as u64 {
            return Err(SlimError::RangeOutOfBounds {
                key: key.to_string(),
                start,
                end,
                len: value.len() as u64,
            });
        }
        let slice = value.slice(start as usize..end as usize);
        let elapsed = self.charge(slice.len() as u64);
        self.inner.metrics.record_get(slice.len() as u64, elapsed);
        Ok(slice)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.check_fault("delete", key)?;
        let elapsed = self.charge(0);
        self.inner.metrics.record_delete(elapsed);
        self.inner.objects.write().remove(key);
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.check_fault("head", key)?;
        Ok(self.inner.objects.read().contains_key(key))
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        self.check_fault("head", key)?;
        Ok(self.inner.objects.read().get(key).map(|v| v.len() as u64))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn metrics_snapshot(&self) -> Option<crate::metrics::MetricsSnapshot> {
        Some(self.inner.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let oss = Oss::in_memory();
        oss.put("a/b", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(oss.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert!(oss.exists("a/b").unwrap());
        assert_eq!(oss.len("a/b").unwrap(), Some(5));
        assert_eq!(oss.object_count(), 1);
        assert_eq!(oss.stored_bytes(), 5);
    }

    #[test]
    fn get_missing_is_error() {
        let oss = Oss::in_memory();
        assert!(matches!(oss.get("nope"), Err(SlimError::ObjectNotFound(_))));
    }

    #[test]
    fn range_reads() {
        let oss = Oss::in_memory();
        oss.put("obj", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(
            oss.get_range("obj", 2, 3).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(oss.get_range("obj", 0, 10).unwrap().len(), 10);
        assert!(matches!(
            oss.get_range("obj", 5, 6),
            Err(SlimError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn delete_is_idempotent() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.delete("k").unwrap();
        assert!(!oss.exists("k").unwrap());
        oss.delete("k").unwrap();
    }

    #[test]
    fn list_respects_prefix_and_order() {
        let oss = Oss::in_memory();
        for k in ["b/2", "a/1", "b/1", "c"] {
            oss.put(k, Bytes::new()).unwrap();
        }
        assert_eq!(oss.list("b/"), vec!["b/1".to_string(), "b/2".to_string()]);
        assert_eq!(oss.list(""), vec!["a/1", "b/1", "b/2", "c"]);
        assert!(oss.list("zz").is_empty());
    }

    #[test]
    fn metrics_count_traffic() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        oss.get("k").unwrap();
        oss.get_range("k", 0, 10).unwrap();
        let s = oss.metrics().snapshot();
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.get_requests, 2);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 110);
    }

    #[test]
    fn fault_injection_fails_operations() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from_static(b"x")).unwrap();
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        assert!(matches!(
            oss.get("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        // Other keys unaffected.
        oss.put("recipes/1", Bytes::from_static(b"y")).unwrap();
        oss.clear_faults();
        oss.get("containers/1").unwrap();
    }

    #[test]
    fn metadata_probes_respect_faults() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from_static(b"x")).unwrap();
        oss.inject_fault(FaultPlan::KeyPrefix("containers/".into()));
        assert!(matches!(
            oss.exists("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        assert!(matches!(
            oss.len("containers/1"),
            Err(SlimError::InjectedFault(_))
        ));
        assert!(oss.exists("recipes/other").is_ok());
        assert_eq!(oss.metrics().snapshot().injected_faults, 2);
        oss.clear_faults();
        assert!(oss.exists("containers/1").unwrap());
        assert_eq!(oss.len("containers/1").unwrap(), Some(1));
    }

    #[test]
    fn transient_and_throttle_faults_map_to_retryable_errors() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::TransientProb {
            prefix: String::new(),
            prob: 1.0,
            seed: 3,
        });
        let err = oss.get("k").unwrap_err();
        assert!(matches!(err, SlimError::Transient(_)));
        assert!(err.is_retryable());
        oss.inject_fault(FaultPlan::Throttle { every_nth: 1 });
        let err = oss.get("k").unwrap_err();
        assert!(matches!(err, SlimError::Throttled(_)));
        assert!(err.is_retryable());
        oss.clear_faults();
        oss.get("k").unwrap();
    }

    #[test]
    fn latency_plan_charges_injected_delay() {
        let oss = Oss::in_memory();
        oss.put("k", Bytes::from_static(b"v")).unwrap();
        oss.inject_fault(FaultPlan::Latency {
            prefix: String::new(),
            delay: std::time::Duration::from_millis(3),
        });
        let t0 = Instant::now();
        oss.get("k").unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(3));
        let s = oss.metrics().snapshot();
        assert!(s.injected_delay >= std::time::Duration::from_millis(3));
        assert_eq!(s.injected_faults, 0);
    }

    #[test]
    fn stored_bytes_prefix_accounts_correctly() {
        let oss = Oss::in_memory();
        oss.put("containers/1", Bytes::from(vec![0u8; 30])).unwrap();
        oss.put("containers/2", Bytes::from(vec![0u8; 20])).unwrap();
        oss.put("recipes/1", Bytes::from(vec![0u8; 7])).unwrap();
        assert_eq!(oss.stored_bytes_prefix("containers/"), 50);
        assert_eq!(oss.stored_bytes_prefix("recipes/"), 7);
        assert_eq!(oss.stored_bytes(), 57);
    }

    #[test]
    fn network_latency_is_charged() {
        let model = NetworkModel {
            request_latency: std::time::Duration::from_millis(5),
            channel_bandwidth: u64::MAX,
            channels: 4,
        };
        let oss = Oss::new(model);
        let t0 = Instant::now();
        oss.put("k", Bytes::from_static(b"x")).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        let s = oss.metrics().snapshot();
        assert!(s.net_time >= std::time::Duration::from_millis(5));
    }
}
